"""End-to-end tests for the serving daemon's HTTP layer.

Each test boots a real `Daemon` on an ephemeral port and talks plain
`urllib` to it — the same wire a tenant would use.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import run
from repro.datagen.generator import FleetConfig, generate_fleet
from repro.serve import Daemon, ServeConfig
from repro.trajectory.io import write_csv


@pytest.fixture(scope="module")
def dataset_csv(tmp_path_factory):
    fleet = generate_fleet(
        FleetConfig(
            n_objects=8, points_per_trajectory=30, rows=8, cols=8, seed=3
        )
    )
    path = tmp_path_factory.mktemp("data") / "fleet.csv"
    write_csv(fleet.dataset, path)
    return path


GL_SPEC = {"kind": "gl", "params": {"epsilon": 1.0, "seed": 7}}


class Client:
    """Tiny urllib wrapper returning ``(status, parsed-or-raw body)``."""

    def __init__(self, host, port):
        self.base = f"http://{host}:{port}"

    def get(self, path, raw=False):
        try:
            with urllib.request.urlopen(self.base + path, timeout=30) as r:
                body = r.read()
                return r.status, body if raw else json.loads(body)
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def post(self, path, payload):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as r:
                return r.status, json.loads(r.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def wait_done(self, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, body = self.get(f"/v1/jobs/{job_id}")
            assert status == 200
            if body["state"] in ("done", "failed"):
                return body
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} never settled")


@pytest.fixture
def daemon(tmp_path):
    config = ServeConfig(
        port=0,
        budget_root=tmp_path / "budgets",
        spool=tmp_path / "spool",
        tenants=(("acme", 8.0), ("tiny", 0.1)),
        engine_workers=1,
        engine_executor="thread",
        job_workers=1,
    )
    with Daemon(config) as daemon:
        yield daemon


@pytest.fixture
def client(daemon):
    return Client(*daemon.address)


class TestEndpoints:
    def test_health(self, client):
        status, body = client.get("/v1/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["tenants"] == ["acme", "tiny"]

    def test_unknown_route_404(self, client):
        assert client.get("/v1/nope")[0] == 404
        assert client.post("/v2/jobs", {})[0] == 404

    def test_declare_and_query_tenant(self, client):
        status, body = client.post(
            "/v1/tenants", {"tenant": "newco", "budget": 2.5}
        )
        assert status == 200
        assert body["budget"] == 2.5
        status, body = client.get("/v1/tenants/newco")
        assert status == 200
        assert body["remaining"] == 2.5

    def test_redeclare_conflict_409(self, client):
        status, body = client.post(
            "/v1/tenants", {"tenant": "acme", "budget": 99.0}
        )
        assert status == 409
        assert body["error"] == "conflict"

    def test_unknown_tenant_status_404(self, client):
        status, body = client.get("/v1/tenants/ghost")
        assert status == 404
        assert body == {"error": "unknown-tenant", "tenant": "ghost"}

    def test_malformed_bodies_400(self, client):
        assert client.post("/v1/jobs", {"tenant": 5, "dataset": "x"})[0] == 400
        assert client.post("/v1/tenants", {"tenant": "x"})[0] == 400


class TestJobLifecycle:
    def test_submitted_job_streams_byte_identical_csv(
        self, client, daemon, dataset_csv, tmp_path
    ):
        status, job = client.post(
            "/v1/jobs",
            {"tenant": "acme", "dataset": str(dataset_csv), "spec": GL_SPEC},
        )
        assert status == 202
        assert job["state"] == "queued"
        assert job["eps_total"] == pytest.approx(1.0)
        final = client.wait_done(job["id"])
        assert final["state"] == "done"
        assert final["eps_charged"] == pytest.approx(1.0)

        status, served = client.get(f"/v1/jobs/{job['id']}/result", raw=True)
        assert status == 200
        # The acceptance bar: byte-identical to the batch engine run
        # of the same dataset/spec/seed.
        from repro.data.registry import load_dataset

        reference = run(
            GL_SPEC,
            load_dataset(dataset_csv),
            engine="batch",
            workers=1,
            executor="thread",
        )
        expected = tmp_path / "expected.csv"
        write_csv(reference.dataset, expected)
        assert served == expected.read_bytes()

    def test_repeat_jobs_are_each_charged(self, client, dataset_csv):
        for expected_spent in (1.0, 2.0):
            _, job = client.post(
                "/v1/jobs",
                {
                    "tenant": "acme",
                    "dataset": str(dataset_csv),
                    "spec": GL_SPEC,
                },
            )
            client.wait_done(job["id"])
            _, account = client.get("/v1/tenants/acme")
            assert account["spent"] == pytest.approx(expected_spent)

    def test_over_budget_submit_refused_429(self, client, dataset_csv):
        status, body = client.post(
            "/v1/jobs",
            {"tenant": "tiny", "dataset": str(dataset_csv), "spec": GL_SPEC},
        )
        assert status == 429
        assert body["error"] == "budget-exhausted"
        assert body["tenant"] == "tiny"
        assert body["requested"] == pytest.approx(1.0)
        assert body["remaining"] == pytest.approx(0.1)
        assert body["budget"] == pytest.approx(0.1)

    def test_unknown_tenant_submit_404(self, client, dataset_csv):
        status, body = client.post(
            "/v1/jobs",
            {"tenant": "ghost", "dataset": str(dataset_csv), "spec": GL_SPEC},
        )
        assert status == 404
        assert body["error"] == "unknown-tenant"

    def test_bad_dataset_and_spec_400(self, client, dataset_csv):
        status, body = client.post(
            "/v1/jobs",
            {"tenant": "acme", "dataset": "/nowhere.csv", "spec": GL_SPEC},
        )
        assert status == 400
        assert body["error"] == "bad-request"
        status, body = client.post(
            "/v1/jobs",
            {
                "tenant": "acme",
                "dataset": str(dataset_csv),
                "spec": {"kind": "no-such-method"},
            },
        )
        assert status == 400

    def test_unknown_job_404(self, client):
        assert client.get("/v1/jobs/job-999999")[0] == 404
        assert client.get("/v1/jobs/job-999999/result")[0] == 404

    def test_result_before_done_409(self, client, daemon, dataset_csv):
        gate = threading.Event()
        real_get = daemon.engines.get

        def gated(spec):
            engine = real_get(spec)
            gate.wait(30)
            return engine

        daemon.engines.get = gated
        try:
            _, job = client.post(
                "/v1/jobs",
                {
                    "tenant": "acme",
                    "dataset": str(dataset_csv),
                    "spec": GL_SPEC,
                },
            )
            status, body = client.get(f"/v1/jobs/{job['id']}/result")
            assert status == 409
            assert body["error"] == "not-ready"
            assert body["state"] in ("queued", "running")
        finally:
            gate.set()
            daemon.engines.get = real_get
        client.wait_done(job["id"])

    def test_failed_job_result_409(self, client, daemon, dataset_csv):
        def explode(spec):
            raise RuntimeError("engine exploded")

        real_get = daemon.engines.get
        daemon.engines.get = explode
        try:
            _, job = client.post(
                "/v1/jobs",
                {
                    "tenant": "acme",
                    "dataset": str(dataset_csv),
                    "spec": GL_SPEC,
                },
            )
            final = client.wait_done(job["id"])
        finally:
            daemon.engines.get = real_get
        assert final["state"] == "failed"
        status, body = client.get(f"/v1/jobs/{job['id']}/result")
        assert status == 409
        assert body["error"] == "job-failed"
        # The failed job's reservation went back to the tenant.
        _, account = client.get("/v1/tenants/acme")
        assert account["reserved"] == 0


class TestConcurrentSubmits:
    def test_parallel_http_submits_never_oversubscribe(
        self, client, dataset_csv
    ):
        n = 12
        barrier = threading.Barrier(n)
        outcomes = []
        lock = threading.Lock()

        def submit():
            barrier.wait()
            status, body = client.post(
                "/v1/jobs",
                {
                    "tenant": "acme",
                    "dataset": str(dataset_csv),
                    "spec": GL_SPEC,
                },
            )
            with lock:
                outcomes.append((status, body))

        threads = [threading.Thread(target=submit) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        accepted = [body for status, body in outcomes if status == 202]
        refused = [body for status, body in outcomes if status == 429]
        assert len(accepted) == 8  # budget 8.0 / eps 1.0
        assert len(refused) == n - len(accepted)
        for body in accepted:
            client.wait_done(body["id"])
        _, account = client.get("/v1/tenants/acme")
        assert account["spent"] <= account["budget"] + 1e-9
        assert account["reserved"] == 0


class TestShutdown:
    def test_http_shutdown_drains_and_stops(self, tmp_path, dataset_csv):
        config = ServeConfig(
            port=0,
            budget_root=tmp_path / "budgets",
            spool=tmp_path / "spool",
            tenants=(("acme", 8.0),),
            engine_workers=1,
            engine_executor="thread",
        )
        daemon = Daemon(config)
        daemon.start()
        client = Client(*daemon.address)
        _, job = client.post(
            "/v1/jobs",
            {"tenant": "acme", "dataset": str(dataset_csv), "spec": GL_SPEC},
        )
        status, body = client.post("/v1/shutdown", {})
        assert status == 202
        assert body["status"] == "stopping"
        assert daemon.wait(timeout=60)
        # Drained: the in-flight job completed and committed before
        # the engines closed.
        settled = daemon.runner.get(job["id"]).to_dict()
        assert settled["state"] == "done"
        assert daemon.store.account("acme").pending == {}
        # And the daemon is truly down: submissions refuse.
        with pytest.raises(RuntimeError):
            daemon.runner.submit("acme", GL_SPEC, str(dataset_csv))

    def test_context_manager_shutdown_is_idempotent(self, tmp_path):
        config = ServeConfig(
            port=0,
            budget_root=tmp_path / "budgets",
            spool=tmp_path / "spool",
        )
        with Daemon(config) as daemon:
            daemon.shutdown()
        daemon.shutdown()  # exit + explicit double-call: no error
