#!/usr/bin/env python
"""The one static gate: analyzer + API surface + docs + bench, one report.

Runs four sections and renders them in one unified format:

``analysis``
    The project's AST rules (``repro.analysis``: the syntactic codes
    DP001/DET001/DET002/RACE001/EPS001 plus the flow-sensitive
    EPS002/LIFE001/LEDGER001/RACE002) over ``src/repro``, ``tools``,
    ``benchmarks``, and ``examples``, against the committed baseline
    ``tools/analysis_baseline.json``. Unused ``# repro: noqa``
    suppressions surface as warnings.
``api``
    The public-API-surface diff of ``tools/check_api.py`` against its
    snapshot ``tools/api_surface.json``.
``docs``
    The ``repro ...`` invocation validation of ``tools/check_docs.py``
    over README.md and docs/*.md.
``bench``
    The benchmark regression gate of ``tools/check_bench.py`` over the
    committed ``BENCH_history.jsonl`` (enforcing: significant
    degradation of any tracked key fails; minor shifts warn).

Usage::

    PYTHONPATH=src python tools/check_static.py            # CI gate
    PYTHONPATH=src python tools/check_static.py --json     # machine form
    PYTHONPATH=src python tools/check_static.py analysis   # one section

Exit codes: 0 all sections clean, 1 findings in any section, 2 the
checker itself failed. CI runs this as the ``static`` job (replacing
the former separate ``api``/``docs`` jobs); ``check_api.py``,
``check_docs.py``, and ``check_bench.py`` stay runnable standalone
(``--update`` / ``--warn-only`` blessing lives there).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
#: Every tree the analyzer gates — sources plus the support trees
#: (missing ones are skipped so trimmed checkouts still gate).
ANALYSIS_ROOTS = (
    REPO_ROOT / "src" / "repro",
    REPO_ROOT / "tools",
    REPO_ROOT / "benchmarks",
    REPO_ROOT / "examples",
)
BASELINE = REPO_ROOT / "tools" / "analysis_baseline.json"

SECTIONS = ("analysis", "api", "docs", "bench")


@dataclass
class SectionResult:
    """One section's outcome in the unified report."""

    name: str
    #: One line per problem, already formatted for humans.
    problems: list[str] = field(default_factory=list)
    #: Non-failing notices (stale baseline entries and the like).
    warnings: list[str] = field(default_factory=list)
    #: One-line summary of what was covered.
    summary: str = ""
    #: The section itself crashed (exit 2).
    error: str | None = None

    @property
    def clean(self) -> bool:
        return not self.problems and self.error is None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "clean": self.clean,
            "problems": self.problems,
            "warnings": self.warnings,
            "summary": self.summary,
            "error": self.error,
        }


def run_analysis() -> SectionResult:
    from repro.analysis import analyze_paths

    result = SectionResult("analysis")
    baseline = BASELINE if BASELINE.is_file() else None
    roots = [path for path in ANALYSIS_ROOTS if path.exists()]
    report = analyze_paths(roots, root=REPO_ROOT, baseline=baseline)
    for finding in report.findings:
        result.problems.append(finding.render())
    for entry in report.stale_baseline:
        result.warnings.append(
            f"stale baseline entry {entry.code} for {entry.path!r} "
            f"({entry.snippet!r}) matches nothing — delete it"
        )
    for unused in report.unused_noqa:
        result.warnings.append(unused.render().removeprefix("warning: "))
    extras = ""
    if report.baselined:
        extras = f", {len(report.baselined)} baselined"
    result.summary = (
        f"{report.files} file(s) against {len(report.codes)} rule(s)"
        f"{extras}"
    )
    return result


def run_api() -> SectionResult:
    import check_api

    result = SectionResult("api")
    surface = check_api.build_surface()
    exports = sum(len(entry) for entry in surface.values())
    result.summary = (
        f"{exports} public exports across {len(surface)} modules"
    )
    if not check_api.SNAPSHOT.is_file():
        result.problems.append(
            f"{check_api.SNAPSHOT}: missing — run "
            f"`python tools/check_api.py --update`"
        )
        return result
    expected = json.loads(check_api.SNAPSHOT.read_text())
    for problem in check_api.diff_surfaces(expected, surface):
        result.problems.append(problem)
    if result.problems:
        result.problems.append(
            "if intentional, bless with `python tools/check_api.py --update`"
        )
    return result


def run_docs() -> SectionResult:
    import check_docs

    result = SectionResult("docs")
    paths = [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))
    spec = check_docs.build_spec()
    commands = 0
    for path in paths:
        if not path.is_file():
            result.problems.append(f"{path}: missing")
            continue
        for line, tokens in check_docs.iter_doc_commands(path):
            commands += 1
            for problem in check_docs.check_command(tokens, spec):
                result.problems.append(f"{path}:{line}: {problem}")
    result.summary = (
        f"{commands} repro invocations across {len(paths)} files"
    )
    return result


def run_bench() -> SectionResult:
    import check_bench

    result = SectionResult("bench")
    history = check_bench.DEFAULT_HISTORY
    if not history.is_file():
        result.problems.append(
            f"{history}: missing — import the snapshot with "
            f"`repro bench record --snapshot BENCH_engine.json`"
        )
        return result
    comparisons = check_bench.gate(history_path=history)
    tracked = 0
    for comparison in comparisons:
        tracked += len(comparison.shifts) + len(comparison.new_keys)
        result.problems.extend(check_bench.problems_of(comparison))
        result.warnings.extend(check_bench.warnings_of(comparison))
    result.summary = (
        f"{tracked} tracked key(s) across {len(comparisons)} "
        f"bench/scale partition(s)"
    )
    return result


_RUNNERS = {
    "analysis": run_analysis,
    "api": run_api,
    "docs": run_docs,
    "bench": run_bench,
}


def run_sections(names: list[str]) -> list[SectionResult]:
    results = []
    for name in names:
        try:
            results.append(_RUNNERS[name]())
        except Exception as exc:  # checker crash, not a finding: exit 2
            crashed = SectionResult(name)
            crashed.error = f"{type(exc).__name__}: {exc}"
            results.append(crashed)
    return results


def render_human(results: list[SectionResult]) -> str:
    lines: list[str] = []
    for section in results:
        status = "ok" if section.clean else "FAIL"
        if section.error is not None:
            status = "ERROR"
        lines.append(f"[{status:>5s}] {section.name}: {section.summary}")
        if section.error is not None:
            lines.append(f"    internal error: {section.error}")
        for problem in section.problems:
            lines.append(f"    {problem}")
        for warning in section.warnings:
            lines.append(f"    warning: {warning}")
    failing = [s.name for s in results if not s.clean]
    if failing:
        lines.append(f"static gate failed: {', '.join(failing)}")
    else:
        lines.append("static gate clean")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="check_static")
    parser.add_argument(
        "sections",
        nargs="*",
        metavar="SECTION",
        help=f"sections to run: {', '.join(SECTIONS)} (default: all)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report",
    )
    args = parser.parse_args(argv)
    unknown = [name for name in args.sections if name not in SECTIONS]
    if unknown:
        parser.error(
            f"unknown section(s): {', '.join(unknown)} "
            f"(choose from {', '.join(SECTIONS)})"
        )
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    results = run_sections(list(args.sections) or list(SECTIONS))
    if args.json:
        print(
            json.dumps(
                {
                    "version": 1,
                    "clean": all(s.clean for s in results),
                    "sections": [s.to_dict() for s in results],
                },
                indent=2,
            )
        )
    else:
        print(render_human(results))
    if any(section.error is not None for section in results):
        return 2
    if any(section.problems for section in results):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
