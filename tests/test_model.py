"""Unit + property tests for the trajectory data model."""

import pytest
from hypothesis import given, strategies as st

from repro.trajectory.model import (
    LOCATION_RESOLUTION,
    Point,
    Trajectory,
    TrajectoryDataset,
    location_key,
)


def make_trajectory(object_id="obj", coords=((0, 0), (10, 0), (10, 10)), t0=0.0):
    points = [Point(float(x), float(y), t0 + 60.0 * i) for i, (x, y) in enumerate(coords)]
    return Trajectory(object_id, points)


class TestLocationKey:
    def test_rounds_to_resolution(self):
        assert location_key(10.4, 20.6) == (10.0, 21.0)

    def test_identity_for_exact_coordinates(self):
        assert location_key(100.0, 200.0) == (100.0, 200.0)

    def test_custom_resolution(self):
        assert location_key(103.0, 207.0, resolution=50.0) == (100.0, 200.0)

    @given(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
    def test_key_within_half_resolution(self, x, y):
        kx, ky = location_key(x, y)
        assert abs(kx - x) <= LOCATION_RESOLUTION / 2 + 1e-9
        assert abs(ky - y) <= LOCATION_RESOLUTION / 2 + 1e-9


class TestPoint:
    def test_coord_and_loc(self):
        p = Point(1.2, 3.4, 10.0)
        assert p.coord == (1.2, 3.4)
        assert p.loc == (1.0, 3.0)

    def test_distance_to(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_moved_to_preserves_time(self):
        p = Point(0, 0, 99.0).moved_to(5.0, 6.0)
        assert (p.x, p.y, p.t) == (5.0, 6.0, 99.0)

    def test_points_are_immutable(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1.0


class TestTrajectory:
    def test_len_iter_getitem(self):
        traj = make_trajectory()
        assert len(traj) == 3
        assert [p.coord for p in traj] == [(0, 0), (10, 0), (10, 10)]
        assert traj[1].coord == (10, 0)

    def test_point_frequencies_counts_repeats(self):
        traj = make_trajectory(coords=((0, 0), (5, 5), (0, 0), (0, 0)))
        assert traj.point_frequencies()[(0.0, 0.0)] == 3
        assert traj.point_frequencies()[(5.0, 5.0)] == 1

    def test_distinct_locations(self):
        traj = make_trajectory(coords=((0, 0), (5, 5), (0, 0)))
        assert traj.distinct_locations() == {(0.0, 0.0), (5.0, 5.0)}

    def test_segments(self):
        segs = list(make_trajectory().segments())
        assert len(segs) == 2
        index, start, end = segs[0]
        assert index == 0
        assert start.coord == (0, 0)
        assert end.coord == (10, 0)

    def test_occurrences(self):
        traj = make_trajectory(coords=((0, 0), (5, 5), (0, 0)))
        assert traj.occurrences((0.0, 0.0)) == [0, 2]
        assert traj.occurrences((9.0, 9.0)) == []

    def test_length_and_diameter(self):
        traj = make_trajectory()
        assert traj.length() == pytest.approx(20.0)
        assert traj.diameter() == pytest.approx((10**2 + 10**2) ** 0.5)

    def test_duration(self):
        traj = make_trajectory()
        assert traj.duration() == pytest.approx(120.0)
        assert Trajectory("x", [Point(0, 0, 5.0)]).duration() == 0.0

    def test_insert_location_interpolates_time(self):
        traj = make_trajectory()
        traj.insert_location((7.0, 7.0), 0)
        assert len(traj) == 4
        inserted = traj[1]
        assert inserted.coord == (7.0, 7.0)
        assert inserted.t == pytest.approx(30.0)
        # Chronological order preserved.
        times = [p.t for p in traj]
        assert times == sorted(times)

    def test_insert_location_bad_index(self):
        with pytest.raises(IndexError):
            make_trajectory().insert_location((1.0, 1.0), 5)

    def test_insert_into_single_point_trajectory_appends(self):
        traj = Trajectory("x", [Point(0, 0, 0.0)])
        traj.insert_location((3.0, 3.0), 0)
        assert len(traj) == 2
        assert traj[1].coord == (3.0, 3.0)

    def test_delete_at(self):
        traj = make_trajectory()
        removed = traj.delete_at(1)
        assert removed.coord == (10, 0)
        assert [p.coord for p in traj] == [(0, 0), (10, 10)]

    def test_delete_all(self):
        traj = make_trajectory(coords=((0, 0), (5, 5), (0, 0), (0, 0)))
        removed = traj.delete_all((0.0, 0.0))
        assert removed == 3
        assert [p.coord for p in traj] == [(5, 5)]

    def test_copy_is_independent(self):
        traj = make_trajectory()
        clone = traj.copy()
        clone.delete_at(0)
        assert len(traj) == 3
        assert len(clone) == 2


class TestTrajectoryDataset:
    def make_dataset(self):
        return TrajectoryDataset(
            [
                make_trajectory("a", ((0, 0), (10, 0), (0, 0))),
                make_trajectory("b", ((10, 0), (20, 20))),
            ]
        )

    def test_len_and_indexing(self):
        ds = self.make_dataset()
        assert len(ds) == 2
        assert ds[0].object_id == "a"
        assert ds.by_id("b").object_id == "b"

    def test_by_id_missing(self):
        with pytest.raises(KeyError):
            self.make_dataset().by_id("zzz")

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError):
            TrajectoryDataset([make_trajectory("a"), make_trajectory("a")])

    def test_trajectory_frequencies_distinct_per_trajectory(self):
        tf = self.make_dataset().trajectory_frequencies()
        # (0,0) appears twice in trajectory a but counts once.
        assert tf[(0.0, 0.0)] == 1
        # (10,0) appears in both trajectories.
        assert tf[(10.0, 0.0)] == 2

    def test_total_points(self):
        assert self.make_dataset().total_points() == 5

    def test_bbox(self):
        box = self.make_dataset().bbox()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0.0, 0.0, 20.0, 20.0)

    def test_bbox_empty_raises(self):
        with pytest.raises(ValueError):
            TrajectoryDataset().bbox()

    def test_copy_is_deep_for_point_lists(self):
        ds = self.make_dataset()
        clone = ds.copy()
        clone[0].delete_at(0)
        assert len(ds[0]) == 3

    def test_subset(self):
        assert len(self.make_dataset().subset(1)) == 1

    def test_quantized_collapses_nearby_points(self):
        ds = TrajectoryDataset(
            [Trajectory("a", [Point(101.0, 99.0), Point(99.0, 101.0)])]
        )
        snapped = ds.quantized(100.0)
        locs = snapped[0].locations()
        assert locs[0] == locs[1] == (100.0, 100.0)

    def test_map_trajectories(self):
        ds = self.make_dataset()
        reversed_ds = ds.map_trajectories(
            lambda t: Trajectory(t.object_id, list(reversed(t.points)))
        )
        assert reversed_ds[0][0].coord == (0, 0)
        assert reversed_ds[0][0].t == 120.0

    def test_stats(self):
        stats = self.make_dataset().stats()
        assert stats["trajectories"] == 2.0
        assert stats["total_points"] == 5.0
        assert stats["avg_points_per_trajectory"] == pytest.approx(2.5)
        assert stats["avg_point_spacing_m"] > 0

    def test_filter_bbox_drops_outside_points(self):
        from repro.geo.geometry import BBox

        ds = self.make_dataset()
        cropped = ds.filter_bbox(BBox(-1.0, -1.0, 11.0, 11.0))
        # Trajectory a keeps (0,0),(10,0),(0,0); b keeps only (10,0).
        assert len(cropped.by_id("a")) == 3
        assert len(cropped.by_id("b")) == 1

    def test_filter_bbox_drops_empty_trajectories(self):
        from repro.geo.geometry import BBox

        ds = self.make_dataset()
        cropped = ds.filter_bbox(BBox(15.0, 15.0, 30.0, 30.0))
        assert len(cropped) == 1  # only b's (20,20) survives
        assert cropped[0].object_id == "b"

    def test_time_slice(self):
        ds = self.make_dataset()
        sliced = ds.time_slice(0.0, 61.0)  # first two samples of each
        assert len(sliced.by_id("a")) == 2
        assert len(sliced.by_id("b")) == 2

    def test_time_slice_invalid_range(self):
        with pytest.raises(ValueError):
            self.make_dataset().time_slice(10.0, 5.0)

    def test_merge(self):
        ds = self.make_dataset()
        other = TrajectoryDataset([make_trajectory("c", ((1, 1),))])
        merged = ds.merge(other)
        assert len(merged) == 3
        # Deep copy: mutating merged leaves the sources intact.
        merged.by_id("a").delete_at(0)
        assert len(ds.by_id("a")) == 3

    def test_merge_rejects_id_collisions(self):
        ds = self.make_dataset()
        with pytest.raises(ValueError):
            ds.merge(ds)

    @given(st.lists(st.tuples(st.integers(-100, 100), st.integers(-100, 100)), min_size=1, max_size=40))
    def test_tf_never_exceeds_dataset_size(self, coords):
        ds = TrajectoryDataset(
            [
                make_trajectory("a", coords),
                make_trajectory("b", coords[: max(1, len(coords) // 2)]),
            ]
        )
        for count in ds.trajectory_frequencies().values():
            assert 1 <= count <= len(ds)
