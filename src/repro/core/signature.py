"""Trajectory signatures: representative + distinctive locations.

Section III-B1 of the paper. For every location ``p`` in trajectory τ of
dataset D:

* representativeness = PF(p, τ) / |τ| — how often the user is there;
* distinctiveness   = log(|D| / TF(p, D)) — how few others go there;
* weight(p, τ)      = representativeness x distinctiveness.

The top-``m`` locations by weight form the trajectory's *signature*
``s_m(τ)``; the union of all signatures is the candidate set ``P`` that
both mechanisms perturb.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass

from repro.trajectory.model import LocationKey, Trajectory, TrajectoryDataset


@dataclass(frozen=True, slots=True)
class SignatureEntry:
    """One location of a trajectory's signature, with its statistics."""

    loc: LocationKey
    point_frequency: int
    trajectory_frequency: int
    weight: float


@dataclass(slots=True)
class SignatureIndex:
    """Signatures for every trajectory of a dataset plus the set P."""

    m: int
    #: object id -> top-m signature entries, best first.
    signatures: dict[str, list[SignatureEntry]]
    #: The candidate set P: every location appearing in some signature.
    candidate_set: set[LocationKey]
    #: Dataset-level TF distribution restricted to P.
    tf: dict[LocationKey, int]

    def signature_locations(self, object_id: str) -> list[LocationKey]:
        return [entry.loc for entry in self.signatures[object_id]]

    @property
    def dimensionality(self) -> int:
        """d = |P| — the length of the global TF vector."""
        return len(self.candidate_set)


class SignatureExtractor:
    """Computes weights and extracts top-m signatures (Section III-B1)."""

    def __init__(self, m: int = 10) -> None:
        if m < 1:
            raise ValueError("signature size m must be at least 1")
        self.m = m

    def weights(
        self, trajectory: Trajectory, tf: Counter, dataset_size: int
    ) -> dict[LocationKey, float]:
        """weight(p) = (PF/|τ|) * log(|D|/TF) for every location of τ."""
        if len(trajectory) == 0:
            return {}
        pf = trajectory.point_frequencies()
        n = float(len(trajectory))
        result: dict[LocationKey, float] = {}
        for loc, frequency in pf.items():
            lp = tf.get(loc, 1)
            distinctiveness = math.log(dataset_size / lp) if dataset_size > 0 else 0.0
            result[loc] = (frequency / n) * distinctiveness
        return result

    def signature_of(
        self, trajectory: Trajectory, tf: Counter, dataset_size: int
    ) -> list[SignatureEntry]:
        """Top-m locations of one trajectory by descending weight.

        Ties are broken by location key so extraction is deterministic.
        """
        weights = self.weights(trajectory, tf, dataset_size)
        pf = trajectory.point_frequencies()
        ranked = sorted(weights.items(), key=lambda item: (-item[1], item[0]))
        return [
            SignatureEntry(loc, pf[loc], tf.get(loc, 0), weight)
            for loc, weight in ranked[: self.m]
        ]

    def extract(
        self, dataset: TrajectoryDataset, tf: Counter | None = None
    ) -> SignatureIndex:
        """Signatures for every trajectory plus the candidate set P.

        ``tf`` accepts a precomputed ``dataset.trajectory_frequencies()``
        so callers that already scanned the dataset (the streaming
        publisher's estimate pass) don't pay for a second full scan.
        """
        if tf is None:
            tf = dataset.trajectory_frequencies()
        n = len(dataset)
        signatures: dict[str, list[SignatureEntry]] = {}
        candidate_set: set[LocationKey] = set()
        for trajectory in dataset:
            entries = self.signature_of(trajectory, tf, n)
            signatures[trajectory.object_id] = entries
            candidate_set.update(entry.loc for entry in entries)
        tf_restricted = {loc: tf[loc] for loc in candidate_set}
        return SignatureIndex(
            m=self.m,
            signatures=signatures,
            candidate_set=candidate_set,
            tf=tf_restricted,
        )


def select_perturbation_targets(
    trajectory: Trajectory,
    signature: list[SignatureEntry],
    candidate_set: set[LocationKey],
    m: int,
    rng: random.Random,
) -> list[LocationKey]:
    """The 2m-location list P_L(τ) the local mechanism perturbs.

    Per the paper: start from the trajectory's own top-ranked signature
    (which lies in P by construction), then prefer other locations of
    the trajectory that appear in P ("raising their frequency brings a
    confusing message as additional benefit"), then fall back to random
    remaining locations until the list holds ``2m`` entries — or every
    distinct location of the trajectory, whichever is smaller.
    """
    targets: list[LocationKey] = []
    chosen: set[LocationKey] = set()
    for entry in signature[:m]:
        if entry.loc not in chosen:
            targets.append(entry.loc)
            chosen.add(entry.loc)
    budget = 2 * m

    trajectory_locations = trajectory.distinct_locations()
    in_candidate_set = sorted(
        loc
        for loc in trajectory_locations
        if loc in candidate_set and loc not in chosen
    )
    for loc in in_candidate_set:
        if len(targets) >= budget:
            break
        targets.append(loc)
        chosen.add(loc)

    remaining = sorted(trajectory_locations - chosen)
    rng.shuffle(remaining)
    for loc in remaining:
        if len(targets) >= budget:
            break
        targets.append(loc)
        chosen.add(loc)
    return targets
