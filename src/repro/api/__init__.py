"""repro.api — the one front door to every anonymization method.

Three pieces:

* :class:`MethodSpec` (:mod:`repro.api.spec`) — a frozen, validated,
  picklable ``(kind, params)`` description of a configured method,
  with ``to_dict``/``from_dict`` and a stable config :attr:`digest
  <repro.api.spec.MethodSpec.digest>`; the engine's cross-process
  payload and the provenance recorded in reports;
* the **method registry** (:mod:`repro.api.registry`) — string-keyed
  :func:`register` decorator covering GL/PureG/PureL and every
  Table II baseline, with ``repro.methods`` entry-point discovery for
  third-party plugins; :func:`method_names`/:func:`method_info` list
  it, :func:`build` constructs from a spec;
* :func:`run` (:mod:`repro.api.session`) — execute a spec against a
  dataset on the serial or batch engine and get a :class:`RunResult`
  (output dataset + report + spec + timing) back in one value, with
  no shared mutable state;
* :func:`publish` / :func:`split_spec` — the streaming whole-dataset
  publisher: one ε-DP release over a chunked stream via
  :class:`repro.engine.publish.StreamPublisher`, with the ε_G/ε_L
  budget split carried declaratively in the spec's params.

The CLI (``repro anonymize --method``, ``repro methods``) and the
experiment drivers are thin layers over exactly these calls.
"""

from repro.api.spec import MethodSpec, canonical_digest, canonical_json
from repro.api.registry import (
    ENTRY_POINT_GROUP,
    FAMILIES,
    MethodInfo,
    build,
    method_info,
    method_names,
    register,
)
from repro.api.session import (
    ENGINE_KINDS,
    RunResult,
    as_spec,
    publish,
    run,
    split_spec,
)

__all__ = [
    "ENGINE_KINDS",
    "ENTRY_POINT_GROUP",
    "FAMILIES",
    "MethodInfo",
    "MethodSpec",
    "RunResult",
    "as_spec",
    "build",
    "canonical_digest",
    "canonical_json",
    "method_info",
    "method_names",
    "publish",
    "register",
    "run",
    "split_spec",
]
