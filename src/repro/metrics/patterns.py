"""Frequent movement-pattern mining, the substrate of the FFP metric [33].

Patterns are contiguous subsequences of the cell-level movement (length
2..max_length, consecutive duplicate cells collapsed). ``top_patterns``
returns the N most frequent ones, which FFP compares between the
original and anonymized datasets.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.trajectory.model import Trajectory, TrajectoryDataset

Pattern = tuple


def _cell(x: float, y: float, cell_size: float) -> tuple[int, int]:
    return (int(math.floor(x / cell_size)), int(math.floor(y / cell_size)))


def cell_sequence(trajectory: Trajectory, cell_size: float) -> list[tuple[int, int]]:
    """Movement as a cell sequence with consecutive duplicates collapsed."""
    sequence: list[tuple[int, int]] = []
    for p in trajectory:
        cell = _cell(p.x, p.y, cell_size)
        if not sequence or sequence[-1] != cell:
            sequence.append(cell)
    return sequence


def mine_patterns(
    dataset: TrajectoryDataset,
    cell_size: float = 500.0,
    max_length: int = 3,
) -> Counter:
    """Support counts (number of trajectories containing each pattern)."""
    support: Counter = Counter()
    for trajectory in dataset:
        sequence = cell_sequence(trajectory, cell_size)
        seen: set[Pattern] = set()
        for length in range(2, max_length + 1):
            for start in range(len(sequence) - length + 1):
                seen.add(tuple(sequence[start : start + length]))
        support.update(seen)
    return support


def top_patterns(
    dataset: TrajectoryDataset,
    n: int = 100,
    cell_size: float = 500.0,
    max_length: int = 3,
) -> list[Pattern]:
    """The ``n`` most supported patterns (deterministic tie-breaking)."""
    support = mine_patterns(dataset, cell_size=cell_size, max_length=max_length)
    ranked = sorted(support.items(), key=lambda item: (-item[1], item[0]))
    return [pattern for pattern, _ in ranked[:n]]
