"""The sync HTTP layer of the anonymization service.

Stdlib only (:mod:`http.server`); the daemon is a thin routing shell
around the subsystem objects that do the real work:

- :class:`~repro.serve.budget.BudgetStore` — per-tenant epsilon
  accounts, admission control, durable reserve/commit/release;
- :class:`~repro.serve.engines.EngineCache` — process-wide warm
  anonymizers shared across requests;
- :class:`~repro.serve.jobs.JobRunner` — the background worker pool
  jobs execute on.

Endpoints (all JSON unless noted)::

    GET  /v1/health            liveness + counters
    POST /v1/tenants           declare a tenant budget {tenant, budget}
    GET  /v1/tenants/<name>    account status (budget/spent/remaining)
    POST /v1/jobs              submit {tenant, dataset, spec} -> 202
    GET  /v1/jobs/<id>         poll job status
    GET  /v1/jobs/<id>/result  stream the anonymized CSV (text/csv)
    POST /v1/shutdown          graceful stop {drain: bool} -> 202

Refusal contract: errors are structured JSON objects with an
``error`` discriminator — ``budget-exhausted`` arrives with HTTP 429
and the tenant's requested/remaining/budget figures, so a client can
tell "never" (shrink the job) from "not yet" (wait for a new budget).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import urlparse

from repro.data.registry import DatasetRegistry
from repro.serve.budget import (
    AccountError,
    BudgetExceededError,
    BudgetStore,
    UnknownTenantError,
)
from repro.serve.engines import EngineCache
from repro.serve.jobs import JobRunner

__all__ = ["ServeConfig", "Daemon"]

#: Result streaming granularity: bounded memory per response, few
#: syscalls per MiB.
CHUNK_BYTES = 64 * 1024


@dataclass(frozen=True)
class ServeConfig:
    """Everything a daemon needs to boot, in one picklable bundle."""

    host: str = "127.0.0.1"
    #: Port 0 binds an ephemeral port (see :attr:`Daemon.address`).
    port: int = 8088
    #: Directory holding the per-tenant ``*.account.jsonl`` files.
    budget_root: str | Path = "serve-budgets"
    #: Directory job results are spooled to before streaming.
    spool: str | Path = "serve-spool"
    #: Background job-runner pool width.
    job_workers: int = 2
    #: Batch-engine knobs applied to every warm frequency engine.
    engine_workers: int | None = None
    engine_executor: str = "process"
    shards_per_worker: int = 4
    global_workers: int | None = 1
    #: Pass-2 fan-out for streaming-publish jobs (``0`` = per core;
    #: ``1`` realises spilled chunks in-process). Spills stage under
    #: the spool, one directory per job, cleaned with the publish.
    publish_workers: int | None = 1
    #: ``(tenant, budget)`` pairs declared at boot.
    tenants: tuple = field(default_factory=tuple)
    registry_root: str | Path | None = None


class Daemon:
    """Owns the store, cache, runner, and HTTP server lifecycles."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.store = BudgetStore(self.config.budget_root)
        for tenant, budget in self.config.tenants:
            self.store.declare(tenant, budget)
        #: Reservations orphaned by a previous crash, settled (charged
        #: in full) before this daemon admits anything new.
        self.recovered = self.store.recover()
        self.engines = EngineCache(
            workers=self.config.engine_workers,
            executor=self.config.engine_executor,
            shards_per_worker=self.config.shards_per_worker,
            global_workers=self.config.global_workers,
        )
        registry = None
        if self.config.registry_root is not None:
            registry = DatasetRegistry(self.config.registry_root)
        self.runner = JobRunner(
            self.store,
            self.engines,
            self.config.spool,
            workers=self.config.job_workers,
            registry=registry,
            publish_workers=self.config.publish_workers,
        )
        self._server: _ServeServer | None = None
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._closed = False
        self._stopped = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves port 0 to the real one."""
        if self._server is None:
            raise RuntimeError("daemon is not started")
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> tuple[str, int]:
        """Bind and serve on a background thread; returns the address."""
        with self._lock:
            if self._closed:
                raise RuntimeError("daemon is closed and cannot restart")
            if self._server is not None:
                return self.address
            self._server = _ServeServer(
                (self.config.host, self.config.port), _Handler
            )
            self._server.app = self
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-serve-http",
                daemon=True,
            )
            self._thread.start()
        return self.address

    def shutdown(self, drain: bool = True) -> None:
        """Graceful stop: close the listener, drain jobs, close engines.

        Idempotent and terminal. Safe to call from any thread except
        one of the server's own handler threads (handlers wanting to
        stop the daemon hand off to a fresh thread — see
        ``POST /v1/shutdown``).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            server, thread = self._server, self._thread
            self._server, self._thread = None, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join()
        self.runner.close(drain=drain)
        self.engines.close()
        self._stopped.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until :meth:`shutdown` completes (the CLI's main
        loop; a ``POST /v1/shutdown`` unblocks it). True when stopped."""
        return self._stopped.wait(timeout)

    def __enter__(self) -> "Daemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class _ServeServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: Back-reference set by :meth:`Daemon.start`.
    app: Daemon


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    @property
    def app(self) -> Daemon:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Quiet by default; the daemon is not a terminal program."""

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server's casing
        try:
            path = urlparse(self.path).path.rstrip("/")
            if path == "/v1/health":
                self._health()
            elif path.startswith("/v1/tenants/"):
                self._tenant_status(path.removeprefix("/v1/tenants/"))
            elif path.startswith("/v1/jobs/") and path.endswith("/result"):
                job_id = path.removeprefix("/v1/jobs/").removesuffix(
                    "/result"
                )
                self._job_result(job_id.strip("/"))
            elif path.startswith("/v1/jobs/"):
                self._job_status(path.removeprefix("/v1/jobs/"))
            else:
                self._send_json(404, {"error": "unknown-route", "path": path})
        except Exception as exc:  # noqa: BLE001 — a handler must answer
            self._send_json(
                500, {"error": "internal", "detail": f"{type(exc).__name__}: {exc}"}
            )

    def do_POST(self) -> None:  # noqa: N802 — http.server's casing
        try:
            path = urlparse(self.path).path.rstrip("/")
            if path == "/v1/jobs":
                self._submit()
            elif path == "/v1/tenants":
                self._declare()
            elif path == "/v1/shutdown":
                self._shutdown()
            else:
                self._send_json(404, {"error": "unknown-route", "path": path})
        except json.JSONDecodeError as exc:
            self._send_json(
                400, {"error": "bad-request", "detail": f"invalid JSON: {exc}"}
            )
        except Exception as exc:  # noqa: BLE001 — a handler must answer
            self._send_json(
                500, {"error": "internal", "detail": f"{type(exc).__name__}: {exc}"}
            )

    # -- endpoints -----------------------------------------------------------

    def _health(self) -> None:
        app = self.app
        self._send_json(
            200,
            {
                "status": "ok",
                "jobs": len(app.runner.jobs()),
                "warm_engines": len(app.engines),
                "tenants": app.store.tenants(),
            },
        )

    def _declare(self) -> None:
        payload = self._read_json()
        tenant = payload.get("tenant")
        budget = payload.get("budget")
        if not isinstance(tenant, str) or not isinstance(
            budget, (int, float)
        ):
            self._send_json(
                400,
                {
                    "error": "bad-request",
                    "detail": "body must be {tenant: str, budget: number}",
                },
            )
            return
        try:
            account = self.app.store.declare(tenant, float(budget))
        except (AccountError, ValueError) as exc:
            self._send_json(409, {"error": "conflict", "detail": str(exc)})
            return
        self._send_json(200, account.status())

    def _tenant_status(self, tenant: str) -> None:
        try:
            account = self.app.store.account(tenant)
        except UnknownTenantError:
            self._send_json(404, {"error": "unknown-tenant", "tenant": tenant})
            return
        self._send_json(200, account.status())

    def _submit(self) -> None:
        payload = self._read_json()
        tenant = payload.get("tenant")
        dataset = payload.get("dataset")
        spec = payload.get("spec")
        publish = payload.get("publish")
        if (
            not isinstance(tenant, str)
            or not isinstance(dataset, str)
            or not (publish is None or isinstance(publish, dict))
        ):
            self._send_json(
                400,
                {
                    "error": "bad-request",
                    "detail": (
                        "body must be {tenant: str, dataset: str, "
                        "spec: object|str, publish?: object}"
                    ),
                },
            )
            return
        try:
            job = self.app.runner.submit(tenant, spec, dataset, publish=publish)
        except BudgetExceededError as exc:
            self._send_json(429, exc.to_dict())
        except UnknownTenantError:
            self._send_json(404, {"error": "unknown-tenant", "tenant": tenant})
        except RuntimeError as exc:
            self._send_json(503, {"error": "shutting-down", "detail": str(exc)})
        except (ValueError, KeyError, TypeError, FileNotFoundError) as exc:
            self._send_json(400, {"error": "bad-request", "detail": str(exc)})
        else:
            self._send_json(202, job.to_dict())

    def _job_status(self, job_id: str) -> None:
        job = self.app.runner.get(job_id)
        if job is None:
            self._send_json(404, {"error": "unknown-job", "id": job_id})
            return
        self._send_json(200, job.to_dict())

    def _job_result(self, job_id: str) -> None:
        job = self.app.runner.get(job_id)
        if job is None:
            self._send_json(404, {"error": "unknown-job", "id": job_id})
            return
        snapshot = job.to_dict()
        if snapshot["state"] == "failed":
            self._send_json(
                409,
                {
                    "error": "job-failed",
                    "id": job_id,
                    "detail": snapshot["error"],
                },
            )
            return
        if snapshot["state"] != "done" or job.result_path is None:
            self._send_json(
                409,
                {
                    "error": "not-ready",
                    "id": job_id,
                    "state": snapshot["state"],
                },
            )
            return
        size = job.result_path.stat().st_size
        self.send_response(200)
        self.send_header("Content-Type", "text/csv")
        self.send_header("Content-Length", str(size))
        self.end_headers()
        with job.result_path.open("rb") as handle:
            while True:
                chunk = handle.read(CHUNK_BYTES)
                if not chunk:
                    break
                self.wfile.write(chunk)

    def _shutdown(self) -> None:
        payload = self._read_json()
        drain = bool(payload.get("drain", True))
        app = self.app
        # Answer first, then stop from a fresh thread: Daemon.shutdown
        # joins the serve loop, which waits for this very handler.
        self._send_json(202, {"status": "stopping", "drain": drain})
        threading.Thread(
            target=app.shutdown,
            kwargs={"drain": drain},
            name="repro-serve-shutdown",
            daemon=True,
        ).start()
