"""Laplace machinery: noise sampling, mechanism wrapper, budget accounting.

The paper's local mechanism relies on a *non-trivial* Laplace mechanism
whose distribution mean is non-zero (Theorem 2 proves this preserves
ε-DP as long as the scale stays ``∆φ/ε``). This module provides

* :func:`laplace_noise` — a seeded ``Lap(μ, λ)`` sampler;
* :class:`LaplaceMechanism` — query perturbation with explicit
  sensitivity and post-processing (integer rounding / range clamping,
  which never weakens the guarantee — Dwork & Roth §2.1);
* :class:`PrivacyAccountant` — sequential-composition bookkeeping
  (Theorem 1): the total budget is the sum of the budgets of the
  mechanisms applied.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field


def laplace_noise(rng: random.Random, mu: float = 0.0, scale: float = 1.0) -> float:
    """One sample from ``Lap(μ, λ)`` via inverse-CDF sampling.

    ``scale`` must be positive; ``μ`` may be any real (the non-trivial
    mechanism uses ``μ = -f_k`` and ``μ = -μ̄``).
    """
    if scale <= 0.0:
        raise ValueError(f"Laplace scale must be positive, got {scale}")
    # Uniform in (-0.5, 0.5]; guard the u == -0.5 endpoint where the
    # inverse CDF diverges.
    u = rng.random() - 0.5
    while u == -0.5:
        u = rng.random() - 0.5
    return mu - scale * math.copysign(1.0, u) * math.log(1.0 - 2.0 * abs(u))


def round_to_int(value: float) -> int:
    """Round-half-away-from-zero to the nearest integer.

    The paper's post-processing rounds noisy frequencies to "a proper
    integer"; banker's rounding would bias counts at .5 boundaries, so
    we round half away from zero.
    """
    return int(math.floor(value + 0.5)) if value >= 0 else -int(math.floor(-value + 0.5))


def clamp(value: int, lower: int, upper: int) -> int:
    """Clamp ``value`` into ``[lower, upper]`` (Algorithm 1, line 5)."""
    if lower > upper:
        raise ValueError(f"invalid clamp range [{lower}, {upper}]")
    return max(lower, min(upper, value))


@dataclass(slots=True)
class LaplaceMechanism:
    """An ε-DP Laplace mechanism for counting queries.

    ``sensitivity`` is ∆φ (1 for both of the paper's point-counting
    queries), so the noise scale is ``sensitivity / epsilon``.
    """

    epsilon: float
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0.0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.sensitivity <= 0.0:
            raise ValueError(f"sensitivity must be positive, got {self.sensitivity}")

    @property
    def scale(self) -> float:
        return self.sensitivity / self.epsilon

    def perturb(self, value: float, rng: random.Random, mu: float = 0.0) -> float:
        """``value + Lap(μ, ∆φ/ε)`` — the raw noisy answer."""
        return value + laplace_noise(rng, mu=mu, scale=self.scale)

    def perturb_count(
        self,
        value: int,
        rng: random.Random,
        mu: float = 0.0,
        lower: int = 0,
        upper: int | None = None,
    ) -> int:
        """Noisy count with the paper's post-processing applied.

        Rounds to the nearest integer and clamps into ``[lower, upper]``
        (``upper=None`` leaves the top unbounded). Pure post-processing,
        so the ε-DP guarantee of the raw answer carries over.
        """
        noisy = round_to_int(self.perturb(float(value), rng, mu=mu))
        if upper is None:
            return max(lower, noisy)
        return clamp(noisy, lower, upper)


class BudgetExceededError(RuntimeError):
    """Raised when a mechanism tries to spend more budget than remains."""


@dataclass(slots=True)
class PrivacyAccountant:
    """Sequential-composition ledger (Theorem 1).

    Mechanisms register their spend; the accountant refuses spends that
    would push the total over ``total_budget``. Used by the pipeline to
    guarantee the advertised ε = ε_G + ε_L is never exceeded.
    """

    total_budget: float
    _spent: list[tuple[str, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total_budget <= 0.0:
            raise ValueError("total budget must be positive")

    @property
    def spent(self) -> float:
        return sum(amount for _, amount in self._spent)

    @property
    def remaining(self) -> float:
        return self.total_budget - self.spent

    def spend(self, label: str, epsilon: float) -> None:
        """Record that ``label`` consumed ``epsilon`` of the budget."""
        if epsilon <= 0.0:
            raise ValueError("spend must be positive")
        if self.spent + epsilon > self.total_budget + 1e-12:
            raise BudgetExceededError(
                f"spending {epsilon} on {label!r} would exceed the total "
                f"budget {self.total_budget} (already spent {self.spent})"
            )
        self._spent.append((label, epsilon))

    def ledger(self) -> list[tuple[str, float]]:
        """A copy of the (label, epsilon) spend history."""
        return list(self._spent)
