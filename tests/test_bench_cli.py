"""Tests for the ``repro bench`` CLI subcommand (exit contract 0/1/2)."""

import json

import pytest

from repro.bench import BenchHistory, BenchRecord, BenchScale
from repro.cli import main

PAPER = BenchScale(
    n_objects=500, points_per_trajectory=300, signature_size=10,
    paper_scale=True,
)
SMOKE = BenchScale(
    n_objects=60, points_per_trajectory=120, signature_size=5,
)

SNAPSHOT = {
    "bench": "engine",
    "python": "3.11.7",
    "scale": PAPER.to_dict(),
    "inter_modification": {"wave_s": 12.0, "restart_s": 18.0},
    "speedups": {"wave_over_restart": 1.5},
}


def _append(history_path, wave_s, *, scale=PAPER):
    BenchHistory(history_path).append(
        BenchRecord(
            bench="engine",
            scale=scale,
            python="3.11.7",
            metrics={"inter_modification": {"wave_s": wave_s}},
            provenance={"source": "fixture"},
        )
    )


@pytest.fixture
def history_path(tmp_path):
    return tmp_path / "BENCH_history.jsonl"


class TestRecord:
    def test_snapshot_import(self, tmp_path, history_path, capsys):
        snapshot = tmp_path / "BENCH_engine.json"
        snapshot.write_text(json.dumps(SNAPSHOT))
        code = main(
            [
                "bench", "record",
                "--snapshot", str(snapshot),
                "--history", str(history_path),
                "--source", "unit-test",
            ]
        )
        assert code == 0
        assert "recorded bench engine @ paper-500x300-m10" in (
            capsys.readouterr().out
        )
        (record,) = BenchHistory(history_path).load()
        assert record.provenance == {"source": "unit-test"}

    def test_record_requires_snapshot(self, history_path, capsys):
        code = main(["bench", "record", "--history", str(history_path)])
        assert code == 2
        assert "--snapshot is required" in capsys.readouterr().err

    def test_unreadable_snapshot_exits_two(
        self, tmp_path, history_path, capsys
    ):
        snapshot = tmp_path / "broken.json"
        snapshot.write_text("{nope")
        code = main(
            [
                "bench", "record",
                "--snapshot", str(snapshot),
                "--history", str(history_path),
            ]
        )
        assert code == 2
        assert "repro bench record:" in capsys.readouterr().err


class TestCompare:
    def test_stable_history_is_clean(self, history_path, capsys):
        for value in (10.0, 10.1, 9.9):
            _append(history_path, value)
        code = main(["bench", "compare", "--history", str(history_path)])
        assert code == 0
        assert "stable" in capsys.readouterr().out

    def test_regression_exits_one(self, history_path, capsys):
        for value in (10.0, 10.1, 12.6):  # +25% over median
            _append(history_path, value)
        code = main(["bench", "compare", "--history", str(history_path)])
        assert code == 1
        assert "significant_degradation" in capsys.readouterr().out

    def test_missing_history_exits_two(self, history_path, capsys):
        code = main(["bench", "compare", "--history", str(history_path)])
        assert code == 2
        assert "no benchmark history" in capsys.readouterr().err

    def test_two_scales_need_explicit_choice(self, history_path, capsys):
        _append(history_path, 10.0, scale=PAPER)
        _append(history_path, 0.2, scale=SMOKE)
        code = main(["bench", "compare", "--history", str(history_path)])
        assert code == 2
        assert "--scale" in capsys.readouterr().err

    def test_scale_family_selects_partition(self, history_path, capsys):
        _append(history_path, 10.0, scale=PAPER)
        _append(history_path, 10.1, scale=PAPER)
        _append(history_path, 0.2, scale=SMOKE)
        code = main(
            [
                "bench", "compare",
                "--history", str(history_path),
                "--scale", "paper",
            ]
        )
        assert code == 0
        assert "paper-500x300-m10" in capsys.readouterr().out


class TestReport:
    def test_covers_all_partitions(self, history_path, capsys):
        _append(history_path, 10.0, scale=PAPER)
        _append(history_path, 0.2, scale=SMOKE)
        code = main(["bench", "report", "--history", str(history_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper-500x300-m10" in out
        assert "smoke-60x120-m5" in out

    def test_empty_history_exits_two(self, history_path, capsys):
        history_path.write_text("")
        code = main(["bench", "report", "--history", str(history_path)])
        assert code == 2
        assert "is empty" in capsys.readouterr().err

    def test_json_format(self, history_path, capsys):
        _append(history_path, 10.0)
        _append(history_path, 12.6)
        code = main(
            [
                "bench", "report",
                "--history", str(history_path),
                "--format", "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["clean"] is False
        (comparison,) = payload["comparisons"]
        assert comparison["scale"] == "paper-500x300-m10"

    def test_custom_thresholds_change_verdict(self, history_path):
        _append(history_path, 10.0)
        _append(history_path, 12.6)
        code = main(
            [
                "bench", "report",
                "--history", str(history_path),
                "--minor", "0.10", "--significant", "0.50",
            ]
        )
        assert code == 0  # +26% is only minor under the relaxed gate
