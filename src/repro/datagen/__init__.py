"""Synthetic data substrate: road network + T-Drive-like taxi fleet.

The paper evaluates on T-Drive (10,357 Beijing taxis, one week). That
dataset is not redistributable here, so this package builds the closest
synthetic equivalent: a planar road network and a fleet generator whose
output reproduces the *structure* the paper's mechanisms exploit —
per-object anchor locations (high PF, low TF signatures), shared
hotspots (high TF), road-constrained movement (so map-matching recovery
is meaningful), and T-Drive's scale knobs (~600 m point spacing, ~3.1
minute sampling interval, ~1.8k points per object).
"""

from repro.datagen.road_network import RoadNetwork, build_road_network
from repro.datagen.generator import FleetConfig, generate_fleet

__all__ = [
    "FleetConfig",
    "RoadNetwork",
    "build_road_network",
    "generate_fleet",
]
