"""Integration tests for the PureG / PureL / GL anonymizers."""

import pytest

from repro.core.pipeline import GL, FrequencyAnonymizer, PureG, PureL
from repro.datagen.generator import FleetConfig, generate_fleet
from repro.trajectory.model import TrajectoryDataset


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(
        FleetConfig(n_objects=15, points_per_trajectory=80, rows=12, cols=12, seed=3)
    )


class TestConfiguration:
    def test_requires_at_least_one_mechanism(self):
        with pytest.raises(ValueError):
            FrequencyAnonymizer(epsilon_global=None, epsilon_local=None)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon_global": -0.5},
            {"epsilon_local": -1.0},
            {"epsilon_global": -0.5, "epsilon_local": -0.5},
            {"epsilon_global": float("nan")},
        ],
    )
    def test_rejects_invalid_epsilon(self, kwargs):
        with pytest.raises(ValueError, match="non-negative"):
            FrequencyAnonymizer(**kwargs)

    def test_pure_variants_reject_negative_epsilon(self):
        with pytest.raises(ValueError, match="non-negative"):
            PureG(epsilon=-1.0)
        with pytest.raises(ValueError, match="non-negative"):
            PureL(epsilon=-1.0)
        with pytest.raises(ValueError, match="non-negative"):
            GL(epsilon=-2.0)

    def test_explicit_zero_epsilon_is_rejected(self):
        """ε=0 must not be silently conflated with "stage disabled"."""
        with pytest.raises(ValueError, match="explicit zero budget"):
            FrequencyAnonymizer(epsilon_global=0.0, epsilon_local=0.5)
        with pytest.raises(ValueError, match="epsilon_local=0"):
            FrequencyAnonymizer(epsilon_global=0.5, epsilon_local=0.0)

    def test_none_disables_a_stage(self):
        anonymizer = FrequencyAnonymizer(epsilon_global=None, epsilon_local=0.5)
        assert anonymizer.epsilon == pytest.approx(0.5)

    def test_epsilon_composition(self):
        anonymizer = FrequencyAnonymizer(epsilon_global=0.3, epsilon_local=0.7)
        assert anonymizer.epsilon == pytest.approx(1.0)

    def test_gl_splits_evenly(self):
        gl = GL(epsilon=2.0, seed=0)
        assert gl.epsilon_global == pytest.approx(1.0)
        assert gl.epsilon_local == pytest.approx(1.0)

    def test_pure_variants(self):
        assert PureG(epsilon=0.5).epsilon == pytest.approx(0.5)
        assert PureL(epsilon=0.5).epsilon == pytest.approx(0.5)


class TestAnonymization:
    def test_pureg_changes_tf_only_modestly(self, fleet):
        anonymizer = PureG(epsilon=0.5, signature_size=3, seed=1)
        result, report = anonymizer.anonymize_with_report(fleet.dataset)
        assert len(result) == len(fleet.dataset)
        assert report is not None
        assert report.tf_perturbation is not None
        assert report.local_report is None
        # The realised TF must match the perturbed target for every
        # location where realisation was possible.
        tf = result.trajectory_frequencies()
        unrealised = report.global_report.unrealised
        mismatches = sum(
            1
            for loc, target in report.tf_perturbation.perturbed.items()
            if tf.get(loc, 0) != target
        )
        assert mismatches <= unrealised

    def test_purel_satisfies_perturbed_pf(self, fleet):
        anonymizer = PureL(epsilon=0.5, signature_size=3, seed=2)
        result, report = anonymizer.anonymize_with_report(fleet.dataset)
        assert report.pf_perturbations is not None
        assert report.global_report is None
        for trajectory in result:
            perturbation = report.pf_perturbations[trajectory.object_id]
            pf = trajectory.point_frequencies()
            for loc, target in perturbation.perturbed.items():
                assert pf.get(loc, 0) == target, (trajectory.object_id, loc)

    def test_gl_runs_both_stages(self, fleet):
        anonymizer = GL(epsilon=1.0, signature_size=3, seed=3)
        result, report = anonymizer.anonymize_with_report(fleet.dataset)
        assert report.global_report is not None
        assert report.local_report is not None
        assert report.utility_loss >= 0.0
        assert len(result) == len(fleet.dataset)
        assert [t.object_id for t in result] == [t.object_id for t in fleet.dataset]

    def test_budget_ledger_matches_stages(self, fleet):
        anonymizer = GL(epsilon=1.0, signature_size=3, seed=4)
        _, report = anonymizer.anonymize_with_report(fleet.dataset)
        ledger = report.budget_ledger
        assert len(ledger) == 2
        assert sum(eps for _, eps in ledger) == pytest.approx(1.0)

    def test_input_never_mutated(self, fleet):
        snapshot = [
            [p.coord for p in trajectory] for trajectory in fleet.dataset
        ]
        GL(epsilon=1.0, signature_size=3, seed=5).anonymize(fleet.dataset)
        for trajectory, coords in zip(fleet.dataset, snapshot, strict=True):
            assert [p.coord for p in trajectory] == coords

    def test_deterministic_for_seed(self, fleet):
        a = GL(epsilon=1.0, signature_size=3, seed=6).anonymize(fleet.dataset)
        b = GL(epsilon=1.0, signature_size=3, seed=6).anonymize(fleet.dataset)
        for ta, tb in zip(a, b, strict=True):
            assert [p.coord for p in ta] == [p.coord for p in tb]

    def test_different_seeds_differ(self, fleet):
        a = GL(epsilon=1.0, signature_size=3, seed=7).anonymize(fleet.dataset)
        b = GL(epsilon=1.0, signature_size=3, seed=8).anonymize(fleet.dataset)
        assert any(
            [p.coord for p in ta] != [p.coord for p in tb]
            for ta, tb in zip(a, b, strict=True)
        )

    def test_repeated_calls_draw_fresh_noise(self, fleet):
        """One seeded instance must not reuse noise across datasets
        (regression: the per-call RNG used to be rebuilt from the same
        seed on every anonymize() call)."""
        anonymizer = GL(epsilon=1.0, signature_size=3, seed=30)
        first = anonymizer.anonymize(fleet.dataset)
        second = anonymizer.anonymize(fleet.dataset)
        assert any(
            [p.coord for p in ta] != [p.coord for p in tb]
            for ta, tb in zip(first, second, strict=True)
        )

    def test_call_sequence_reproducible_across_instances(self, fleet):
        """Fresh instance + same seed replays the same call sequence."""
        runs = []
        for _ in range(2):
            anonymizer = GL(epsilon=1.0, signature_size=3, seed=31)
            runs.append(
                [
                    [[p.coord for p in t] for t in anonymizer.anonymize(fleet.dataset)]
                    for _ in range(2)
                ]
            )
        assert runs[0] == runs[1]

    def test_composition_order_exchangeable(self, fleet):
        """Both orders must run cleanly and produce valid datasets."""
        lg = FrequencyAnonymizer(
            epsilon_global=0.5, epsilon_local=0.5, signature_size=3,
            global_first=False, seed=9,
        )
        result, report = lg.anonymize_with_report(fleet.dataset)
        assert len(result) == len(fleet.dataset)
        assert report.global_report is not None
        assert report.local_report is not None

    def test_signature_frequencies_reduced_on_average(self, fleet):
        """The headline behaviour: top signature locations lose occurrences."""
        from repro.core.signature import SignatureExtractor

        extractor = SignatureExtractor(m=3)
        index = extractor.extract(fleet.dataset)
        anonymizer = PureL(epsilon=1.0, signature_size=3, seed=10)
        result = anonymizer.anonymize(fleet.dataset)
        drop = 0
        total = 0
        for trajectory in fleet.dataset:
            modified = result.by_id(trajectory.object_id)
            pf_before = trajectory.point_frequencies()
            pf_after = modified.point_frequencies()
            top = index.signatures[trajectory.object_id][0]
            total += pf_before[top.loc]
            drop += pf_before[top.loc] - pf_after.get(top.loc, 0)
        assert drop / total > 0.5  # most signature mass removed

    def test_cardinality_roughly_preserved(self, fleet):
        """Stage 2 keeps the dataset size in the same ballpark."""
        anonymizer = PureL(epsilon=1.0, signature_size=3, seed=11)
        result = anonymizer.anonymize(fleet.dataset)
        before = fleet.dataset.total_points()
        after = result.total_points()
        assert after > before * 0.7
        assert after < before * 1.3

    def test_report_serialisation(self, fleet):
        import json

        anonymizer = GL(epsilon=1.0, signature_size=3, seed=13)
        _, report = anonymizer.anonymize_with_report(fleet.dataset)
        summary = report.to_dict()
        # Must be valid JSON with the advertised structure.
        encoded = json.dumps(summary)
        decoded = json.loads(encoded)
        assert decoded["epsilon_total"] == pytest.approx(1.0)
        assert len(decoded["budget_ledger"]) == 2
        assert decoded["global"]["insertions"] >= 0
        assert decoded["local"]["deletions"] >= 0
        assert decoded["tf_locations_perturbed"] > 0
        assert decoded["trajectories_locally_perturbed"] == len(fleet.dataset)

    def test_bbox_selection_pipeline(self, fleet):
        anonymizer = PureG(
            epsilon=0.5,
            signature_size=3,
            trajectory_selection="bbox",
            seed=14,
        )
        result = anonymizer.anonymize(fleet.dataset)
        assert len(result) == len(fleet.dataset)

    def test_works_with_all_backends(self, fleet):
        small = TrajectoryDataset(
            [t.copy() for t in list(fleet.dataset)[:5]]
        )
        for backend in ("linear", "uniform", "hierarchical"):
            anonymizer = GL(
                epsilon=1.0,
                signature_size=2,
                index_backend=backend,
                granularity=64,
                levels=7,
                seed=12,
            )
            result = anonymizer.anonymize(small)
            assert len(result) == 5


class TestLastReportDeprecation:
    """The silent alias era is over: reads and writes both warn."""

    def test_read_warns_and_returns_latest_report(self, fleet):
        anonymizer = PureL(epsilon=0.5, signature_size=3, seed=21)
        anonymizer.anonymize(fleet.dataset)
        with pytest.warns(DeprecationWarning, match="last_report is deprecated"):
            report = anonymizer.last_report
        assert report is not None
        assert report.pf_perturbations is not None

    def test_write_warns(self):
        anonymizer = PureL(epsilon=0.5, signature_size=3, seed=22)
        with pytest.warns(DeprecationWarning, match="last_report"):
            anonymizer.last_report = None

    def test_documented_replacement_is_race_free(self, fleet):
        """anonymize_with_report returns the report with the result —
        nothing observable is stored on the instance."""
        anonymizer = PureL(epsilon=0.5, signature_size=3, seed=23)
        result, report = anonymizer.anonymize_with_report(fleet.dataset)
        assert len(result) == len(fleet.dataset)
        assert report.pf_perturbations is not None
        # The per-call path must not touch the deprecated alias.
        assert anonymizer._last_report is None

    def test_batch_engine_alias_warns(self, fleet):
        from repro.engine.batch import BatchAnonymizer

        engine = BatchAnonymizer(
            PureL(epsilon=0.5, signature_size=3, seed=24), workers=1
        )
        engine.anonymize(fleet.dataset)
        with pytest.warns(DeprecationWarning, match="last_report is deprecated"):
            assert engine.last_report is not None
