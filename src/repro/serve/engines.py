"""Warm anonymizer instances shared across daemon requests.

Building a :class:`~repro.engine.BatchAnonymizer` per request would
pay pool construction on every job; the daemon instead keeps one warm
engine per distinct :class:`~repro.api.spec.MethodSpec` digest and
routes every job with that configuration through it. Concurrent calls
on one engine are safe by design (reports travel with the return
value, noise streams are reserved per call), so the cache needs no
per-engine serialization — only its own map lock.

Frequency-family methods get the batch engine (warm worker pools);
other families are cached as their bare anonymizer — they have no
pool to keep warm, but construction (e.g. a fitted generative
baseline's setup) is still amortized.
"""

from __future__ import annotations

import threading

from repro.api.registry import build
from repro.api.spec import MethodSpec
from repro.core.pipeline import FrequencyAnonymizer
from repro.engine.batch import BatchAnonymizer

__all__ = ["EngineCache"]


class EngineCache:
    """``spec.digest -> warm anonymizer`` map with a close lifecycle.

    Parameters mirror the batch engine's pool knobs; they apply to
    every frequency-family engine the cache builds.
    """

    def __init__(
        self,
        workers: int | None = None,
        executor: str = "process",
        shards_per_worker: int = 4,
        global_workers: int | None = 1,
    ) -> None:
        self.workers = workers
        self.executor = executor
        self.shards_per_worker = shards_per_worker
        self.global_workers = global_workers
        self._engines: dict[str, object] = {}
        self._lock = threading.Lock()
        self._closed = False

    def __len__(self) -> int:
        return len(self._engines)

    def get(self, spec: MethodSpec):
        """The warm engine for ``spec``, building it on first use."""
        key = spec.digest
        with self._lock:
            if self._closed:
                raise RuntimeError(
                    "EngineCache is closed; the daemon is shutting down"
                )
            engine = self._engines.get(key)
            if engine is None:
                anonymizer = build(spec)
                if isinstance(anonymizer, FrequencyAnonymizer):
                    engine = BatchAnonymizer(
                        anonymizer,
                        workers=self.workers,
                        executor=self.executor,
                        shards_per_worker=self.shards_per_worker,
                        global_workers=self.global_workers,
                    )
                else:
                    engine = anonymizer
                self._engines[key] = engine
            return engine

    def close(self) -> None:
        """Tear every warm engine down; idempotent and terminal.

        Callers must drain in-flight jobs first — closing an engine
        must not race calls still using it (the runner's shutdown
        sequence does exactly that).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            engines = list(self._engines.values())
            self._engines.clear()
        for engine in engines:
            close = getattr(engine, "close", None)
            if callable(close):
                close()
