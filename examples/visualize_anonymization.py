#!/usr/bin/env python
"""Visualize what the anonymizer actually does to a trajectory.

Renders three SVGs into the output directory:

* ``fleet.svg``        — the whole fleet over the road network, with
  every object's signature points marked;
* ``before_after.svg`` — one taxi's original (blue) vs GL-anonymized
  (orange) trajectory;
* ``private_fleet.svg`` — the published dataset.

Run with::

    python examples/visualize_anonymization.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro import FleetConfig, GL, generate_fleet
from repro.core.signature import SignatureExtractor
from repro.viz.svg import render_comparison, render_fleet


def main() -> None:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(tempfile.gettempdir()) / "repro_viz"
    )
    output.mkdir(parents=True, exist_ok=True)

    fleet = generate_fleet(
        FleetConfig(n_objects=12, points_per_trajectory=120, rows=14, cols=14, seed=21)
    )

    # Mark every object's top-3 signature locations.
    index = SignatureExtractor(m=3).extract(fleet.dataset)
    markers = sorted(index.candidate_set)
    (output / "fleet.svg").write_text(
        render_fleet(fleet.dataset, network=fleet.network, markers=markers)
    )
    print(f"fleet + signatures      -> {output / 'fleet.svg'}")

    anonymizer = GL(epsilon=1.0, signature_size=3, seed=5)
    private = anonymizer.anonymize(fleet.dataset)

    (output / "before_after.svg").write_text(
        render_comparison(
            fleet.dataset[0], private[0], network=fleet.network
        )
    )
    print(f"one taxi before/after   -> {output / 'before_after.svg'}")

    (output / "private_fleet.svg").write_text(
        render_fleet(private, network=fleet.network)
    )
    print(f"published dataset       -> {output / 'private_fleet.svg'}")

    report = anonymizer.last_report
    print(f"\nedits applied: {report.global_report.insertions + report.local_report.insertions} "
          f"insertions, {report.global_report.deletions + report.local_report.deletions} deletions "
          f"across {len(private)} trajectories")
    print("Open the SVGs in a browser; the orange detours and missing")
    print("dwell clusters are the frequency perturbation at work.")


if __name__ == "__main__":
    main()
