"""Command-line interface.

Subcommands::

    repro generate   synthesize a fleet and write it as CSV
    repro anonymize  apply PureG / PureL / GL to a CSV dataset
    repro attack     run the linkage attack between two CSV datasets
    repro evaluate   compute utility metrics between two CSV datasets
    repro experiment regenerate a table/figure of the paper

Example session::

    repro generate --objects 50 --points 150 -o fleet.csv
    repro anonymize -i fleet.csv -o private.csv --model gl --epsilon 1.0
    repro attack -i fleet.csv -a private.csv --kind spatial
    repro evaluate -i fleet.csv -a private.csv
"""

from __future__ import annotations

import argparse
import sys

from repro.attacks.linkage import SIGNATURE_KINDS, LinkageAttack
from repro.core.pipeline import GL, FrequencyAnonymizer, PureG, PureL
from repro.datagen.generator import FleetConfig, generate_fleet
from repro.metrics.privacy import mutual_information
from repro.metrics.utility import (
    diameter_error,
    frequent_pattern_f1,
    information_loss,
    trip_error,
)
from repro.trajectory.io import read_csv, write_csv

MODELS = ("gl", "pureg", "purel")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Frequency-based DP randomization for spatial trajectories",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="synthesize a taxi fleet")
    generate.add_argument("--objects", type=int, default=50)
    generate.add_argument("--points", type=int, default=150)
    generate.add_argument("--rows", type=int, default=16)
    generate.add_argument("--cols", type=int, default=16)
    generate.add_argument("--hotspots", type=int, default=12)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("-o", "--output", required=True)

    anonymize = sub.add_parser("anonymize", help="anonymize a CSV dataset")
    anonymize.add_argument("-i", "--input", required=True)
    anonymize.add_argument("-o", "--output", required=True)
    anonymize.add_argument("--model", choices=MODELS, default="gl")
    anonymize.add_argument("--epsilon", type=float, default=1.0)
    anonymize.add_argument("--signature-size", type=int, default=10)
    anonymize.add_argument("--seed", type=int, default=None)
    anonymize.add_argument(
        "--index",
        choices=("linear", "uniform", "hierarchical"),
        default="hierarchical",
    )
    anonymize.add_argument(
        "--strategy",
        choices=("top_down", "bottom_up", "bottom_up_down"),
        default="bottom_up_down",
    )
    anonymize.add_argument(
        "--engine",
        choices=("serial", "batch"),
        default="serial",
        help="'batch' shards the local stage across a worker pool "
        "(output is byte-identical to serial for the same seed)",
    )
    anonymize.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="pool size for --engine batch; 0 = one per CPU core",
    )
    anonymize.add_argument(
        "--executor",
        choices=("process", "thread", "serial"),
        default="process",
        help="worker pool kind for --engine batch",
    )

    attack = sub.add_parser("attack", help="linkage attack between datasets")
    attack.add_argument("-i", "--original", required=True)
    attack.add_argument("-a", "--anonymized", required=True)
    attack.add_argument("--kind", choices=SIGNATURE_KINDS + ("all",), default="all")
    attack.add_argument("--cell", type=float, default=250.0)

    evaluate = sub.add_parser("evaluate", help="utility metrics between datasets")
    evaluate.add_argument("-i", "--original", required=True)
    evaluate.add_argument("-a", "--anonymized", required=True)

    experiment = sub.add_parser("experiment", help="regenerate a paper artifact")
    experiment.add_argument("target", choices=("table2", "fig4", "fig5"))
    experiment.add_argument(
        "--preset", choices=("smoke", "default", "large"), default="default"
    )
    experiment.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan the sweep across N worker processes (1 = serial)",
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    fleet = generate_fleet(
        FleetConfig(
            n_objects=args.objects,
            points_per_trajectory=args.points,
            rows=args.rows,
            cols=args.cols,
            n_hotspots=args.hotspots,
            seed=args.seed,
        )
    )
    write_csv(fleet.dataset, args.output)
    stats = fleet.dataset.stats()
    print(
        f"wrote {int(stats['trajectories'])} trajectories "
        f"({int(stats['total_points'])} points) to {args.output}"
    )
    return 0


def _make_anonymizer(args: argparse.Namespace) -> FrequencyAnonymizer:
    common = dict(
        signature_size=args.signature_size,
        index_backend=args.index,
        search_strategy=args.strategy,
        seed=args.seed,
    )
    if args.model == "gl":
        return GL(epsilon=args.epsilon, **common)
    if args.model == "pureg":
        return PureG(epsilon=args.epsilon, **common)
    return PureL(epsilon=args.epsilon, **common)


def _cmd_anonymize(args: argparse.Namespace) -> int:
    dataset = read_csv(args.input)
    anonymizer = _make_anonymizer(args)
    if args.engine == "batch":
        from repro.engine import BatchAnonymizer

        engine = BatchAnonymizer(
            anonymizer, workers=args.workers, executor=args.executor
        )
        private = engine.anonymize(dataset)
    else:
        private = anonymizer.anonymize(dataset)
    write_csv(private, args.output)
    report = anonymizer.last_report
    print(f"anonymized {len(private)} trajectories with {args.model.upper()} "
          f"(eps = {report.epsilon_total:g}) -> {args.output}")
    for label, epsilon in report.budget_ledger:
        print(f"  budget: {epsilon:g} on {label}")
    print(f"  utility loss: {report.utility_loss / 1000.0:.2f} km")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    original = read_csv(args.original)
    anonymized = read_csv(args.anonymized)
    attack = LinkageAttack(cell_size=args.cell)
    kinds = SIGNATURE_KINDS if args.kind == "all" else (args.kind,)
    for kind in kinds:
        result = attack.link(original, anonymized, kind=kind)
        print(f"LA_{kind:<15s} {result.accuracy:.3f} "
              f"({result.correct}/{result.total} linked)")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    original = read_csv(args.original)
    anonymized = read_csv(args.anonymized)
    print(f"MI   {mutual_information(original, anonymized):.3f}")
    print(f"INF  {information_loss(original, anonymized, sample_stride=2):.3f}")
    print(f"DE   {diameter_error(original, anonymized):.3f}")
    print(f"TE   {trip_error(original, anonymized):.3f}")
    print(f"FFP  {frequent_pattern_f1(original, anonymized):.3f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.target == "table2":
        from repro.experiments.table2 import main as experiment_main
    elif args.target == "fig4":
        from repro.experiments.fig4 import main as experiment_main
    else:
        from repro.experiments.fig5 import main as experiment_main
    argv = [args.preset]
    if args.workers != 1:
        argv.append(str(args.workers))
    experiment_main(argv)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "anonymize": _cmd_anonymize,
        "attack": _cmd_attack,
        "evaluate": _cmd_evaluate,
        "experiment": _cmd_experiment,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like
        # well-behaved CLI tools do.
        import os

        os.close(sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
