"""Trajectory-to-trajectory distances.

These are substrates for the k-anonymity baselines:

* :func:`spatiotemporal_edit_distance` — the EDR-style measure W4M uses
  to cluster trajectories;
* :func:`synchronized_distance` — GLOVE/KLT merge cost: the average
  spatial gap between time-aligned samples;
* :func:`hausdorff_distance` — a shape-only distance used in tests and
  as a generic similarity.

All operate on :class:`repro.trajectory.model.Trajectory`.
"""

from __future__ import annotations

import math

from repro.geo.geometry import point_distance
from repro.trajectory.model import Trajectory


def hausdorff_distance(a: Trajectory, b: Trajectory) -> float:
    """Symmetric Hausdorff distance between the two point sets."""
    if len(a) == 0 or len(b) == 0:
        raise ValueError("cannot compute Hausdorff distance with an empty trajectory")
    coords_a = a.coords()
    coords_b = b.coords()

    def directed(src: list, dst: list) -> float:
        worst = 0.0
        for p in src:
            best = min(point_distance(p, q) for q in dst)
            if best > worst:
                worst = best
        return worst

    return max(directed(coords_a, coords_b), directed(coords_b, coords_a))


def spatiotemporal_edit_distance(
    a: Trajectory,
    b: Trajectory,
    match_radius: float = 500.0,
    time_tolerance: float = 600.0,
    band: int | None = 64,
) -> float:
    """EDR-style edit distance with a spatiotemporal match predicate.

    Two samples match when they are within ``match_radius`` metres *and*
    ``time_tolerance`` seconds of each other; the distance is the minimum
    number of insert/delete/substitute operations, normalised by the
    longer trajectory so the result lies in ``[0, 1]``.

    ``band`` restricts the dynamic program to a Sakoe-Chiba band of that
    half-width, which keeps the computation linear for the long
    trajectories produced by the generator; pass ``None`` for the exact
    quadratic version.
    """
    pa, pb = a.points, b.points
    n, m = len(pa), len(pb)
    if n == 0 and m == 0:
        return 0.0
    if n == 0 or m == 0:
        return 1.0
    if band is None:
        band = max(n, m)
    band = max(band, abs(n - m) + 1)
    inf = float("inf")
    previous = [float(j) if j <= band else inf for j in range(m + 1)]
    for i in range(1, n + 1):
        lo = max(1, i - band)
        hi = min(m, i + band)
        current = [inf] * (m + 1)
        current[lo - 1] = float(i) if lo == 1 else inf
        if lo == 1:
            current[0] = float(i)
        for j in range(lo, hi + 1):
            sample_a = pa[i - 1]
            sample_b = pb[j - 1]
            matches = (
                point_distance(sample_a.coord, sample_b.coord) <= match_radius
                and abs(sample_a.t - sample_b.t) <= time_tolerance
            )
            substitution = previous[j - 1] + (0.0 if matches else 1.0)
            deletion = previous[j] + 1.0
            insertion = current[j - 1] + 1.0
            current[j] = min(substitution, deletion, insertion)
        previous = current
    result = previous[m]
    if math.isinf(result):
        return 1.0
    return result / max(n, m)


def _interpolate_at(points: list, fraction: float) -> tuple[float, float]:
    """Linear interpolation along the index range of a point list."""
    position = fraction * (len(points) - 1)
    lower = int(position)
    upper = min(lower + 1, len(points) - 1)
    t = position - lower
    ax, ay = points[lower].coord
    bx, by = points[upper].coord
    return (ax + t * (bx - ax), ay + t * (by - ay))


def synchronized_distance(
    a: Trajectory, b: Trajectory, samples: int = 32
) -> float:
    """Mean spatial gap between the trajectories at aligned index fractions.

    Both trajectories are resampled (with linear interpolation) at
    ``samples`` evenly spaced positions along their own index range and
    compared pairwise. This is the merge cost GLOVE minimises when
    pairing trajectories for generalization; it is deliberately cheap
    (O(samples)).
    """
    if len(a) == 0 or len(b) == 0:
        raise ValueError("cannot compare an empty trajectory")
    total = 0.0
    for k in range(samples):
        fraction = k / max(samples - 1, 1)
        total += point_distance(
            _interpolate_at(a.points, fraction), _interpolate_at(b.points, fraction)
        )
    return total / samples
