"""Algorithm 2: the local PF randomization mechanism.

For each trajectory, a list of ``2m`` target locations is selected
(top-m signature first, then other candidate-set locations, then random
fill — see :func:`repro.core.signature.select_perturbation_targets`) and
perturbed in two stages:

* **Stage 1** (the top-m signature locations): noise is drawn from
  ``Lap(-f_k, 1/ε_L)`` — a Laplace centred at *minus the current
  frequency*, so the noisy frequency lands near zero with high
  probability, diluting the location's representativeness. The actual
  applied noise of the stage is averaged into μ̄ (which is typically
  negative).

* **Stage 2** (the next m locations): noise is drawn from
  ``Lap(-μ̄, 1/ε_L)`` — centred at minus the average Stage-1 noise, so
  the trajectory's cardinality drop is compensated by frequency raises
  elsewhere, keeping overall utility.

Theorem 2 shows a non-zero mean leaves the ε-DP guarantee intact
because the privacy ratio only depends on the scale; Theorem 3
instantiates it for this two-stage scheme.

The output is a target PF distribution per trajectory; realising it is
the job of the intra-trajectory modifier (Section IV-B2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.laplace import LaplaceMechanism
from repro.core.signature import SignatureIndex, select_perturbation_targets
from repro.trajectory.model import LocationKey, Trajectory, TrajectoryDataset


@dataclass(frozen=True, slots=True)
class PFPerturbation:
    """Original vs perturbed PF for the selected locations of one trajectory."""

    object_id: str
    original: dict[LocationKey, int]
    perturbed: dict[LocationKey, int]
    #: Average noise actually applied in Stage 1 (μ̄ in the paper).
    stage1_mean_noise: float
    epsilon: float

    def delta(self, loc: LocationKey) -> int:
        return self.perturbed[loc] - self.original[loc]

    def increases(self) -> list[tuple[LocationKey, int]]:
        return [
            (loc, self.perturbed[loc] - pf)
            for loc, pf in self.original.items()
            if self.perturbed[loc] > pf
        ]

    def decreases(self) -> list[tuple[LocationKey, int]]:
        return [
            (loc, pf - self.perturbed[loc])
            for loc, pf in self.original.items()
            if self.perturbed[loc] < pf
        ]


class LocalPFMechanism:
    """ε_L-differentially-private PF perturbation (Algorithm 2)."""

    #: Sensitivity of the PF point-counting query φ(p, τ).
    SENSITIVITY = 1.0

    def __init__(self, epsilon: float, m: int = 10) -> None:
        if m < 1:
            raise ValueError("signature size m must be at least 1")
        self.mechanism = LaplaceMechanism(epsilon, sensitivity=self.SENSITIVITY)
        self.m = m

    @property
    def epsilon(self) -> float:
        return self.mechanism.epsilon

    def perturb_trajectory(
        self,
        trajectory: Trajectory,
        signature_index: SignatureIndex,
        rng: random.Random,
    ) -> PFPerturbation:
        """Run both stages of Algorithm 2 on one trajectory."""
        signature = signature_index.signatures[trajectory.object_id]
        targets = select_perturbation_targets(
            trajectory,
            signature,
            signature_index.candidate_set,
            self.m,
            rng,
        )
        pf = trajectory.point_frequencies()
        original: dict[LocationKey, int] = {}
        perturbed: dict[LocationKey, int] = {}

        stage1 = targets[: self.m]
        stage2 = targets[self.m : 2 * self.m]

        # Stage 1: push signature frequencies toward zero.
        noise_sum = 0.0
        for loc in stage1:
            fk = pf[loc]
            original[loc] = fk
            noisy = self.mechanism.perturb_count(fk, rng, mu=-float(fk), lower=0)
            perturbed[loc] = noisy
            noise_sum += noisy - fk
        mean_noise = noise_sum / len(stage1) if stage1 else 0.0

        # Stage 2: compensate cardinality with mean -μ̄.
        for loc in stage2:
            fk = pf[loc]
            original[loc] = fk
            perturbed[loc] = self.mechanism.perturb_count(
                fk, rng, mu=-mean_noise, lower=0
            )

        return PFPerturbation(
            object_id=trajectory.object_id,
            original=original,
            perturbed=perturbed,
            stage1_mean_noise=mean_noise,
            epsilon=self.epsilon,
        )

    def perturb(
        self,
        dataset: TrajectoryDataset,
        signature_index: SignatureIndex,
        rng: random.Random,
    ) -> dict[str, PFPerturbation]:
        """Stage-1+2 perturbations for every trajectory of the dataset."""
        return {
            trajectory.object_id: self.perturb_trajectory(
                trajectory, signature_index, rng
            )
            for trajectory in dataset
        }
