"""Table II: effectiveness of all methods (privacy / utility / recovery).

``run`` evaluates every method of the registry on one generated fleet
and returns ``{method: {metric: value-or-None}}``; ``main`` prints the
table in the paper's layout. Invoke with::

    python -m repro.experiments.table2 [smoke|default|large] [workers]
                                       [--dataset REF]

Methods are independent of one another, so ``workers > 1`` fans the
per-method jobs across a process pool (``repro.engine``) with results
identical to the serial run. ``--dataset`` swaps the synthetic fleet
for an ingested real dataset (see ``docs/data.md``); the recovery
metric family is then skipped, as real data carries no route ground
truth.
"""

from __future__ import annotations

import sys
import time

from repro.api import run as run_spec
from repro.engine.pool import parallel_map
from repro.experiments.config import (
    ExperimentConfig,
    load_experiment_input,
    parse_driver_args,
)
from repro.experiments.evaluate import METRIC_COLUMNS, evaluate_method
from repro.experiments.methods import SYNTHETIC_METHODS, table2_specs


def _method_job(
    payload: tuple[ExperimentConfig, str]
) -> tuple[str, dict[str, float | None], float]:
    """One method evaluation; the job is self-contained (it derives its
    fleet from the config and its method spec from the registry) so it
    can run in a worker process, with the per-process fleet memo
    avoiding repeated generation."""
    config, name = payload
    started = time.perf_counter()
    inputs = load_experiment_input(config)
    spec = table2_specs(config)[name]
    anonymized = run_spec(spec, inputs.dataset).dataset
    evaluation = evaluate_method(
        inputs.dataset,
        anonymized,
        inputs.fleet,
        config,
        synthetic=name in SYNTHETIC_METHODS,
        with_recovery=inputs.fleet is not None,
    )
    return name, evaluation.values, time.perf_counter() - started


def run(
    config: ExperimentConfig | None = None,
    methods: list[str] | None = None,
    verbose: bool = False,
    workers: int = 1,
) -> dict[str, dict[str, float | None]]:
    """Evaluate Table II. ``methods`` restricts to a subset of labels."""
    config = config or ExperimentConfig.default()
    registry = table2_specs(config)
    if methods is not None:
        unknown = set(methods) - set(registry)
        if unknown:
            raise ValueError(f"unknown methods: {sorted(unknown)}")
        registry = {name: registry[name] for name in methods}

    jobs = [(config, name) for name in registry]
    outcomes = parallel_map(_method_job, jobs, workers=workers)
    results: dict[str, dict[str, float | None]] = {}
    for name, values, elapsed in outcomes:
        results[name] = values
        if verbose:
            print(f"  {name:<10s} done in {elapsed:6.1f}s", file=sys.stderr)
    return results


def format_table(results: dict[str, dict[str, float | None]]) -> str:
    """Render results in the paper's rows-are-metrics layout."""
    methods = list(results)
    header = f"{'Metric':<10s}" + "".join(f"{m:>10s}" for m in methods)
    lines = [header, "-" * len(header)]
    for metric in METRIC_COLUMNS:
        cells = []
        for method in methods:
            value = results[method].get(metric)
            cells.append("       -  " if value is None else f"{value:10.3f}")
        lines.append(f"{metric:<10s}" + "".join(cells))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    preset, config, workers = parse_driver_args(argv, "repro.experiments.table2")
    scale = (
        f"dataset={config.dataset}"
        if config.dataset
        else f"|D|={config.fleet.n_objects}"
    )
    print(f"Table II reproduction — preset={preset}, {scale}, "
          f"eps={config.epsilon}, m={config.signature_size}, "
          f"workers={workers}")
    results = run(config, verbose=True, workers=workers)
    print(format_table(results))


if __name__ == "__main__":
    main()
