"""Batch anonymization engine.

Two pieces built for the "as fast as the hardware allows" roadmap:

* :class:`BatchAnonymizer` — shards the embarrassingly-parallel local
  PF stage of a :class:`~repro.core.pipeline.FrequencyAnonymizer`
  across a worker pool (and fans whole-dataset sweeps with
  ``anonymize_many``), byte-identical to the serial path for the same
  seed thanks to per-trajectory derived noise streams. Sweeps ship
  declarative :class:`~repro.api.spec.MethodSpec` payloads — not live
  objects — across process boundaries, and results travel with the
  return value (``anonymize_with_report`` / the ``(dataset, report)``
  pairs of ``anonymize_stream``), never through shared mutable state;
* :func:`parallel_map` — the deterministic order-preserving pool
  primitive the experiment drivers reuse for their sweeps;
* :class:`StreamPublisher` (:mod:`repro.engine.publish`) — the
  pipelined two-pass whole-dataset publisher: pass 1 consumes the
  chunked stream exactly once, spilling parsed chunks to disk
  (:mod:`repro.engine.spill`) while accumulating one shared noisy TF
  estimate; pass 2 realises apportioned per-chunk targets from the
  spills — overlapped with pass 1 where the spec allows and fanned
  over worker processes, byte-identical to serial either way — with a
  DP composition ledger (:mod:`repro.core.accounting`) recording the
  end-to-end ε.

The other engine half — the incremental ``iter_nearest`` kNN frontier
that removes the global stage's restart-scans — lives on the index
backends themselves (see ``repro.index``) and is used by
``InterTrajectoryModifier`` by default.
"""

from repro.engine.batch import BatchAnonymizer
from repro.engine.pool import (
    EXECUTOR_KINDS,
    parallel_map,
    parallel_map_stream,
    resolve_workers,
)
from repro.engine.publish import (
    APPORTIONMENT_KINDS,
    PublishReport,
    SharedTFEstimate,
    StreamPublisher,
    chunk_source,
    csv_chunk_bytes,
)
from repro.engine.spill import SpillError, SpillStore

__all__ = [
    "APPORTIONMENT_KINDS",
    "BatchAnonymizer",
    "EXECUTOR_KINDS",
    "PublishReport",
    "SharedTFEstimate",
    "SpillError",
    "SpillStore",
    "StreamPublisher",
    "chunk_source",
    "csv_chunk_bytes",
    "parallel_map",
    "parallel_map_stream",
    "resolve_workers",
]
