"""STR-packed R-tree over trajectory segments.

Not part of the paper (which argues grids suit segment data), but the
natural alternative any systems reviewer asks about, so it ships as a
fourth backend for the efficiency ablation.

Design: a static Sort-Tile-Recursive (STR) bulk-loaded tree plus an
overflow buffer for dynamic inserts and a tombstone set for removals;
the tree is rebuilt when either side grows past a fraction of the tree
size. kNN is best-first over node MBRs (a segment's MBR min-distance
lower-bounds its exact distance, so pruning is safe) with the overflow
buffer scanned linearly.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.geo.geometry import BBox, Coord
from repro.index.base import IndexedSegment, SegmentRegistry
from repro.index.search import (
    KnnCandidates,
    iter_nearest_batch_via_single,
    knn_batch_via_knn,
)


@dataclass(slots=True)
class _Node:
    """Internal or leaf node; leaves carry segment ids."""

    mbr: BBox
    children: list["_Node"] = field(default_factory=list)
    sids: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


def _mbr_of(boxes: list[BBox]) -> BBox:
    return BBox(
        min(b.min_x for b in boxes),
        min(b.min_y for b in boxes),
        max(b.max_x for b in boxes),
        max(b.max_y for b in boxes),
    )


class RTreeIndex:
    """Segment index backed by an STR-packed R-tree."""

    def __init__(self, leaf_capacity: int = 16, rebuild_fraction: float = 0.25) -> None:
        if leaf_capacity < 2:
            raise ValueError("leaf capacity must be at least 2")
        if not 0.0 < rebuild_fraction <= 1.0:
            raise ValueError("rebuild fraction must be in (0, 1]")
        self.leaf_capacity = leaf_capacity
        self.rebuild_fraction = rebuild_fraction
        self._registry = SegmentRegistry()
        self._root: _Node | None = None
        self._tree_sids: set[int] = set()
        self._buffer: set[int] = set()
        self._tombstones: set[int] = set()

    # -- maintenance -----------------------------------------------------------

    def _segment_mbr(self, sid: int) -> BBox:
        segment = self._registry.get(sid)
        return BBox(
            min(segment.a[0], segment.b[0]),
            min(segment.a[1], segment.b[1]),
            max(segment.a[0], segment.b[0]),
            max(segment.a[1], segment.b[1]),
        )

    def _needs_rebuild(self) -> bool:
        tree_size = len(self._tree_sids)
        threshold = max(64, int(tree_size * self.rebuild_fraction))
        return len(self._buffer) > threshold or len(self._tombstones) > threshold

    def _rebuild(self) -> None:
        live = (self._tree_sids | self._buffer) - self._tombstones
        self._buffer.clear()
        self._tombstones.clear()
        self._tree_sids = set(live)
        if not live:
            self._root = None
            return
        entries = [(sid, self._segment_mbr(sid)) for sid in sorted(live)]
        self._root = self._str_pack(entries)

    def _str_pack(self, entries: list[tuple[int, BBox]]) -> _Node:
        """Sort-Tile-Recursive leaf packing, then bottom-up node packing."""
        capacity = self.leaf_capacity
        n = len(entries)
        entries = sorted(entries, key=lambda e: e[1].center[0])
        n_leaves = math.ceil(n / capacity)
        n_slices = max(1, math.ceil(math.sqrt(n_leaves)))
        per_slice = math.ceil(n / n_slices)
        leaves: list[_Node] = []
        for s in range(0, n, per_slice):
            vertical = sorted(
                entries[s : s + per_slice], key=lambda e: e[1].center[1]
            )
            for i in range(0, len(vertical), capacity):
                chunk = vertical[i : i + capacity]
                leaves.append(
                    _Node(
                        mbr=_mbr_of([box for _, box in chunk]),
                        sids=[sid for sid, _ in chunk],
                    )
                )
        level = leaves
        while len(level) > 1:
            parents: list[_Node] = []
            for i in range(0, len(level), capacity):
                chunk = level[i : i + capacity]
                parents.append(
                    _Node(mbr=_mbr_of([c.mbr for c in chunk]), children=chunk)
                )
            level = parents
        return level[0]

    # -- index protocol -------------------------------------------------------------

    def insert(self, a: Coord, b: Coord, owner: str | None = None) -> int:
        segment = self._registry.allocate(a, b, owner)
        self._buffer.add(segment.sid)
        if self._needs_rebuild():
            self._rebuild()
        return segment.sid

    def remove(self, sid: int) -> None:
        self._registry.release(sid)
        if sid in self._buffer:
            self._buffer.discard(sid)
            return
        if sid not in self._tree_sids:
            raise KeyError(f"segment {sid} is not in the index")
        self._tombstones.add(sid)
        if self._needs_rebuild():
            self._rebuild()

    def segment(self, sid: int) -> IndexedSegment:
        return self._registry.get(sid)

    def __len__(self) -> int:
        return len(self._registry)

    @property
    def tree_height(self) -> int:
        """Height of the packed tree (diagnostic)."""
        height = 0
        node = self._root
        while node is not None:
            height += 1
            node = node.children[0] if node.children else None
        return height

    # -- search ------------------------------------------------------------------------

    def knn(self, q: Coord, k: int) -> list[tuple[int, float]]:
        if len(self._registry) == 0:
            return []
        candidates = KnnCandidates(k)
        # Overflow buffer: exact scan (small by construction).
        for sid in self._buffer:
            candidates.offer(sid, self._registry.get(sid).distance_to(q))
        if self._root is not None:
            counter = 0  # heap tie-breaker (BBox is not orderable)
            heap: list[tuple[float, int, _Node]] = [
                (self._root.mbr.min_distance(q), counter, self._root)
            ]
            while heap:
                dist, _, node = heapq.heappop(heap)
                if candidates.full and dist > candidates.threshold:
                    break
                if node.is_leaf:
                    for sid in node.sids:
                        if sid in self._tombstones:
                            continue
                        candidates.offer(
                            sid, self._registry.get(sid).distance_to(q)
                        )
                else:
                    for child in node.children:
                        child_dist = child.mbr.min_distance(q)
                        if not candidates.full or child_dist <= candidates.threshold:
                            counter += 1
                            heapq.heappush(heap, (child_dist, counter, child))
        return candidates.results()

    def iter_nearest(self, q: Coord):
        """Best-first incremental traversal over node MBRs.

        Nodes enter the frontier keyed by MBR min-distance (a lower
        bound on their contents), live segments by exact distance, so
        pop order yields segments in nondecreasing distance. Nodes sort
        ahead of equidistant segments; segment ties resolve by
        ascending sid. The overflow buffer is measured up front (it is
        small by construction).
        """
        if len(self._registry) == 0:
            return
        # Entries: (distance, kind, tie, node-or-None); kind 0 = node
        # keyed by an insertion counter, kind 1 = segment keyed by sid.
        heap: list[tuple[float, int, int, _Node | None]] = []
        for sid in self._buffer:
            heap.append((self._registry.get(sid).distance_to(q), 1, sid, None))
        heapq.heapify(heap)
        counter = 0
        if self._root is not None:
            heapq.heappush(
                heap, (self._root.mbr.min_distance(q), 0, counter, self._root)
            )
        while heap:
            dist, kind, tie, node = heapq.heappop(heap)
            if kind:
                yield tie, dist
                continue
            assert node is not None
            if node.is_leaf:
                for sid in node.sids:
                    if sid in self._tombstones:
                        continue
                    heapq.heappush(
                        heap,
                        (self._registry.get(sid).distance_to(q), 1, sid, None),
                    )
            else:
                for child in node.children:
                    counter += 1
                    heapq.heappush(
                        heap, (child.mbr.min_distance(q), 0, counter, child)
                    )

    def knn_batch(self, qs, k: int) -> list[list[tuple[int, float]]]:
        """Per-query best-first traversals (``search.py`` fallback)."""
        return knn_batch_via_knn(self, qs, k)

    def iter_nearest_batch(self, qs):
        return iter_nearest_batch_via_single(self, qs)
