"""Tests for the global TF and local PF randomization mechanisms."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.global_mechanism import GlobalTFMechanism, TFPerturbation
from repro.core.local_mechanism import LocalPFMechanism
from repro.core.signature import SignatureExtractor
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset


def traj(object_id, coords):
    return Trajectory(
        object_id,
        [Point(float(x), float(y), 60.0 * i) for i, (x, y) in enumerate(coords)],
    )


@pytest.fixture
def dataset():
    return TrajectoryDataset(
        [
            traj("a", [(1, 1), (0, 0), (1, 1), (5, 5), (1, 1), (6, 6)]),
            traj("b", [(2, 2), (0, 0), (2, 2), (6, 6), (7, 7)]),
            traj("c", [(0, 0), (7, 7), (8, 8), (8, 8), (9, 9)]),
            traj("d", [(4, 4), (4, 4), (0, 0), (3, 3), (9, 9)]),
        ]
    )


class TestGlobalTFMechanism:
    def test_perturbed_values_in_range(self, dataset):
        mech = GlobalTFMechanism(epsilon=0.2)  # heavy noise
        index = SignatureExtractor(m=2).extract(dataset)
        rng = random.Random(0)
        for _ in range(50):
            result = mech.perturb(index.tf, len(dataset), rng)
            for value in result.perturbed.values():
                assert 0 <= value <= len(dataset)
                assert isinstance(value, int)

    def test_covers_whole_candidate_set(self, dataset):
        mech = GlobalTFMechanism(epsilon=1.0)
        index = SignatureExtractor(m=2).extract(dataset)
        result = mech.perturb(index.tf, len(dataset), random.Random(1))
        assert set(result.perturbed) == index.candidate_set

    def test_deterministic_for_seed(self, dataset):
        mech = GlobalTFMechanism(epsilon=1.0)
        index = SignatureExtractor(m=2).extract(dataset)
        a = mech.perturb(index.tf, len(dataset), random.Random(7))
        b = mech.perturb(index.tf, len(dataset), random.Random(7))
        assert a.perturbed == b.perturbed

    def test_high_epsilon_barely_changes(self, dataset):
        mech = GlobalTFMechanism(epsilon=100.0)
        index = SignatureExtractor(m=2).extract(dataset)
        result = mech.perturb(index.tf, len(dataset), random.Random(3))
        assert result.perturbed == result.original

    def test_delta_and_splits(self):
        perturbation = TFPerturbation(
            original={(0.0, 0.0): 3, (1.0, 1.0): 2, (2.0, 2.0): 5},
            perturbed={(0.0, 0.0): 5, (1.0, 1.0): 2, (2.0, 2.0): 1},
            epsilon=1.0,
        )
        assert perturbation.delta((0.0, 0.0)) == 2
        assert perturbation.increases() == [((0.0, 0.0), 2)]
        assert perturbation.decreases() == [((2.0, 2.0), 4)]

    def test_rejects_empty_dataset(self, dataset):
        mech = GlobalTFMechanism(epsilon=1.0)
        with pytest.raises(ValueError):
            mech.perturb({}, 0, random.Random(0))

    def test_noise_magnitude_scales_with_epsilon(self, dataset):
        index = SignatureExtractor(m=2).extract(dataset)

        def mean_absolute_change(epsilon, seed):
            mech = GlobalTFMechanism(epsilon=epsilon)
            rng = random.Random(seed)
            deltas = []
            for _ in range(300):
                result = mech.perturb(index.tf, len(dataset), rng)
                deltas.extend(
                    abs(result.delta(loc)) for loc in result.original
                )
            return sum(deltas) / len(deltas)

        assert mean_absolute_change(0.2, 1) > mean_absolute_change(5.0, 1)


class TestLocalPFMechanism:
    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            LocalPFMechanism(1.0, m=0)

    def test_perturbs_2m_locations(self, dataset):
        mech = LocalPFMechanism(epsilon=1.0, m=2)
        index = SignatureExtractor(m=2).extract(dataset)
        result = mech.perturb_trajectory(dataset[0], index, random.Random(0))
        assert len(result.original) <= 4
        assert set(result.original) == set(result.perturbed)

    def test_all_frequencies_non_negative(self, dataset):
        mech = LocalPFMechanism(epsilon=0.2, m=2)
        index = SignatureExtractor(m=2).extract(dataset)
        rng = random.Random(5)
        for trajectory in dataset:
            for _ in range(30):
                result = mech.perturb_trajectory(trajectory, index, rng)
                assert all(v >= 0 for v in result.perturbed.values())

    def test_stage1_biases_signature_frequencies_down(self, dataset):
        """Stage 1 draws from Lap(-f_k, 1/eps): signatures shrink on average."""
        mech = LocalPFMechanism(epsilon=1.0, m=2)
        index = SignatureExtractor(m=2).extract(dataset)
        rng = random.Random(2)
        drops = 0
        total = 0
        for _ in range(200):
            result = mech.perturb_trajectory(dataset[0], index, rng)
            for entry in index.signatures["a"]:
                if entry.loc in result.perturbed:
                    total += 1
                    if result.perturbed[entry.loc] <= result.original[entry.loc]:
                        drops += 1
        assert drops / total > 0.8

    def test_stage2_compensates_cardinality(self, dataset):
        """With Stage 2, total point change stays near zero on average."""
        mech = LocalPFMechanism(epsilon=1.0, m=2)
        index = SignatureExtractor(m=2).extract(dataset)
        rng = random.Random(4)
        net_changes = []
        for _ in range(300):
            result = mech.perturb_trajectory(dataset[0], index, rng)
            net = sum(
                result.perturbed[loc] - result.original[loc]
                for loc in result.original
            )
            net_changes.append(net)
        mean_net = sum(net_changes) / len(net_changes)
        # Without Stage 2 the mean net change would be strongly negative
        # (roughly minus the total signature frequency ~ -4); with
        # compensation it should hover near zero.
        assert abs(mean_net) < 1.5

    def test_stage1_mean_noise_recorded(self, dataset):
        mech = LocalPFMechanism(epsilon=1.0, m=2)
        index = SignatureExtractor(m=2).extract(dataset)
        result = mech.perturb_trajectory(dataset[0], index, random.Random(0))
        stage1_locs = [e.loc for e in index.signatures["a"]][:2]
        expected = sum(
            result.perturbed[loc] - result.original[loc] for loc in stage1_locs
        ) / len(stage1_locs)
        assert result.stage1_mean_noise == pytest.approx(expected)

    def test_perturb_covers_all_trajectories(self, dataset):
        mech = LocalPFMechanism(epsilon=1.0, m=2)
        index = SignatureExtractor(m=2).extract(dataset)
        results = mech.perturb(dataset, index, random.Random(0))
        assert set(results) == {"a", "b", "c", "d"}

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), epsilon=st.floats(0.1, 10.0))
    def test_outputs_are_valid_counts(self, seed, epsilon):
        ds = TrajectoryDataset(
            [
                traj("a", [(1, 1), (1, 1), (2, 2), (3, 3), (4, 4)]),
                traj("b", [(5, 5), (5, 5), (6, 6), (2, 2)]),
            ]
        )
        mech = LocalPFMechanism(epsilon=epsilon, m=2)
        index = SignatureExtractor(m=2).extract(ds)
        results = mech.perturb(ds, index, random.Random(seed))
        for result in results.values():
            for value in result.perturbed.values():
                assert isinstance(value, int)
                assert value >= 0
