"""Generate a markdown reproduction report (the data side of EXPERIMENTS.md).

Runs Table II, Figure 4, and Figure 5 at the chosen preset and writes
their measured values as markdown tables, ready to diff against the
paper. Invoke with::

    python -m repro.experiments.report [smoke|default|large] [output.md]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments import fig4, fig5, table2
from repro.experiments.config import ExperimentConfig
from repro.experiments.evaluate import METRIC_COLUMNS


def table2_markdown(results: dict[str, dict[str, float | None]]) -> str:
    methods = list(results)
    lines = ["| Metric | " + " | ".join(methods) + " |"]
    lines.append("|" + "---|" * (len(methods) + 1))
    for metric in METRIC_COLUMNS:
        cells = []
        for method in methods:
            value = results[method].get(metric)
            cells.append("-" if value is None else f"{value:.3f}")
        lines.append(f"| {metric} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def fig4_markdown(
    series: dict[str, dict[str, list[float | None]]],
    epsilons: tuple[float, ...],
) -> str:
    blocks = []
    for panel, models in series.items():
        lines = [f"**{panel} vs ε**", ""]
        lines.append("| model | " + " | ".join(f"ε={e:g}" for e in epsilons) + " |")
        lines.append("|" + "---|" * (len(epsilons) + 1))
        for model, values in models.items():
            cells = ["-" if v is None else f"{v:.3f}" for v in values]
            lines.append(f"| {model} | " + " | ".join(cells) + " |")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def fig5_markdown(results: dict[str, dict[str, list]], sizes: tuple[int, ...]) -> str:
    lines = ["**kNN search time (s) vs |D|**", ""]
    lines.append("| method | " + " | ".join(str(s) for s in sizes) + " |")
    lines.append("|" + "---|" * (len(sizes) + 1))
    for name, values in results["search"].items():
        lines.append(
            f"| {name} | " + " | ".join(f"{v:.4f}" for v in values) + " |"
        )
    lines.append("")
    lines.append("**local vs global modification time (s)**")
    lines.append("")
    lines.append("| stage | " + " | ".join(str(s) for s in sizes) + " |")
    lines.append("|" + "---|" * (len(sizes) + 1))
    for name, values in results["modification"].items():
        lines.append(
            f"| {name} | " + " | ".join(f"{v:.4f}" for v in values) + " |"
        )
    return "\n".join(lines)


def generate(preset: str = "default") -> str:
    config = {
        "smoke": ExperimentConfig.smoke,
        "default": ExperimentConfig.default,
        "large": ExperimentConfig.large,
    }[preset]()
    epsilons = (0.5, 1.0, 5.0) if preset == "smoke" else fig4.DEFAULT_EPSILONS
    sizes = fig5.SMOKE_SIZES if preset == "smoke" else fig5.DEFAULT_SIZES

    parts = [
        f"# Reproduction report (preset: {preset})",
        "",
        f"|D| = {config.fleet.n_objects}, points/trajectory = "
        f"{config.fleet.points_per_trajectory}, m = {config.signature_size}, "
        f"ε = {config.epsilon}",
        "",
        "## Table II (measured)",
        "",
        table2_markdown(table2.run(config)),
        "",
        "## Figure 4 (measured)",
        "",
        fig4_markdown(fig4.run(config, epsilons=epsilons), epsilons),
        "",
        "## Figure 5 (measured)",
        "",
        fig5_markdown(fig5.run(config, sizes=sizes), sizes),
        "",
    ]
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    preset = argv[0] if argv else "default"
    report = generate(preset)
    if len(argv) > 1:
        Path(argv[1]).write_text(report)
        print(f"wrote report to {argv[1]}")
    else:
        print(report)


if __name__ == "__main__":
    main()
