"""Spatial indexes for K-nearest trajectory-segment search.

Three families, mirroring the paper's efficiency study (Section V-C):

* :func:`repro.index.search.linear_knn` — brute-force scan baseline;
* :class:`repro.index.uniform.UniformGridIndex` — single-level grid (UG);
* :class:`repro.index.hierarchical.HierarchicalGridIndex` — the paper's
  multi-resolution grid with best-fit segment placement (Definition 11)
  and three search strategies: top-down (HGt), bottom-up (HGb), and the
  novel bottom-up-down of Algorithm 3 (HG+).

All indexes share the same protocol: segments are inserted and removed
by id, and ``knn(q, k)`` returns the ``k`` segments with the smallest
point-to-segment distance (Equation 3) to the query point.
"""

from repro.index.base import IndexedSegment, SegmentIndex
from repro.index.hierarchical import HierarchicalGridIndex
from repro.index.linear import LinearSegmentIndex
from repro.index.rtree import RTreeIndex
from repro.index.uniform import UniformGridIndex
from repro.index.search import iter_nearest_via_knn, linear_knn

__all__ = [
    "HierarchicalGridIndex",
    "IndexedSegment",
    "LinearSegmentIndex",
    "RTreeIndex",
    "SegmentIndex",
    "UniformGridIndex",
    "iter_nearest_via_knn",
    "linear_knn",
]
