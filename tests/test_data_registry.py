"""Tests for the dataset registry, `repro ingest`, and the streaming
ingest-then-anonymize acceptance path."""

import json

import pytest

from repro.cli import main
from repro.core.pipeline import GL
from repro.data.preprocess import PreprocessConfig
from repro.data.registry import (
    DATA_FILENAME,
    META_FILENAME,
    DatasetRegistry,
    is_artifact,
    load_dataset,
    stream_dataset,
)
from repro.engine import BatchAnonymizer
from repro.trajectory.io import read_csv, write_csv
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset


@pytest.fixture
def planar_csv(tmp_path):
    dataset = TrajectoryDataset(
        [
            Trajectory(
                f"obj{i}",
                [Point(100.0 * i + k, 50.0 * i, 10.0 * k) for k in range(12)],
            )
            for i in range(6)
        ]
    )
    path = tmp_path / "fleet.csv"
    write_csv(dataset, path)
    return path


@pytest.fixture
def tdrive_dir(tmp_path):
    raw = tmp_path / "raw"
    raw.mkdir()
    (raw / "1.txt").write_text(
        "1,2008-02-02 15:36:08,116.51172,39.92123\n"
        "1,2008-02-02 15:46:08,116.51135,39.93883\n"
        "1,2008-02-02 18:46:08,116.56135,39.93883\n"
    )
    (raw / "2.txt").write_text(
        "2,2008-02-02 15:36:08,116.58000,39.90000\n"
        "2,2008-02-02 15:40:08,116.59000,39.91000\n"
    )
    return raw


class TestRegistry:
    def test_ingest_creates_artifact(self, planar_csv, tmp_path):
        registry = DatasetRegistry(tmp_path / "reg")
        result = registry.ingest("fleet", planar_csv)
        assert result.fresh
        assert is_artifact(result.path)
        meta = json.loads((result.path / META_FILENAME).read_text())
        assert meta["name"] == "fleet"
        assert meta["format"] == "planar"
        assert meta["preprocess"] == PreprocessConfig().to_dict()
        assert meta["stats"]["objects_in"] == 6

    def test_second_ingest_is_cache_hit(self, planar_csv, tmp_path):
        registry = DatasetRegistry(tmp_path / "reg")
        first = registry.ingest("fleet", planar_csv)
        mtime = (first.path / DATA_FILENAME).stat().st_mtime_ns
        second = registry.ingest("fleet", planar_csv)
        assert not second.fresh
        assert (second.path / DATA_FILENAME).stat().st_mtime_ns == mtime
        assert second.stats.objects_in == 6  # stats restored from meta
        forced = registry.ingest("fleet", planar_csv, force=True)
        assert forced.fresh

    def test_changed_source_is_not_a_cache_hit(self, planar_csv, tmp_path):
        registry = DatasetRegistry(tmp_path / "reg")
        registry.ingest("fleet", planar_csv)
        other = tmp_path / "other.csv"
        write_csv(
            TrajectoryDataset(
                [Trajectory("only", [Point(0, 0, 0.0), Point(1, 1, 1.0)])]
            ),
            other,
        )
        result = registry.ingest("fleet", other)
        assert result.fresh  # same knobs, different source: re-ingested
        assert [t.object_id for t in registry.stream("fleet")] == ["only"]

    def test_changed_origin_is_not_a_cache_hit(self, tdrive_dir, tmp_path):
        registry = DatasetRegistry(tmp_path / "reg")
        registry.ingest("beijing", tdrive_dir, origin=(39.9, 116.5))
        again = registry.ingest("beijing", tdrive_dir, origin=(39.9, 116.5))
        assert not again.fresh
        moved = registry.ingest("beijing", tdrive_dir, origin=(40.0, 116.0))
        assert moved.fresh

    def test_config_change_creates_sibling_version(self, planar_csv, tmp_path):
        registry = DatasetRegistry(tmp_path / "reg")
        registry.ingest("fleet", planar_csv)
        registry.ingest("fleet", planar_csv, PreprocessConfig(min_points=3))
        assert len(registry.versions("fleet")) == 2
        latest = registry.resolve("fleet")
        assert latest.name == PreprocessConfig(min_points=3).key()
        assert registry.names() == ["fleet"]

    def test_resolve_specific_version(self, planar_csv, tmp_path):
        registry = DatasetRegistry(tmp_path / "reg")
        result = registry.ingest("fleet", planar_csv)
        assert registry.resolve("fleet", result.version) == result.path
        with pytest.raises(KeyError):
            registry.resolve("fleet", "deadbeef")
        with pytest.raises(KeyError):
            registry.resolve("nope")

    def test_load_matches_source(self, planar_csv, tmp_path):
        registry = DatasetRegistry(tmp_path / "reg")
        registry.ingest("fleet", planar_csv)
        loaded = registry.load("fleet")
        source = read_csv(planar_csv)
        assert len(loaded) == len(source)
        for a, b in zip(loaded, source, strict=True):
            assert a.object_id == b.object_id
            assert len(a) == len(b)

    def test_tdrive_ingest_projects_and_splits(self, tdrive_dir, tmp_path):
        registry = DatasetRegistry(tmp_path / "reg")
        result = registry.ingest("beijing", tdrive_dir)
        # Taxi 1 has a 3-hour gap -> split; the single-point tail trip
        # is dropped by min_points=2.
        ids = [t.object_id for t in registry.stream("beijing")]
        assert ids == ["1#0", "2"]
        assert result.stats.gap_splits == 1
        assert result.stats.short_trips == 1
        meta = registry.meta("beijing")
        assert meta["format"] == "tdrive"
        assert meta["origin"] is not None


class TestDatasetReferences:
    def test_artifact_directory_and_name(self, planar_csv, tmp_path, monkeypatch):
        root = tmp_path / "reg"
        registry = DatasetRegistry(root)
        result = registry.ingest("fleet", planar_csv)
        by_path = load_dataset(result.path)
        monkeypatch.setenv("REPRO_DATA_ROOT", str(root))
        by_name = load_dataset("fleet")
        by_pinned = load_dataset(f"fleet@{result.version}")
        for dataset in (by_name, by_pinned):
            assert [t.object_id for t in dataset] == [
                t.object_id for t in by_path
            ]

    def test_plain_csv_reference(self, planar_csv):
        assert len(load_dataset(planar_csv)) == 6

    def test_missing_path_is_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope.csv")

    def test_stream_dataset_is_lazy(self, planar_csv):
        stream = stream_dataset(planar_csv)
        assert next(stream).object_id == "obj0"


class TestIngestCli:
    def test_ingest_reports_stats_and_path(self, tdrive_dir, tmp_path, capsys):
        root = tmp_path / "reg"
        code = main(
            ["ingest", "-i", str(tdrive_dir), "--name", "beijing",
             "--root", str(root)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ingested" in out
        assert "read 2 objects / 5 points" in out
        assert "artifact:" in out

    def test_second_run_reports_cache_hit(self, tdrive_dir, tmp_path, capsys):
        root = tmp_path / "reg"
        argv = ["ingest", "-i", str(tdrive_dir), "--name", "beijing",
                "--root", str(root)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "up to date" in capsys.readouterr().out

    def test_knobs_forwarded(self, planar_csv, tmp_path, capsys):
        root = tmp_path / "reg"
        code = main(
            ["ingest", "-i", str(planar_csv), "--name", "fleet",
             "--root", str(root), "--gap", "15", "--min-points", "3",
             "--snap", "10"]
        )
        assert code == 0
        registry = DatasetRegistry(root)
        meta = registry.meta("fleet")
        assert meta["preprocess"]["gap_threshold_s"] == 15.0
        assert meta["preprocess"]["min_points"] == 3
        assert meta["preprocess"]["snap"] == 10.0


class TestIngestThenAnonymize:
    """The acceptance path: artifact in, batch engine, identical bytes."""

    def test_cli_end_to_end_byte_identical(self, planar_csv, tmp_path, capsys):
        root = tmp_path / "reg"
        assert main(
            ["ingest", "-i", str(planar_csv), "--name", "fleet",
             "--root", str(root)]
        ) == 0
        artifact = DatasetRegistry(root).resolve("fleet")

        via_artifact = tmp_path / "via_artifact.csv"
        via_csv = tmp_path / "via_csv.csv"
        common = ["--model", "gl", "--signature-size", "3", "--seed", "11"]
        assert main(
            ["anonymize", "-i", str(artifact), "-o", str(via_artifact),
             "--engine", "batch", "--workers", "2", "--executor", "thread",
             *common]
        ) == 0
        assert main(
            ["anonymize", "-i", str(artifact / DATA_FILENAME),
             "-o", str(via_csv), *common]
        ) == 0
        assert via_artifact.read_text() == via_csv.read_text()

    def test_anonymize_stream_consumes_chunks_lazily(self, planar_csv):
        from repro.data.stream import chunked
        from repro.trajectory.io import stream_csv

        pulled = []

        def chunks():
            for chunk in chunked(stream_csv(planar_csv), 2):
                pulled.append(len(chunk))
                yield chunk

        engine = BatchAnonymizer(
            GL(epsilon=1.0, signature_size=3, seed=5),
            workers=1,
            executor="serial",
        )
        stream = engine.anonymize_stream(chunks())
        first, report = next(stream)
        # Serial streaming: exactly one chunk pulled per result —
        # the 3-chunk sweep is never materialised up front.
        assert pulled == [2]
        assert len(first) == 2
        assert report.epsilon_total == 1.0
        rest = list(stream)
        assert len(rest) == 2
        assert pulled == [2, 2, 2]

    def test_anonymize_many_accepts_generator_and_matches_serial(
        self, planar_csv
    ):
        dataset = read_csv(planar_csv)
        engine = BatchAnonymizer(
            GL(epsilon=1.0, signature_size=3, seed=5),
            workers=1,
            executor="serial",
        )
        from_stream = engine.anonymize_many(
            dataset.copy() for _ in range(2)
        )
        serial = GL(epsilon=1.0, signature_size=3, seed=5)
        expected = [serial.anonymize(dataset) for _ in range(2)]
        for (got, _), want in zip(from_stream, expected, strict=True):
            assert [
                [p.coord for p in t] for t in got
            ] == [[p.coord for p in t] for t in want]


class TestFig5RealDataSizes:
    def test_sizes_clamped_to_dataset(self, planar_csv, tmp_path, monkeypatch):
        root = tmp_path / "reg"
        DatasetRegistry(root).ingest("fleet", planar_csv)  # 6 trajectories
        monkeypatch.setenv("REPRO_DATA_ROOT", str(root))

        from repro.experiments.config import ExperimentConfig
        from repro.experiments.fig5 import effective_sizes

        config = ExperimentConfig.smoke().with_dataset("fleet")
        assert effective_sizes(config, (4, 100, 200)) == (4, 6)
        # Synthetic mode passes through untouched.
        assert effective_sizes(
            ExperimentConfig.smoke(), (4, 100, 200)
        ) == (4, 100, 200)


class TestExperimentRealDataMode:
    def test_fig4_runs_on_ingested_dataset(self, planar_csv, tmp_path, monkeypatch):
        root = tmp_path / "reg"
        DatasetRegistry(root).ingest("fleet", planar_csv)
        monkeypatch.setenv("REPRO_DATA_ROOT", str(root))

        from repro.experiments.config import ExperimentConfig
        from repro.experiments.fig4 import run

        config = ExperimentConfig.smoke().with_dataset("fleet")
        series = run(config, epsilons=(1.0,))
        # Utility metrics computed; recovery panels skipped (no ground
        # truth routes on real data).
        assert series["INF"]["GL"][0] is not None
        assert series["F-score"]["GL"][0] is None

    def test_cli_experiment_dataset_flag(self, planar_csv, tmp_path, monkeypatch, capsys):
        root = tmp_path / "reg"
        DatasetRegistry(root).ingest("fleet", planar_csv)
        monkeypatch.setenv("REPRO_DATA_ROOT", str(root))
        code = main(
            ["experiment", "fig5", "--preset", "smoke", "--dataset", "fleet"]
        )
        assert code == 0
        assert "dataset=fleet" in capsys.readouterr().out


class TestArtifactExportImport:
    """Artifact tarballs: export -> ship -> checksum-verified import."""

    def _ingest(self, planar_csv, root):
        registry = DatasetRegistry(root)
        return registry, registry.ingest("fleet", planar_csv)

    def test_round_trip_between_roots(self, planar_csv, tmp_path):
        source_registry, result = self._ingest(planar_csv, tmp_path / "a")
        archive = source_registry.export_artifact(
            "fleet", tmp_path / "fleet.tar.gz"
        )
        assert archive.is_file()
        target_registry = DatasetRegistry(tmp_path / "b")
        imported = target_registry.import_artifact(archive)
        assert imported.fresh
        assert imported.name == "fleet"
        assert imported.version == result.version
        assert is_artifact(imported.path)
        # Data is byte-identical and the latest marker resolves.
        assert (imported.path / DATA_FILENAME).read_bytes() == (
            result.path / DATA_FILENAME
        ).read_bytes()
        assert target_registry.resolve("fleet") == imported.path
        # Meta carries provenance plus the verified checksum.
        meta = json.loads((imported.path / META_FILENAME).read_text())
        assert meta["sha256"]
        assert meta["version"] == result.version

    def test_reimport_is_cache_hit(self, planar_csv, tmp_path):
        source_registry, _ = self._ingest(planar_csv, tmp_path / "a")
        archive = source_registry.export_artifact(
            "fleet", tmp_path / "fleet.tar.gz"
        )
        target = DatasetRegistry(tmp_path / "b")
        assert target.import_artifact(archive).fresh
        assert not target.import_artifact(archive).fresh
        assert target.import_artifact(archive, force=True).fresh

    def test_tampered_payload_rejected(self, planar_csv, tmp_path):
        import tarfile

        source_registry, _ = self._ingest(planar_csv, tmp_path / "a")
        archive = source_registry.export_artifact(
            "fleet", tmp_path / "fleet.tar.gz"
        )
        # Repack with one corrupted data byte, same meta.json.
        staging = tmp_path / "repack"
        with tarfile.open(archive) as tar:
            tar.extractall(staging, filter="data")
        data = next(staging.glob(f"*/*/{DATA_FILENAME}"))
        data.write_bytes(data.read_bytes()[:-2] + b"9\n")
        tampered = tmp_path / "tampered.tar.gz"
        with tarfile.open(tampered, "w:gz") as tar:
            tar.add(staging / "fleet", arcname="fleet")
        with pytest.raises(ValueError, match="checksum mismatch"):
            DatasetRegistry(tmp_path / "b").import_artifact(tampered)

    def test_export_specific_version_reference(self, planar_csv, tmp_path):
        registry = DatasetRegistry(tmp_path / "a")
        first = registry.ingest("fleet", planar_csv)
        registry.ingest(
            "fleet", planar_csv, PreprocessConfig(min_points=3)
        )
        archive = registry.export_artifact(
            f"fleet@{first.version}", tmp_path / "v1.tar.gz"
        )
        imported = DatasetRegistry(tmp_path / "b").import_artifact(archive)
        assert imported.version == first.version

    def test_cli_export_import(self, planar_csv, tmp_path, capsys):
        root_a = tmp_path / "a"
        root_b = tmp_path / "b"
        archive = tmp_path / "fleet.tar.gz"
        assert main([
            "ingest", "-i", str(planar_csv), "--name", "fleet",
            "--root", str(root_a),
        ]) == 0
        assert main([
            "ingest", "--name", "fleet", "--export", str(archive),
            "--root", str(root_a),
        ]) == 0
        out = capsys.readouterr().out
        assert "exported fleet" in out
        assert main([
            "ingest", "--import", str(archive), "--root", str(root_b),
        ]) == 0
        out = capsys.readouterr().out
        assert "imported fleet@" in out
        assert DatasetRegistry(root_b).load("fleet") is not None

    def test_cli_requires_name_or_archive(self, tmp_path, capsys):
        assert main(["ingest", "--root", str(tmp_path)]) == 2
        assert "required" in capsys.readouterr().err
        assert main([
            "ingest", "--export", "x.tar.gz", "--root", str(tmp_path),
        ]) == 2
        assert main([
            "ingest", "--export", "x.tar.gz", "--import", "y.tar.gz",
            "--name", "z", "--root", str(tmp_path),
        ]) == 2

    def test_malformed_meta_stats_rejected(self, planar_csv, tmp_path):
        import tarfile

        source_registry, _ = self._ingest(planar_csv, tmp_path / "a")
        archive = source_registry.export_artifact(
            "fleet", tmp_path / "fleet.tar.gz"
        )
        # Rebuild the archive with stats stripped from meta.json but a
        # checksum that still matches the payload.
        staging = tmp_path / "repack"
        with tarfile.open(archive) as tar:
            tar.extractall(staging, filter="data")
        meta_path = next(staging.glob(f"*/*/{META_FILENAME}"))
        meta = json.loads(meta_path.read_text())
        del meta["stats"]
        meta_path.write_text(json.dumps(meta))
        broken = tmp_path / "broken.tar.gz"
        with tarfile.open(broken, "w:gz") as tar:
            tar.add(staging / "fleet", arcname="fleet")
        with pytest.raises(ValueError, match="ingest stats"):
            DatasetRegistry(tmp_path / "b").import_artifact(broken)

    def test_traversal_via_meta_name_rejected(self, tmp_path):
        """meta.json's name/version are attacker data: a crafted value
        must not place (or delete) anything outside the registry root."""
        import hashlib
        import io
        import tarfile

        payload = b"object_id,t,x,y\na,0.0,1.0,1.0\na,1.0,2.0,2.0\n"
        meta = {
            "schema": 1, "name": "../../escaped", "version": "v1",
            "source": "x", "format": "planar", "origin": None,
            "preprocess": {}, "stats": {},
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        archive = tmp_path / "evil.tar.gz"
        with tarfile.open(archive, "w:gz") as tar:
            info = tarfile.TarInfo("fleet/v1/data.csv")
            info.size = len(payload)
            tar.addfile(info, io.BytesIO(payload))
            encoded = json.dumps(meta).encode()
            info = tarfile.TarInfo("fleet/v1/meta.json")
            info.size = len(encoded)
            tar.addfile(info, io.BytesIO(encoded))
        with pytest.raises(ValueError, match="plain path segment"):
            DatasetRegistry(tmp_path / "root").import_artifact(archive)
        assert not (tmp_path / "escaped").exists()


class TestLatestPointer:
    """`resolve` honours the recorded `latest` pointer and repairs a
    dangling one (the registry must stay self-consistent after manual
    deletions and imports)."""

    def _two_versions(self, planar_csv, root):
        registry = DatasetRegistry(root)
        first = registry.ingest("fleet", planar_csv)
        second = registry.ingest(
            "fleet", planar_csv, PreprocessConfig(min_points=3)
        )
        return registry, first, second

    def test_pointer_wins_over_directory_mtime_order(
        self, planar_csv, tmp_path
    ):
        """Disagreement case: mtimes say `first` is newest (a backup
        or copy touched it), the pointer says `second` — the pointer
        is authoritative."""
        import os
        import time

        registry, first, second = self._two_versions(
            planar_csv, tmp_path / "reg"
        )
        future = time.time() + 1000
        os.utime(first.path, (future, future))
        assert registry.versions("fleet")[-1] == first.version  # mtime order
        assert registry.resolve("fleet") == second.path  # pointer order

    def test_dangling_pointer_is_repaired(self, planar_csv, tmp_path):
        import shutil

        registry, first, second = self._two_versions(
            planar_csv, tmp_path / "reg"
        )
        marker = tmp_path / "reg" / "fleet" / "latest"
        assert marker.read_text().strip() == second.version
        shutil.rmtree(second.path)  # the pointer now dangles
        resolved = registry.resolve("fleet")
        assert resolved == first.path
        assert marker.read_text().strip() == first.version  # repaired

    def test_missing_pointer_is_recreated(self, planar_csv, tmp_path):
        registry = DatasetRegistry(tmp_path / "reg")
        result = registry.ingest("fleet", planar_csv)
        marker = tmp_path / "reg" / "fleet" / "latest"
        marker.unlink()
        assert registry.resolve("fleet") == result.path
        assert marker.read_text().strip() == result.version

    def test_concurrent_resolve_during_repair_is_consistent(
        self, planar_csv, tmp_path
    ):
        """Simultaneous readers hitting a missing pointer (all of them
        racing to repair it) must every one resolve to the same valid
        artifact, and leave a valid pointer behind — the daemon serves
        many tenants against one registry root."""
        import threading

        registry, first, second = self._two_versions(
            planar_csv, tmp_path / "reg"
        )
        marker = tmp_path / "reg" / "fleet" / "latest"
        marker.unlink()
        n = 8
        barrier = threading.Barrier(n)
        results, errors = [], []

        def reader():
            try:
                barrier.wait()
                results.append(registry.resolve("fleet"))
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert set(results) == {second.path}
        assert marker.read_text().strip() == second.version

    def test_pointer_rewrite_is_atomic_under_readers(
        self, planar_csv, tmp_path
    ):
        """Readers racing a pointer rewrite must never observe a torn
        (empty or partial) pointer: the rewrite stages a temp file and
        replaces it in. A plain truncating write fails this."""
        import threading

        from repro.data.registry import _write_latest

        registry, first, second = self._two_versions(
            planar_csv, tmp_path / "reg"
        )
        base = tmp_path / "reg" / "fleet"
        marker = base / "latest"
        valid_texts = {first.version, second.version}
        valid_paths = {first.path, second.path}
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    assert marker.read_text().strip() in valid_texts
                    assert registry.resolve("fleet") in valid_paths
                except Exception as exc:  # noqa: BLE001 — for assert
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for i in range(200):
            _write_latest(
                base, first.version if i % 2 else second.version
            )
        stop.set()
        for t in threads:
            t.join()
        assert not errors

    def test_import_cache_hit_repairs_dangling_pointer(
        self, planar_csv, tmp_path
    ):
        source = DatasetRegistry(tmp_path / "a")
        source.ingest("fleet", planar_csv)
        archive = source.export_artifact("fleet", tmp_path / "fleet.tar.gz")
        target = DatasetRegistry(tmp_path / "b")
        imported = target.import_artifact(archive)
        marker = tmp_path / "b" / "fleet" / "latest"
        marker.write_text("deadbeef")  # dangle it behind the registry's back
        again = target.import_artifact(archive)
        assert not again.fresh  # cache hit installs nothing...
        assert marker.read_text().strip() == imported.version  # ...but repairs
        assert target.resolve("fleet") == imported.path
