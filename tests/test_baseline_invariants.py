"""Property-style invariants of the k-anonymity baselines.

Randomized fleets (several seeds) rather than hypothesis strategies:
generating a coherent fleet per example is the expensive part, so a
seed-parametrized sweep gives the same coverage at a fraction of the
cost.
"""

import pytest

from repro.baselines.glove import Glove
from repro.baselines.klt import KLT
from repro.baselines.w4m import W4M
from repro.datagen.generator import FleetConfig, generate_fleet

SEEDS = (3, 17, 41)


def make_fleet(seed):
    return generate_fleet(
        FleetConfig(
            n_objects=11,  # deliberately not divisible by k
            points_per_trajectory=50,
            rows=10,
            cols=10,
            seed=seed,
        )
    )


@pytest.mark.parametrize("seed", SEEDS)
class TestW4MInvariants:
    def test_clusters_partition_dataset(self, seed):
        fleet = make_fleet(seed)
        clusters = W4M(k=3)._clusters(fleet.dataset)
        flat = sorted(i for cluster in clusters for i in cluster)
        assert flat == list(range(len(fleet.dataset)))

    def test_every_cluster_at_least_k(self, seed):
        fleet = make_fleet(seed)
        clusters = W4M(k=3)._clusters(fleet.dataset)
        assert all(len(cluster) >= 3 for cluster in clusters)

    def test_published_points_subset_of_cylinder(self, seed):
        """Every published sample lies within δ of some pivot sample."""
        from repro.geo.geometry import point_distance

        fleet = make_fleet(seed)
        w4m = W4M(k=3, delta=500.0)
        result = w4m.anonymize(fleet.dataset)
        clusters = w4m._clusters(fleet.dataset)
        for cluster in clusters:
            pivot_coords = [p.coord for p in fleet.dataset[cluster[0]]]
            for index in cluster:
                for p in result[index]:
                    assert (
                        min(point_distance(p.coord, c) for c in pivot_coords)
                        <= 500.0 + 1e-6
                    )

    def test_ids_and_order_preserved(self, seed):
        fleet = make_fleet(seed)
        result = W4M(k=3).anonymize(fleet.dataset)
        assert [t.object_id for t in result] == [
            t.object_id for t in fleet.dataset
        ]


@pytest.mark.parametrize("seed", SEEDS)
class TestGloveInvariants:
    def test_groups_partition_dataset(self, seed):
        fleet = make_fleet(seed)
        groups = Glove(k=3)._groups(fleet.dataset)
        flat = sorted(i for group in groups for i in group)
        assert flat == list(range(len(fleet.dataset)))

    def test_k_anonymity_of_published_shapes(self, seed):
        """Each published shape is shared by at least k objects."""
        from collections import Counter

        fleet = make_fleet(seed)
        result = Glove(k=3).anonymize(fleet.dataset)
        shapes = Counter(
            tuple(p.coord for p in trajectory) for trajectory in result
        )
        assert all(count >= 3 for count in shapes.values())

    def test_timestamps_monotone(self, seed):
        fleet = make_fleet(seed)
        result = Glove(k=3).anonymize(fleet.dataset)
        for trajectory in result:
            times = [p.t for p in trajectory]
            assert times == sorted(times)


@pytest.mark.parametrize("seed", SEEDS)
class TestKLTInvariants:
    def test_klt_groups_at_least_as_coarse_as_glove(self, seed):
        """Semantic repair can only merge groups, never split them."""
        fleet = make_fleet(seed)
        glove_groups = Glove(k=3)._groups(fleet.dataset)
        klt_groups = KLT(k=3, l_diversity=3, t_closeness=0.2)._groups(
            fleet.dataset
        )
        assert len(klt_groups) <= len(glove_groups)

    def test_klt_partition_preserved(self, seed):
        fleet = make_fleet(seed)
        groups = KLT(k=3, l_diversity=2, t_closeness=0.3)._groups(fleet.dataset)
        flat = sorted(i for group in groups for i in group)
        assert flat == list(range(len(fleet.dataset)))
