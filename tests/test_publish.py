"""Tests for the streaming whole-dataset publisher.

The load-bearing guarantees:

* a single-chunk publish is byte-identical to the plain ``anonymize``
  path for the same seed (the publisher is a strict generalisation);
* the composition ledger of a published stream sums to the declared
  ε_G + ε_L split regardless of the chunk count;
* the per-chunk targets apportion the shared TF delta exactly (the
  merged output realises the whole-dataset draw);
* the ledger round-trips through the report JSON.
"""

import json

import pytest

from repro.cli import main
from repro.core.accounting import CompositionLedger
from repro.core.pipeline import GL, PureG, PureL
from repro.data.stream import chunked
from repro.datagen.generator import FleetConfig, generate_fleet
from repro.engine import BatchAnonymizer, StreamPublisher
from repro.engine.publish import chunk_source
from repro.trajectory.io import read_csv, write_csv


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(
        FleetConfig(n_objects=12, points_per_trajectory=60, rows=10, cols=10, seed=3)
    )


def source(dataset, chunk_size):
    """A re-iterable chunk factory over an in-memory dataset."""
    return lambda: chunked(iter(dataset), chunk_size)


def points_of(dataset):
    return [[(p.coord, p.t) for p in t] for t in dataset]


class TestSingleChunkIdentity:
    def test_byte_identical_to_plain_anonymize(self, fleet):
        serial = GL(epsilon=1.0, signature_size=3, seed=21).anonymize(
            fleet.dataset
        )
        publisher = StreamPublisher(GL(epsilon=1.0, signature_size=3, seed=21))
        published, report = publisher.publish_collected(
            source(fleet.dataset, 10_000)
        )
        assert points_of(published) == points_of(serial)
        assert report.chunk_count == 1

    def test_byte_identical_through_batch_engine(self, fleet):
        serial = GL(epsilon=1.0, signature_size=3, seed=21).anonymize(
            fleet.dataset
        )
        with BatchAnonymizer(
            GL(epsilon=1.0, signature_size=3, seed=21),
            workers=3,
            executor="thread",
            global_workers=2,
        ) as engine:
            published, _ = StreamPublisher(engine).publish_collected(
                source(fleet.dataset, 10_000)
            )
        assert points_of(published) == points_of(serial)

    def test_csv_bytes_identical(self, fleet, tmp_path):
        """The acceptance criterion, end to end through the CLI."""
        fleet_csv = tmp_path / "fleet.csv"
        write_csv(fleet.dataset, fleet_csv)
        anon = tmp_path / "anon.csv"
        pub = tmp_path / "pub.csv"
        flags = ["--model", "gl", "--epsilon", "1.0",
                 "--signature-size", "3", "--seed", "21"]
        assert main(["anonymize", "-i", str(fleet_csv), "-o", str(anon),
                     *flags]) == 0
        assert main(["publish", "-i", str(fleet_csv), "-o", str(pub),
                     "--chunk-size", "100", *flags]) == 0
        assert pub.read_bytes() == anon.read_bytes()


class TestCompositionAcrossChunks:
    @pytest.mark.parametrize("chunk_size", [4, 5, 100])
    def test_epsilon_total_equals_declared_split(self, fleet, chunk_size):
        publisher = StreamPublisher(GL(epsilon=1.0, signature_size=3, seed=9))
        _, report = publisher.publish_collected(
            source(fleet.dataset, chunk_size)
        )
        assert report.epsilon_total == pytest.approx(1.0)
        ledger = report.accounting
        assert len(ledger.sequential_draws()) == 1  # one shared TF draw
        locals_ = ledger.groups()["local PF randomization"]
        assert len(locals_) == report.chunk_count
        assert {draw.scope for draw in locals_} == {
            f"chunk:{i}" for i in range(report.chunk_count)
        }

    def test_chunk_targets_apportion_exactly(self, fleet):
        publisher = StreamPublisher(GL(epsilon=1.0, signature_size=3, seed=9))
        estimate = publisher.estimate(chunked(iter(fleet.dataset), 5))
        targets = publisher.chunk_targets(estimate)
        shared = estimate.perturbation
        assert targets is not None and len(targets) == estimate.chunk_count
        for loc in shared.original:
            assert (
                sum(t.original.get(loc, 0) for t in targets)
                == shared.original[loc]
            )
            assert (
                sum(t.perturbed.get(loc, 0) for t in targets)
                == shared.perturbed[loc]
            )
        for target, size in zip(targets, estimate.chunk_sizes, strict=True):
            for count in target.perturbed.values():
                assert 0 <= count <= size

    def test_merged_output_keeps_every_trajectory(self, fleet):
        publisher = StreamPublisher(GL(epsilon=1.0, signature_size=3, seed=9))
        published, report = publisher.publish_collected(
            source(fleet.dataset, 5)
        )
        assert report.trajectories == len(fleet.dataset)
        assert [t.object_id for t in published] == [
            t.object_id for t in fleet.dataset
        ]

    def test_pure_local_publishes_parallel_only(self, fleet):
        publisher = StreamPublisher(PureL(epsilon=0.5, signature_size=3, seed=9))
        _, report = publisher.publish_collected(source(fleet.dataset, 4))
        assert report.epsilon_total == pytest.approx(0.5)
        assert report.tf_locations == 0
        assert not report.accounting.sequential_draws()

    def test_pure_global_publishes_one_shared_draw(self, fleet):
        publisher = StreamPublisher(PureG(epsilon=0.5, signature_size=3, seed=9))
        _, report = publisher.publish_collected(source(fleet.dataset, 4))
        assert report.epsilon_total == pytest.approx(0.5)
        assert report.accounting.groups() == {}
        assert len(report.accounting.sequential_draws()) == 1


class TestGuardsAndReports:
    def test_source_is_consumed_exactly_once(self, fleet):
        """Pass 2 replays spills, never the raw source — so a one-shot
        source (or one that would drift on a second open) is safe."""
        publisher = StreamPublisher(GL(epsilon=1.0, signature_size=3, seed=9))
        opens = []

        def counting():
            opens.append(1)
            return chunked(iter(fleet.dataset), 5)

        publisher.publish(counting)
        assert len(opens) == 1

    def test_empty_stream_is_rejected(self):
        publisher = StreamPublisher(GL(epsilon=1.0, signature_size=3, seed=9))
        with pytest.raises(ValueError, match="empty"):
            publisher.publish(lambda: iter(()))

    def test_rejects_non_pipeline_engines(self):
        with pytest.raises(TypeError):
            StreamPublisher(object())

    def test_rejects_local_first_ordering(self):
        """The shared TF is estimated over the raw stream; a
        local-first pipeline would perturb post-modification TF and
        silently diverge."""
        with pytest.raises(ValueError, match="global_first"):
            StreamPublisher(
                GL(epsilon=1.0, signature_size=3, seed=9, global_first=False)
            )
        # Without a global mechanism the ordering is moot.
        StreamPublisher(
            PureL(epsilon=0.5, signature_size=3, seed=9, global_first=False)
        )

    def test_repeated_publishes_draw_fresh_noise(self, fleet):
        publisher = StreamPublisher(GL(epsilon=1.0, signature_size=3, seed=9))
        first, _ = publisher.publish_collected(source(fleet.dataset, 5))
        second, _ = publisher.publish_collected(source(fleet.dataset, 5))
        assert points_of(first) != points_of(second)

    def test_ledger_round_trips_through_report_json(self, fleet):
        publisher = StreamPublisher(GL(epsilon=1.0, signature_size=3, seed=9))
        _, report = publisher.publish_collected(source(fleet.dataset, 5))
        payload = json.loads(json.dumps(report.to_dict()))
        rebuilt = CompositionLedger.from_dict(payload["accounting"])
        assert rebuilt.epsilon_total == pytest.approx(report.epsilon_total)
        assert rebuilt.to_dict() == report.accounting.to_dict()

    def test_chunk_report_accounting_is_scoped(self, fleet):
        """Each chunk's own run report records its local draw against
        the chunk scope and no fresh TF draw (the shared draw is
        accounted at publisher level)."""
        publisher = StreamPublisher(GL(epsilon=1.0, signature_size=3, seed=9))
        seen = []
        publisher.publish(
            source(fleet.dataset, 5),
            sink=lambda _chunk, report: seen.append(report),
        )
        assert len(seen) > 1
        for i, report in enumerate(seen):
            draws = report.accounting.draws
            assert [d.label for d in draws] == ["local PF randomization"]
            assert draws[0].scope == f"chunk:{i}"
            assert report.budget_ledger == [
                ("local PF randomization", 0.5)
            ]


class TestChunkSourceHelper:
    def test_streams_a_csv_twice(self, fleet, tmp_path):
        path = tmp_path / "fleet.csv"
        write_csv(fleet.dataset, path)
        factory = chunk_source(path, 5)
        first = [len(c) for c in factory()]
        second = [len(c) for c in factory()]
        assert first == second == [5, 5, 2]

    def test_rejects_bad_chunk_size(self, tmp_path):
        with pytest.raises(ValueError):
            chunk_source(tmp_path / "x.csv", 0)


class TestPublishAPI:
    def test_api_publish_with_split(self, fleet, tmp_path):
        from repro.api import publish

        path = tmp_path / "fleet.csv"
        write_csv(fleet.dataset, path)
        report = publish(
            {"kind": "gl", "params": {"epsilon": 2.0, "signature_size": 3,
                                      "seed": 4}},
            str(path),
            chunk_size=5,
            split=0.25,
        )
        assert report.epsilon_total == pytest.approx(2.0)
        draws = report.accounting.sequential_draws()
        assert draws[0].epsilon == pytest.approx(0.5)  # 0.25 * 2.0
        locals_ = report.accounting.groups()["local PF randomization"]
        assert locals_[0].epsilon == pytest.approx(1.5)

    def test_split_spec_edges(self):
        from repro.api import split_spec

        spec = split_spec("gl", 1.0)
        assert spec.params["epsilon_local"] is None
        spec = split_spec("gl", 0.0)
        assert spec.params["epsilon_global"] is None
        with pytest.raises(ValueError):
            split_spec("gl", 1.5)
        with pytest.raises(ValueError):
            split_spec("adatrace", 0.5)

    def test_api_publish_rejects_non_frequency(self, fleet, tmp_path):
        from repro.api import publish

        path = tmp_path / "fleet.csv"
        write_csv(fleet.dataset, path)
        with pytest.raises(ValueError, match="frequency-family"):
            publish("adatrace", str(path))


class TestPublishCLI:
    def test_multi_chunk_report(self, fleet, tmp_path, capsys):
        fleet_csv = tmp_path / "fleet.csv"
        write_csv(fleet.dataset, fleet_csv)
        out = tmp_path / "pub.csv"
        report_path = tmp_path / "pub.json"
        code = main(
            [
                "publish",
                "-i", str(fleet_csv),
                "-o", str(out),
                "--report", str(report_path),
                "--chunk-size", "5",
                "--model", "gl",
                "--epsilon", "1.0",
                "--signature-size", "3",
                "--seed", "7",
                "--split", "0.5",
            ]
        )
        assert code == 0
        assert len(read_csv(out)) == len(fleet.dataset)
        payload = json.loads(report_path.read_text())
        assert payload["chunk_count"] == 3
        assert payload["epsilon_total"] == pytest.approx(1.0)
        ledger = CompositionLedger.from_dict(payload["accounting"])
        assert ledger.epsilon_total == pytest.approx(1.0)
        captured = capsys.readouterr().out
        assert "end-to-end eps" in captured
        assert "ledger" in captured

    def test_rejects_non_frequency_method(self, fleet, tmp_path, capsys):
        fleet_csv = tmp_path / "fleet.csv"
        write_csv(fleet.dataset, fleet_csv)
        code = main(
            [
                "publish",
                "-i", str(fleet_csv),
                "-o", str(tmp_path / "out.csv"),
                "--method", "adatrace",
            ]
        )
        assert code == 2
        assert "frequency-family" in capsys.readouterr().err


class TestPublishExperiment:
    def test_smoke_run_compares_both_strategies(self, capsys):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.publish import STRATEGIES, render, run

        config = ExperimentConfig.smoke()
        results = run(config, chunk_size=7)
        assert set(results["metrics"]) == set(STRATEGIES)
        for strategy in STRATEGIES:
            assert results["metrics"][strategy]["INF"] is not None
        assert results["epsilon_total"] == pytest.approx(config.epsilon)
        text = render(results)
        assert "per_chunk" in text and "shared_tf" in text
