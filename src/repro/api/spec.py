"""Declarative method specifications.

:class:`MethodSpec` is the one serializable currency of the API layer:
a frozen ``(kind, params)`` pair naming a registered anonymization
method and its constructor parameters. It is

* **validated** — the kind must be a non-empty identifier and every
  parameter value plain JSON-compatible data, checked at construction
  (the parameter *names* are checked against the method's signature
  when the spec is built, see :func:`repro.api.registry.build`);
* **picklable** — plain data only, so it is the payload the batch
  engine ships across process boundaries;
* **digestible** — :attr:`MethodSpec.digest` is a stable hash of the
  canonical JSON form, identical across processes and runs, recorded
  as provenance in :class:`~repro.core.pipeline.AnonymizationReport`
  and usable as an artifact version key.

This module is a leaf: it imports nothing from the rest of the
package, so every layer (core, engine, experiments, CLI) can depend
on it without cycles.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

#: Parameter values must reduce to these JSON scalar types (sequences
#: of them are allowed and normalized to tuples).
_SCALARS = (type(None), bool, int, float, str)


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonical_digest(payload: Any) -> str:
    """Stable 16-hex-digit digest of ``payload``'s canonical JSON.

    BLAKE2b like the pipeline's seed derivation — stable across
    processes and Python versions (unlike ``hash()``).
    """
    return hashlib.blake2b(
        canonical_json(payload).encode(), digest_size=8
    ).hexdigest()


def _freeze(value: Any, path: str) -> Any:
    """Normalize a parameter value to immutable plain data."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item, f"{path}[]") for item in value)
    raise TypeError(
        f"spec parameter {path!r} must be plain data "
        f"(None/bool/int/float/str or sequences of them), "
        f"got {type(value).__name__}"
    )


def _thaw(value: Any) -> Any:
    """Back to JSON-native types (tuples become lists)."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class MethodSpec:
    """A declarative, serializable anonymization-method configuration.

    ``kind`` names a method in the registry (``repro methods`` lists
    them); ``params`` are the constructor parameters of that method.
    Construct directly, from JSON via :meth:`from_dict`, or from a
    live pipeline via :meth:`FrequencyAnonymizer.spec`.

    Instances are immutable and hashable; derive variants with
    :meth:`replace` (e.g. an ε sweep).
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind.strip():
            raise ValueError("spec kind must be a non-empty string")
        kind = self.kind.strip().lower()
        if not kind.replace("_", "").replace("-", "").isalnum():
            raise ValueError(f"spec kind must be an identifier, got {kind!r}")
        raw = self.params
        if not isinstance(raw, Mapping):
            raise TypeError(
                f"spec params must be a mapping, got {type(raw).__name__}"
            )
        params: dict[str, Any] = {}
        for name in sorted(raw):
            if not isinstance(name, str) or not name.isidentifier():
                raise ValueError(
                    f"spec parameter names must be identifiers, got {name!r}"
                )
            params[name] = _freeze(raw[name], name)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "params", params)

    # -- identity ---------------------------------------------------------------

    def __hash__(self) -> int:  # params is a dict; hash the canonical form
        return hash((self.kind, self.digest))

    @property
    def digest(self) -> str:
        """Stable 16-hex config digest, identical across processes."""
        return canonical_digest(self.to_dict())

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable form; inverse of :meth:`from_dict`."""
        return {
            "kind": self.kind,
            "params": {name: _thaw(value) for name, value in self.params.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MethodSpec":
        if not isinstance(payload, Mapping) or "kind" not in payload:
            raise ValueError("spec dict must have a 'kind' key")
        extra = set(payload) - {"kind", "params"}
        if extra:
            raise ValueError(f"unknown spec keys: {sorted(extra)}")
        return cls(payload["kind"], payload.get("params") or {})

    # -- derivation -------------------------------------------------------------

    def replace(self, **overrides: Any) -> "MethodSpec":
        """A new spec with ``overrides`` merged into the params."""
        return MethodSpec(self.kind, {**self.params, **overrides})

    def build(self):
        """Construct the configured anonymizer (registry lookup)."""
        from repro.api.registry import build

        return build(self)
