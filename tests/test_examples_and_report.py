"""Smoke checks: examples compile, the report generator produces markdown."""

import py_compile
from pathlib import Path

import pytest

from repro.experiments import fig4, fig5, table2
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import (
    fig4_markdown,
    fig5_markdown,
    table2_markdown,
)

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES}
        assert "quickstart.py" in names
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)

    def test_quickstart_runs(self, capsys):
        import runpy

        runpy.run_path(str(EXAMPLES[[p.name for p in EXAMPLES].index("quickstart.py")]),
                       run_name="__main__")
        out = capsys.readouterr().out
        assert "total privacy budget" in out
        assert "signature point" in out


class TestReportGenerator:
    @pytest.fixture(scope="class")
    def config(self):
        return ExperimentConfig.smoke()

    def test_table2_markdown(self, config):
        results = table2.run(config, methods=["SC", "GL"])
        text = table2_markdown(results)
        assert text.startswith("| Metric |")
        assert "| SC |" in text or "SC" in text.splitlines()[0]
        assert "LAs" in text

    def test_fig4_markdown(self, config):
        series = fig4.run(config, epsilons=(1.0,))
        text = fig4_markdown(series, (1.0,))
        assert "**LAs vs ε**" in text
        assert "| GL |" in text

    def test_fig5_markdown(self, config):
        results = fig5.run(config, sizes=(8,))
        text = fig5_markdown(results, (8,))
        assert "kNN search time" in text
        assert "| Linear |" in text
        assert "| Global |" in text
