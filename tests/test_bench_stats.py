"""Property tests (hypothesis) for the dependency-free bench statistics.

The baseline window feeds ``repro.bench.stats`` raw wall-clock floats;
the regression gate's verdicts are only as trustworthy as these order
statistics, so the invariants are pinned exhaustively: bounds,
monotonicity in q, permutation invariance, and the empty/single-element
edges.
"""

import math

import pytest
from hypothesis import given, strategies as st

from repro.bench.stats import iqr, median, percentile, summarize

finite_values = st.lists(
    st.floats(
        min_value=0.0,
        max_value=1e12,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=30,
)

quantiles = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


class TestPercentileProperties:
    @given(values=finite_values, q=quantiles)
    def test_bounded_by_min_and_max(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)

    @given(values=finite_values, q1=quantiles, q2=quantiles)
    def test_monotone_in_q(self, values, q1, q2):
        low, high = sorted((q1, q2))
        assert percentile(values, low) <= percentile(values, high)

    @given(values=finite_values, q=quantiles, seed=st.integers(0, 2**16))
    def test_permutation_invariant(self, values, q, seed):
        import random

        shuffled = list(values)
        random.Random(seed).shuffle(shuffled)
        assert percentile(shuffled, q) == percentile(values, q)

    @given(values=finite_values)
    def test_extremes_are_min_and_max(self, values):
        assert percentile(values, 0) == min(values)
        assert percentile(values, 100) == max(values)

    @given(value=st.floats(0.0, 1e12, allow_nan=False), q=quantiles)
    def test_single_element(self, value, q):
        assert percentile([value], q) == value

    @given(q=quantiles)
    def test_empty_input_is_none(self, q):
        assert percentile([], q) is None

    @given(values=finite_values)
    def test_interpolation_within_neighbours(self, values):
        """P25/P75 interpolate between adjacent order statistics."""
        ordered = sorted(values)
        for q in (25.0, 75.0):
            position = (len(ordered) - 1) * q / 100.0
            lower = ordered[math.floor(position)]
            upper = ordered[math.ceil(position)]
            assert lower <= percentile(values, q) <= upper


class TestPercentileContract:
    """The FlakeBench-style unit contract, kept as concrete anchors."""

    def test_basic(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 50) == 3.0
        assert percentile(values, 100) == 5.0

    def test_interpolation(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert 10 < percentile(values, 25) < 20
        assert 30 < percentile(values, 75) < 40

    @pytest.mark.parametrize("q", (-0.1, 100.1, 250))
    def test_out_of_range_q_raises(self, q):
        with pytest.raises(ValueError, match="percentile q"):
            percentile([1.0], q)


class TestDerivedStats:
    @given(values=finite_values)
    def test_median_is_p50(self, values):
        assert median(values) == percentile(values, 50)

    @given(values=finite_values)
    def test_iqr_non_negative(self, values):
        assert iqr(values) >= 0

    def test_empty_edges(self):
        assert median([]) is None
        assert iqr([]) is None
        summary = summarize([])
        assert summary["count"] == 0
        assert summary["median"] is None

    @given(values=finite_values)
    def test_summary_is_consistent(self, values):
        summary = summarize(values)
        assert summary["count"] == len(values)
        assert summary["min"] == min(values)
        assert summary["max"] == max(values)
        assert summary["min"] <= summary["p25"] <= summary["median"]
        assert summary["median"] <= summary["p75"] <= summary["max"]
        assert summary["iqr"] == summary["p75"] - summary["p25"]
