"""Drive the rules over a file tree and render the results.

:func:`analyze_paths` is the programmatic entry the CLI and
``tools/check_static.py`` share; :func:`analyze_source` analyzes one
in-memory snippet (the test fixture path). Suppression
(``# repro: noqa[CODE]``) and baseline matching happen here, after the
rules run, so individual rules stay oblivious to both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .baseline import Baseline, BaselineEntry
from .findings import Finding
from .rules import Rule, rules_for
from .visitor import ModuleInfo, Project, module_name_for


class AnalysisError(Exception):
    """The analyzer itself failed (unreadable file, syntax error) —
    distinct from "findings exist"; maps to exit code 2."""


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    #: Findings that count against the exit code.
    findings: list[Finding] = field(default_factory=list)
    #: Findings silenced by an inline ``# repro: noqa`` comment.
    suppressed: list[Finding] = field(default_factory=list)
    #: Findings absorbed by the baseline file.
    baselined: list[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (should be deleted).
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    #: Files analyzed.
    files: int = 0
    #: Rule codes that ran.
    codes: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "files": self.files,
            "codes": self.codes,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": [e.to_dict() for e in self.stale_baseline],
            "clean": self.clean,
        }

    def render_human(self) -> str:
        lines: list[str] = []
        for finding in self.findings:
            lines.append(finding.render())
            if finding.snippet:
                lines.append(f"    {finding.snippet}")
        for entry in self.stale_baseline:
            lines.append(
                f"warning: stale baseline entry {entry.code} for "
                f"{entry.path!r} ({entry.snippet!r}) matches nothing — "
                f"delete it"
            )
        summary = (
            f"checked {self.files} file(s) against "
            f"{len(self.codes)} rule(s): "
        )
        if self.clean:
            summary += "clean"
        else:
            summary += f"{len(self.findings)} finding(s)"
        extras = []
        if self.suppressed:
            extras.append(f"{len(self.suppressed)} suppressed")
        if self.baselined:
            extras.append(f"{len(self.baselined)} baselined")
        if extras:
            summary += f" ({', '.join(extras)})"
        lines.append(summary)
        return "\n".join(lines)


def _iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise AnalysisError(f"{path}: not a Python file or directory")


def load_project(paths: Sequence[Path], root: Path | None = None) -> Project:
    """Parse every ``.py`` under ``paths`` into a :class:`Project`.

    Paths in findings are reported relative to ``root`` (default: the
    current directory) when possible, POSIX-style.
    """
    root = Path.cwd() if root is None else Path(root)
    project = Project()
    seen: set[Path] = set()
    for file_path in _iter_python_files([Path(p) for p in paths]):
        resolved = file_path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        try:
            source = file_path.read_text()
        except OSError as exc:
            raise AnalysisError(f"{file_path}: unreadable: {exc}") from exc
        try:
            relative = str(resolved.relative_to(root.resolve()).as_posix())
        except ValueError:
            relative = file_path.as_posix()
        name = module_name_for(file_path, root)
        try:
            project.modules.append(ModuleInfo.parse(source, relative, name))
        except SyntaxError as exc:
            raise AnalysisError(f"{file_path}: syntax error: {exc}") from exc
    return project


def run_rules(project: Project, rules: Sequence[Rule]) -> list[Finding]:
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(project))
    return sorted(findings, key=Finding.sort_key)


def analyze_project(
    project: Project,
    rules: Sequence[Rule] | None = None,
    baseline: Baseline | None = None,
    codes: Iterable[str] | None = None,
) -> AnalysisReport:
    """Run ``rules`` (or the registered set restricted to ``codes``)
    over an already-parsed project."""
    if rules is None:
        rules = rules_for(list(codes) if codes is not None else None)
    raw = run_rules(project, rules)
    by_path = {module.path: module for module in project.modules}
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and module.suppressed(finding.code, finding.line):
            suppressed.append(finding)
        else:
            kept.append(finding)
    if baseline is None:
        active, baselined, stale = kept, [], []
    else:
        active, baselined, stale = baseline.apply(kept)
    return AnalysisReport(
        findings=active,
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
        files=len(project.modules),
        codes=[rule.code for rule in rules],
    )


def analyze_paths(
    paths: Sequence[Path | str],
    root: Path | str | None = None,
    baseline: Baseline | Path | str | None = None,
    codes: Iterable[str] | None = None,
) -> AnalysisReport:
    """Analyze a file tree: the CLI/CI entry point.

    ``baseline`` may be a loaded :class:`Baseline` or a path to one;
    ``codes`` restricts the rule set (default: every registered rule).
    """
    root_path = Path.cwd() if root is None else Path(root)
    if baseline is not None and not isinstance(baseline, Baseline):
        baseline = Baseline.load(Path(baseline))
    project = load_project([Path(p) for p in paths], root=root_path)
    return analyze_project(project, baseline=baseline, codes=codes)


def analyze_source(
    source: str,
    path: str = "<snippet>.py",
    module: str = "snippet",
    codes: Iterable[str] | None = None,
    baseline: Baseline | None = None,
) -> AnalysisReport:
    """Analyze one in-memory snippet (test-fixture convenience)."""
    try:
        info = ModuleInfo.parse(source, path, module)
    except SyntaxError as exc:
        raise AnalysisError(f"{path}: syntax error: {exc}") from exc
    project = Project(modules=[info])
    return analyze_project(project, baseline=baseline, codes=codes)
