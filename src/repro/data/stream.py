"""Streaming readers for real trajectory datasets.

Everything here is a generator over generators: a file (or directory of
per-object files) flows through record parsing, projection, and
grouping one object at a time, so peak memory is bounded by the largest
single trajectory — never by the dataset. Two source formats are
understood (see ``docs/data.md`` for the full spec):

* **raw T-Drive** — ``taxi_id,datetime,longitude,latitude`` lines, as
  in the Microsoft T-Drive release (one ``.txt`` file per taxi, no
  header); timestamps like ``2008-02-02 15:36:08`` are parsed as UTC
  and converted to epoch seconds, and coordinates are projected to
  planar metres with the same equirectangular projection as
  :func:`repro.trajectory.io.project_latlon`;
* **planar** — the repo's native ``object_id,t,x,y`` CSV written by
  :func:`repro.trajectory.io.write_csv`.

Rows must be grouped by object (true of both the T-Drive release and
``write_csv`` output); an object id that reappears after its group
ended raises a :class:`ValueError` with the line number rather than
silently splitting or buffering unboundedly.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable, Iterator

from repro.trajectory.io import (
    EARTH_RADIUS_M,
    read_object_file,
    stream_csv_rows,
)
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset

#: Recognised source formats for :func:`stream_trajectories`.
FORMATS = ("auto", "planar", "tdrive")

#: Timestamp layout of the T-Drive release.
TDRIVE_DATETIME_FORMAT = "%Y-%m-%d %H:%M:%S"


@dataclass(frozen=True, slots=True)
class RawRecord:
    """One raw T-Drive sample: object id, epoch seconds, WGS84 degrees."""

    object_id: str
    t: float
    lat: float
    lon: float


def parse_timestamp(text: str) -> float:
    """Epoch seconds from a T-Drive datetime or a plain float literal."""
    try:
        return float(text)
    except ValueError:
        pass
    moment = datetime.strptime(text, TDRIVE_DATETIME_FORMAT)
    return moment.replace(tzinfo=timezone.utc).timestamp()


def _tdrive_files(source: Path) -> list[Path]:
    if source.is_dir():
        files = sorted(p for p in source.iterdir() if p.suffix in (".txt", ".csv"))
        if not files:
            raise ValueError(f"no .txt/.csv files under {source}")
        return files
    return [source]


def stream_tdrive_records(source: str | Path) -> Iterator[RawRecord]:
    """Lazily yield :class:`RawRecord` from a raw T-Drive file/directory.

    Lines are ``taxi_id,datetime,longitude,latitude`` with no header.
    Malformed lines raise :class:`ValueError` naming the file and line
    number. Directories are read file by file in name order.
    """
    for path in _tdrive_files(Path(source)):
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            for row in reader:
                if not row:
                    continue
                line = reader.line_num
                if len(row) != 4:
                    raise ValueError(
                        f"{path}:{line}: expected 4 fields "
                        f"(taxi_id,datetime,longitude,latitude), "
                        f"got {len(row)}: {row!r}"
                    )
                object_id, stamp, lon, lat = row
                try:
                    yield RawRecord(
                        object_id, parse_timestamp(stamp), float(lat), float(lon)
                    )
                except ValueError:
                    raise ValueError(
                        f"{path}:{line}: malformed datetime/longitude/"
                        f"latitude in row {row!r}"
                    ) from None


def scan_origin(source: str | Path) -> tuple[float, float]:
    """Mean ``(lat, lon)`` of a raw source — one cheap streaming pass.

    The ingest pipeline uses this as the default projection origin so a
    second pass can project records without holding any of them.
    """
    count = 0
    lat_sum = 0.0
    lon_sum = 0.0
    for record in stream_tdrive_records(source):
        count += 1
        lat_sum += record.lat
        lon_sum += record.lon
    if count == 0:
        raise ValueError(f"no records in {source}")
    return (lat_sum / count, lon_sum / count)


def project_record(lat: float, lon: float, origin: tuple[float, float]) -> tuple[float, float]:
    """Equirectangular ``(lat, lon) -> (x, y)`` metres around ``origin``."""
    lat0, lon0 = origin
    cos_lat0 = math.cos(math.radians(lat0))
    x = math.radians(lon - lon0) * cos_lat0 * EARTH_RADIUS_M
    y = math.radians(lat - lat0) * EARTH_RADIUS_M
    return x, y


def unproject_point(x: float, y: float, origin: tuple[float, float]) -> tuple[float, float]:
    """Inverse of :func:`project_record`: planar metres back to degrees."""
    lat0, lon0 = origin
    cos_lat0 = math.cos(math.radians(lat0))
    lat = lat0 + math.degrees(y / EARTH_RADIUS_M)
    lon = lon0 + math.degrees(x / (EARTH_RADIUS_M * cos_lat0))
    return lat, lon


def group_records(
    records: Iterable[RawRecord],
    origin: tuple[float, float],
    source: str = "<records>",
) -> Iterator[Trajectory]:
    """Group consecutive same-object records into projected trajectories.

    Bounded memory: only the current object's points are held. A record
    whose object id reappears after its group ended raises
    :class:`ValueError` (grouped input is part of the format contract).
    Points are re-sorted by timestamp within each object.
    """
    current_id: str | None = None
    points: list[Point] = []
    seen: set[str] = set()
    for record in records:
        if record.object_id != current_id:
            if current_id is not None:
                yield Trajectory(current_id, sorted(points, key=lambda p: p.t))
            if record.object_id in seen:
                raise ValueError(
                    f"{source}: records for object {record.object_id!r} are "
                    f"not contiguous; group records by object before reading"
                )
            seen.add(record.object_id)
            current_id = record.object_id
            points = []
        x, y = project_record(record.lat, record.lon, origin)
        points.append(Point(x, y, record.t))
    if current_id is not None:
        yield Trajectory(current_id, sorted(points, key=lambda p: p.t))


def detect_format(source: str | Path) -> str:
    """``"planar"`` or ``"tdrive"``, sniffed from the first data line.

    Planar sources either carry the ``object_id,t,x,y`` header or have a
    numeric second field; T-Drive lines have a datetime there.
    """
    path = Path(source)
    probe = _tdrive_files(path)[0] if path.is_dir() else path
    with probe.open(newline="") as handle:
        for row in csv.reader(handle):
            if not row:
                continue
            if [cell.strip() for cell in row] == ["object_id", "t", "x", "y"]:
                return "planar"
            if len(row) == 4:
                try:
                    float(row[1])
                    return "planar"
                except ValueError:
                    return "tdrive"
            break
    raise ValueError(f"cannot detect dataset format of {source}")


def stream_trajectories(
    source: str | Path,
    format: str = "auto",
    origin: tuple[float, float] | None = None,
) -> Iterator[Trajectory]:
    """Lazily yield trajectories from any supported raw source.

    ``format`` is one of :data:`FORMATS`; ``"auto"`` sniffs via
    :func:`detect_format`. For T-Drive sources, ``origin`` fixes the
    projection origin; when omitted a first streaming pass computes the
    mean coordinate (:func:`scan_origin`) — still bounded memory, at the
    cost of reading the source twice.
    """
    if format not in FORMATS:
        raise ValueError(f"unknown format {format!r}; choose from {FORMATS}")
    path = Path(source)
    if format == "auto":
        format = detect_format(path)
    if format == "planar":
        if path.is_dir():
            for target in _tdrive_files(path):
                yield read_object_file(target)
        else:
            with path.open(newline="") as handle:
                yield from stream_csv_rows(handle, source=str(path))
        return
    if origin is None:
        origin = scan_origin(path)
    yield from group_records(
        stream_tdrive_records(path), origin, source=str(path)
    )


def chunked(
    trajectories: Iterable[Trajectory], chunk_size: int
) -> Iterator[TrajectoryDataset]:
    """Group a lazy trajectory stream into ``chunk_size``-sized datasets.

    The bridge between the streaming readers and dataset-at-a-time
    consumers such as :meth:`repro.engine.BatchAnonymizer.anonymize_many`:
    the source is pulled one trajectory at a time, so at most one chunk
    is materialised.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    batch: list[Trajectory] = []
    for trajectory in trajectories:
        batch.append(trajectory)
        if len(batch) >= chunk_size:
            yield TrajectoryDataset(batch)
            batch = []
    if batch:
        yield TrajectoryDataset(batch)
