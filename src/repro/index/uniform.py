"""Single-level uniform grid index (the paper's UG baseline).

Segments are registered in every grid cell their bounding box overlaps;
kNN search expands square rings around the query cell and stops once
the next ring cannot contain anything closer than the current K-th
candidate.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator

from repro.geo.geometry import BBox, Coord
from repro.geo.vectorized import SegmentArray
from repro.index.base import IndexedSegment, SegmentRegistry
from repro.index.search import KnnCandidates


class UniformGridIndex:
    """A ``granularity`` x ``granularity`` uniform grid over ``bbox``.

    Two segment-assignment modes:

    * ``"overlap"`` (default) — a segment is registered in every cell
      its bounding box overlaps. Queries can prune cells by exact
      MINdist, which makes this the strongest single-level grid; the
      modification pipeline uses it.
    * ``"midpoint"`` — the classic single-cell assignment (the paper's
      UG baseline): a segment lives in the cell of its midpoint only.
      A cell then gives no bound on the extent of its segments, so ring
      expansion must over-scan by the longest indexed segment — the
      "misleading information" the paper's hierarchical index avoids.
    """

    def __init__(
        self,
        bbox: BBox,
        granularity: int = 512,
        assignment: str = "overlap",
    ) -> None:
        if granularity < 1:
            raise ValueError("granularity must be at least 1")
        if assignment not in ("overlap", "midpoint"):
            raise ValueError(f"unknown assignment mode {assignment!r}")
        self.bbox = bbox
        self.granularity = granularity
        self.assignment = assignment
        self._cell_w = max(bbox.width, 1e-9) / granularity
        self._cell_h = max(bbox.height, 1e-9) / granularity
        self._registry = SegmentRegistry()
        self._cells: dict[tuple[int, int], set[int]] = {}
        self._cells_of_sid: dict[int, list[tuple[int, int]]] = {}
        #: Lazily-built vectorised views ``cell -> (sorted sids,
        #: SegmentArray)``, invalidated per cell on insert/remove. One
        #: numpy distance pass per bucket replaces the per-segment
        #: Python loop, and batched queries over a static index reuse
        #: every view.
        self._views: dict[tuple[int, int], tuple[list[int], SegmentArray]] = {}
        #: Longest segment half-extent, for midpoint-mode ring bounds.
        self._max_half_extent = 0.0
        #: Segments with an endpoint outside ``bbox``. Clamped cell
        #: assignment would break the ring/cell distance bounds (the
        #: protruding geometry can be closer to an outside query than
        #: its clamped cell), so every search checks them exactly.
        self._overflow: set[int] = set()

    # -- geometry helpers -----------------------------------------------------

    def _clamp_cell(self, cx: int, cy: int) -> tuple[int, int]:
        return (
            min(max(cx, 0), self.granularity - 1),
            min(max(cy, 0), self.granularity - 1),
        )

    def cell_of(self, p: Coord) -> tuple[int, int]:
        cx = int(math.floor((p[0] - self.bbox.min_x) / self._cell_w))
        cy = int(math.floor((p[1] - self.bbox.min_y) / self._cell_h))
        return self._clamp_cell(cx, cy)

    def cell_bbox(self, cx: int, cy: int) -> BBox:
        return BBox(
            self.bbox.min_x + cx * self._cell_w,
            self.bbox.min_y + cy * self._cell_h,
            self.bbox.min_x + (cx + 1) * self._cell_w,
            self.bbox.min_y + (cy + 1) * self._cell_h,
        )

    def _cells_overlapping(self, a: Coord, b: Coord) -> list[tuple[int, int]]:
        cx0, cy0 = self.cell_of((min(a[0], b[0]), min(a[1], b[1])))
        cx1, cy1 = self.cell_of((max(a[0], b[0]), max(a[1], b[1])))
        return [
            (cx, cy)
            for cx in range(cx0, cx1 + 1)
            for cy in range(cy0, cy1 + 1)
        ]

    # -- index protocol ---------------------------------------------------------

    def insert(self, a: Coord, b: Coord, owner: str | None = None) -> int:
        segment = self._registry.allocate(a, b, owner)
        if not (self.bbox.contains(a) and self.bbox.contains(b)):
            self._overflow.add(segment.sid)
            self._cells_of_sid[segment.sid] = []
            return segment.sid
        if self.assignment == "overlap":
            cells = self._cells_overlapping(a, b)
        else:
            midpoint = ((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)
            cells = [self.cell_of(midpoint)]
            half = math.hypot(b[0] - a[0], b[1] - a[1]) / 2.0
            if half > self._max_half_extent:
                self._max_half_extent = half
        for cell in cells:
            self._cells.setdefault(cell, set()).add(segment.sid)
            self._views.pop(cell, None)
        self._cells_of_sid[segment.sid] = cells
        return segment.sid

    def remove(self, sid: int) -> None:
        self._registry.release(sid)
        self._overflow.discard(sid)
        for cell in self._cells_of_sid.pop(sid):
            bucket = self._cells.get(cell)
            if bucket is not None:
                bucket.discard(sid)
                self._views.pop(cell, None)
                if not bucket:
                    del self._cells[cell]

    def segment(self, sid: int) -> IndexedSegment:
        return self._registry.get(sid)

    def __len__(self) -> int:
        return len(self._registry)

    def _cell_view(
        self, cell: tuple[int, int]
    ) -> tuple[list[int], SegmentArray]:
        """The bucket's vectorised segment view, built lazily and
        cached until the bucket next changes."""
        view = self._views.get(cell)
        if view is None:
            sids = sorted(self._cells[cell])
            pairs = []
            for sid in sids:
                segment = self._registry.get(sid)
                pairs.append((segment.a, segment.b))
            view = (sids, SegmentArray.from_pairs(pairs))
            self._views[cell] = view
        return view

    # -- search --------------------------------------------------------------------

    def knn(self, q: Coord, k: int) -> list[tuple[int, float]]:
        """Ring-expansion K-nearest segment search.

        In midpoint mode, bounds are slackened by the longest indexed
        segment's half-extent: a cell's bucket can contain geometry
        reaching that far outside the cell.
        """
        if len(self._registry) == 0:
            return []
        slack = self._max_half_extent if self.assignment == "midpoint" else 0.0
        candidates = KnnCandidates(k)
        # Out-of-bbox segments carry no valid cell bound; check them
        # exactly up front (this also tightens θ_K before the rings).
        for sid in self._overflow:
            candidates.offer(sid, self._registry.get(sid).distance_to(q))
        qx, qy = self.cell_of(q)
        seen: set[int] = set()
        max_ring = self.granularity  # worst case covers the whole grid
        for ring in range(max_ring + 1):
            # Distance lower bound for cells in this ring: once the ring
            # is entirely farther than θ_K (+ slack), stop.
            if candidates.full and ring > 0:
                ring_min = (ring - 1) * min(self._cell_w, self._cell_h)
                if ring_min > candidates.threshold + slack:
                    break
            for cx, cy in self._ring_cells(qx, qy, ring):
                bucket = self._cells.get((cx, cy))
                if not bucket:
                    continue
                if candidates.full:
                    cell_bound = self.cell_bbox(cx, cy).min_distance(q) - slack
                    if cell_bound > candidates.threshold:
                        continue
                sids, array = self._cell_view((cx, cy))
                distances = array.distances_to(q)
                for position, sid in enumerate(sids):
                    if sid in seen:
                        continue
                    seen.add(sid)
                    candidates.offer(sid, float(distances[position]))
        return candidates.results()

    def knn_batch(self, qs, k: int) -> list[list[tuple[int, float]]]:
        """:meth:`knn` for a batch of queries against one snapshot.

        Ring expansion runs per query, but every touched bucket's
        vectorised segment view is cached across the whole batch (and
        across calls, until the bucket changes).
        """
        return [self.knn(q, k) for q in qs]

    def iter_nearest(self, q: Coord) -> Iterator[tuple[int, float]]:
        """Incremental nearest-segment iteration by ring expansion.

        Rings are scanned outward exactly as in :meth:`knn`; scanned
        candidates wait in a min-heap and are only released once their
        distance is provably smaller than anything an unscanned ring
        can contain (after ring ``r``, unscanned segments sit in rings
        ``>= r + 1`` whose cells are at least ``r`` cell-widths away,
        minus the midpoint-mode slack).
        """
        if len(self._registry) == 0:
            return
        slack = self._max_half_extent if self.assignment == "midpoint" else 0.0
        qx, qy = self.cell_of(q)
        min_cell = min(self._cell_w, self._cell_h)
        seen: set[int] = set()
        heap: list[tuple[float, int]] = []
        # Out-of-bbox segments join the heap with exact distances up
        # front; the ring release bound stays valid for them.
        for sid in self._overflow:
            seen.add(sid)
            heapq.heappush(heap, (self._registry.get(sid).distance_to(q), sid))
        for ring in range(self.granularity + 1):
            for cx, cy in self._ring_cells(qx, qy, ring):
                bucket = self._cells.get((cx, cy))
                if not bucket:
                    continue
                sids, array = self._cell_view((cx, cy))
                distances = array.distances_to(q)
                for position, sid in enumerate(sids):
                    if sid in seen:
                        continue
                    seen.add(sid)
                    heapq.heappush(heap, (float(distances[position]), sid))
            safe = ring * min_cell - slack
            while heap and heap[0][0] <= safe:
                dist, sid = heapq.heappop(heap)
                yield sid, dist
        while heap:
            dist, sid = heapq.heappop(heap)
            yield sid, dist

    def iter_nearest_batch(self, qs) -> list[Iterator[tuple[int, float]]]:
        """:meth:`iter_nearest` per query, sharing cached bucket views."""
        return [self.iter_nearest(q) for q in qs]

    def _ring_cells(self, qx: int, qy: int, ring: int):
        if ring == 0:
            yield (qx, qy)
            return
        lo_x, hi_x = qx - ring, qx + ring
        lo_y, hi_y = qy - ring, qy + ring
        for cx in range(max(lo_x, 0), min(hi_x, self.granularity - 1) + 1):
            for cy in (lo_y, hi_y):
                if 0 <= cy < self.granularity:
                    yield (cx, cy)
        for cy in range(max(lo_y + 1, 0), min(hi_y - 1, self.granularity - 1) + 1):
            for cx in (lo_x, hi_x):
                if 0 <= cx < self.granularity:
                    yield (cx, cy)
