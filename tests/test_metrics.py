"""Tests for privacy and utility metrics."""

import pytest

from repro.metrics.patterns import cell_sequence, mine_patterns, top_patterns
from repro.metrics.privacy import mutual_information
from repro.metrics.utility import (
    _jensen_shannon,
    diameter_error,
    frequent_pattern_f1,
    information_loss,
    trip_error,
)
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset
from collections import Counter


def traj(object_id, coords, t0=0.0):
    return Trajectory(
        object_id,
        [Point(float(x), float(y), t0 + 60.0 * i) for i, (x, y) in enumerate(coords)],
    )


@pytest.fixture
def dataset():
    return TrajectoryDataset(
        [
            traj("a", [(0, 0), (600, 0), (1200, 0), (1800, 0)]),
            traj("b", [(0, 5000), (600, 5000), (1200, 5000)]),
            traj("c", [(3000, 3000), (3600, 3000), (3600, 3600)]),
        ]
    )


class TestMutualInformation:
    def test_identical_datasets_max_mi(self, dataset):
        assert mutual_information(dataset, dataset) == pytest.approx(1.0)

    def test_independent_data_low_mi(self, dataset):
        scrambled = TrajectoryDataset(
            [
                traj("a", [(90000, 90000)] * 4),
                traj("b", [(90000, 90000)] * 3),
                traj("c", [(90000, 90000)] * 3),
            ]
        )
        assert mutual_information(dataset, scrambled) == pytest.approx(0.0, abs=0.05)

    def test_mismatched_sizes_raise(self, dataset):
        with pytest.raises(ValueError):
            mutual_information(dataset, TrajectoryDataset([dataset[0].copy()]))

    def test_bounded(self, dataset):
        shifted = TrajectoryDataset(
            Trajectory(t.object_id, [Point(p.x + 300, p.y, p.t) for p in t])
            for t in dataset
        )
        mi = mutual_information(dataset, shifted)
        assert 0.0 <= mi <= 1.0


class TestInformationLoss:
    def test_zero_for_identity(self, dataset):
        assert information_loss(dataset, dataset) == pytest.approx(0.0)

    def test_one_for_total_destruction(self, dataset):
        destroyed = TrajectoryDataset(
            Trajectory(t.object_id, [Point(1e7, 1e7, 0.0)]) for t in dataset
        )
        assert information_loss(dataset, destroyed) == pytest.approx(1.0)

    def test_small_perturbation_small_loss(self, dataset):
        nudged = TrajectoryDataset(
            Trajectory(t.object_id, [Point(p.x + 50, p.y, p.t) for p in t])
            for t in dataset
        )
        loss = information_loss(dataset, nudged)
        assert 0.0 < loss < 0.1

    def test_deletion_costs_more_than_nudge(self, dataset):
        nudged = TrajectoryDataset(
            Trajectory(t.object_id, [Point(p.x + 50, p.y, p.t) for p in t])
            for t in dataset
        )
        # Delete all but the first point of each trajectory.
        gutted = TrajectoryDataset(
            Trajectory(t.object_id, t.points[:1]) for t in dataset
        )
        assert information_loss(dataset, gutted) > information_loss(dataset, nudged)

    def test_invalid_cap(self, dataset):
        with pytest.raises(ValueError):
            information_loss(dataset, dataset, cap=0.0)

    def test_stride_sampling_close_to_full(self, dataset):
        full = information_loss(dataset, dataset, sample_stride=1)
        strided = information_loss(dataset, dataset, sample_stride=2)
        assert full == pytest.approx(strided, abs=0.05)


class TestJensenShannon:
    def test_identical(self):
        p = Counter({1: 5, 2: 5})
        assert _jensen_shannon(p, p) == pytest.approx(0.0)

    def test_disjoint_is_one(self):
        assert _jensen_shannon(Counter({1: 5}), Counter({2: 5})) == pytest.approx(1.0)

    def test_empty_cases(self):
        assert _jensen_shannon(Counter(), Counter()) == 0.0
        assert _jensen_shannon(Counter({1: 1}), Counter()) == 1.0

    def test_symmetric(self):
        p = Counter({1: 3, 2: 7})
        q = Counter({1: 6, 3: 4})
        assert _jensen_shannon(p, q) == pytest.approx(_jensen_shannon(q, p))


class TestDiameterError:
    def test_zero_for_identity(self, dataset):
        assert diameter_error(dataset, dataset) == pytest.approx(0.0)

    def test_grows_with_shrinkage(self, dataset):
        shrunk = TrajectoryDataset(
            Trajectory(t.object_id, [Point(p.x / 10, p.y / 10, p.t) for p in t])
            for t in dataset
        )
        assert diameter_error(dataset, shrunk) > 0.3


class TestTripError:
    def test_zero_for_identity(self, dataset):
        assert trip_error(dataset, dataset) == pytest.approx(0.0)

    def test_high_for_relocated_trips(self, dataset):
        # Collapse all trips onto one corner cell.
        relocated = TrajectoryDataset(
            Trajectory(t.object_id, [Point(0.0, 0.0, p.t) for p in t])
            for t in dataset
        )
        assert trip_error(dataset, relocated) > 0.2

    def test_empty_dataset(self):
        empty = TrajectoryDataset()
        assert trip_error(empty, empty) == 0.0


class TestPatterns:
    def test_cell_sequence_collapses_duplicates(self):
        t = traj("a", [(0, 0), (10, 10), (600, 0), (610, 10)])
        assert len(cell_sequence(t, 500.0)) == 2

    def test_mine_patterns_counts_support(self):
        ds = TrajectoryDataset(
            [
                traj("a", [(0, 0), (600, 0), (1200, 0)]),
                traj("b", [(0, 0), (600, 0), (1200, 0)]),
                traj("c", [(0, 0), (600, 600)]),
            ]
        )
        support = mine_patterns(ds, cell_size=500.0)
        key = ((0, 0), (1, 0))
        assert support[key] == 2

    def test_top_patterns_deterministic(self, dataset):
        assert top_patterns(dataset, n=10) == top_patterns(dataset, n=10)

    def test_top_patterns_bounded(self, dataset):
        assert len(top_patterns(dataset, n=3)) <= 3


class TestFrequentPatternF1:
    def test_identity_is_one(self, dataset):
        assert frequent_pattern_f1(dataset, dataset) == pytest.approx(1.0)

    def test_disjoint_is_zero(self, dataset):
        moved = TrajectoryDataset(
            Trajectory(t.object_id, [Point(p.x + 1e6, p.y + 1e6, p.t) for p in t])
            for t in dataset
        )
        assert frequent_pattern_f1(dataset, moved) == pytest.approx(0.0)

    def test_empty_both_sides(self):
        a = TrajectoryDataset([traj("a", [(0, 0)])])  # too short for patterns
        assert frequent_pattern_f1(a, a) == 1.0
