"""Tests for the versioned benchmark record (repro.bench.record)."""

import json

import pytest

from repro.bench import RECORD_VERSION, BenchRecord, BenchScale, RecordError

PAPER_SCALE = BenchScale(
    n_objects=500, points_per_trajectory=300, signature_size=10,
    paper_scale=True,
)

LEGACY_SNAPSHOT = {
    "bench": "engine",
    "python": "3.11.7",
    "scale": {
        "n_objects": 500,
        "points_per_trajectory": 300,
        "signature_size": 10,
        "paper_scale": True,
    },
    "inter_modification": {
        "restart_s": 18.17,
        "incremental_s": 17.29,
        "wave_s": 12.03,
    },
    "stream_publisher": {
        "chunks": 4,
        "per_chunk_s": 11.02,
        "shared_tf_s": 13.31,
    },
    "speedups": {"wave_over_incremental": 1.43},
}


def _record(**overrides):
    payload = {
        "bench": "engine",
        "scale": PAPER_SCALE,
        "python": "3.11.7",
        "metrics": {"group": {"run_s": 1.5, "other_s": 2.5}},
        "speedups": {"ratio": 1.2},
        "provenance": {"source": "test"},
    }
    payload.update(overrides)
    return BenchRecord(**payload)


class TestScale:
    def test_key_partitions_by_family_and_size(self):
        assert PAPER_SCALE.key == "paper-500x300-m10"
        smoke = BenchScale(
            n_objects=60, points_per_trajectory=120, signature_size=5
        )
        assert smoke.key == "smoke-60x120-m5"
        assert smoke.family == "smoke"

    def test_same_size_different_family_never_collides(self):
        a = BenchScale(500, 300, 10, paper_scale=True)
        b = BenchScale(500, 300, 10, paper_scale=False)
        assert a.key != b.key

    @pytest.mark.parametrize(
        "field, value",
        (
            ("n_objects", 0),
            ("n_objects", -5),
            ("n_objects", 1.5),
            ("points_per_trajectory", None),
            ("signature_size", "10"),
            ("paper_scale", "yes"),
        ),
    )
    def test_schema_validation(self, field, value):
        payload = PAPER_SCALE.to_dict()
        payload[field] = value
        with pytest.raises(RecordError):
            BenchScale.from_dict(payload)


class TestRecordValidation:
    def test_rejects_unknown_version(self):
        payload = _record().to_dict()
        payload["version"] = RECORD_VERSION + 1
        with pytest.raises(RecordError, match="unsupported record version"):
            BenchRecord.from_dict(payload)

    def test_rejects_empty_bench_name(self):
        with pytest.raises(RecordError, match="bench name"):
            _record(bench="")

    def test_rejects_non_numeric_metric(self):
        with pytest.raises(RecordError, match="must be a number"):
            _record(metrics={"group": {"run_s": "fast"}})

    def test_rejects_boolean_metric(self):
        with pytest.raises(RecordError, match="must be a number"):
            _record(metrics={"group": {"run_s": True}})

    def test_rejects_negative_metric(self):
        with pytest.raises(RecordError, match="non-negative"):
            _record(metrics={"group": {"run_s": -1.0}})

    def test_rejects_empty_metrics(self):
        with pytest.raises(RecordError, match="non-empty"):
            _record(metrics={})

    def test_rejects_non_string_provenance(self):
        with pytest.raises(RecordError, match="provenance"):
            _record(provenance={"created": 12345})


class TestTrackedKeys:
    def test_seconds_and_speedups_tracked_counters_not(self):
        record = BenchRecord.from_snapshot(LEGACY_SNAPSHOT)
        keys = record.tracked_keys()
        assert "inter_modification.wave_s" in keys
        assert "speedups.wave_over_incremental" in keys
        assert "stream_publisher.chunks" not in keys

    def test_value_lookup(self):
        record = BenchRecord.from_snapshot(LEGACY_SNAPSHOT)
        assert record.value("inter_modification.wave_s") == 12.03
        assert record.value("speedups.wave_over_incremental") == 1.43
        assert record.value("nope.missing") is None
        assert record.value("nodot") is None


class TestRoundTrip:
    def test_jsonl_round_trip_is_byte_equal(self):
        """record → JSONL line → load → JSONL line, byte-identical."""
        record = _record()
        line = record.to_jsonl()
        reloaded = BenchRecord.from_jsonl(line)
        assert reloaded.to_jsonl() == line
        assert reloaded.to_jsonl().encode() == line.encode()

    def test_legacy_import_round_trips_byte_equal(self):
        """snapshot → record → JSONL → load → snapshot, both shapes."""
        record = BenchRecord.from_snapshot(
            LEGACY_SNAPSHOT, provenance={"source": "import"}
        )
        line = record.to_jsonl()
        reloaded = BenchRecord.from_jsonl(line)
        assert reloaded.to_jsonl() == line
        # And the legacy shape survives the trip exactly.
        assert json.dumps(
            reloaded.to_snapshot_dict(), sort_keys=True
        ) == json.dumps(LEGACY_SNAPSHOT, sort_keys=True)

    def test_from_dict_equals_original(self):
        record = _record()
        assert BenchRecord.from_dict(record.to_dict()) == record

    def test_invalid_jsonl_raises_record_error(self):
        with pytest.raises(RecordError, match="invalid JSON"):
            BenchRecord.from_jsonl("{not json")


class TestLegacySnapshot:
    def test_import_carries_provenance(self):
        record = BenchRecord.from_snapshot(
            LEGACY_SNAPSHOT, provenance={"source": "legacy-import"}
        )
        assert record.provenance == {"source": "legacy-import"}
        assert record.bench == "engine"
        assert record.scale == PAPER_SCALE

    def test_snapshot_without_metric_groups_rejected(self):
        with pytest.raises(RecordError, match="no metric groups"):
            BenchRecord.from_snapshot(
                {
                    "bench": "engine",
                    "python": "3",
                    "scale": PAPER_SCALE.to_dict(),
                    "speedups": {},
                }
            )

    def test_committed_snapshot_imports(self):
        """The real committed BENCH_engine.json must parse."""
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
        record = BenchRecord.from_snapshot(json.loads(path.read_text()))
        assert record.scale.paper_scale
        assert record.tracked_keys()
