"""Worker-pool plumbing shared by the batch engine and the experiment
drivers.

One entry point, :func:`parallel_map`, with three executors:

* ``"serial"`` — plain in-process map (also used whenever ``workers <= 1``
  or there is at most one item);
* ``"thread"`` — ``ThreadPoolExecutor``; no speedup for pure-Python CPU
  work but useful for determinism testing and IO-bound stages;
* ``"process"`` — ``ProcessPoolExecutor``; true parallelism, requires
  picklable functions and payloads (module-level workers + plain data).

Results always come back in input order, so a parallel run is a drop-in
replacement for the serial loop. If the process pool cannot be created
(sandboxes without fork, exhausted resources), the call degrades to the
serial path rather than failing the run.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

EXECUTOR_KINDS = ("serial", "thread", "process")

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count request; ``None``/0 means "use all cores"."""
    if workers is None or workers == 0:
        import os

        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    return workers


def _make_executor(kind: str, workers: int) -> Executor | None:
    """Build the requested executor, or None when pools are unavailable."""
    cls = ThreadPoolExecutor if kind == "thread" else ProcessPoolExecutor
    try:
        return cls(max_workers=workers)
    except (OSError, PermissionError, RuntimeError):
        # No fork / threads in this environment; the serial path is
        # always equivalent, only slower.
        return None


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int = 1,
    executor: str = "process",
) -> list[R]:
    """``[fn(item) for item in items]``, possibly across a worker pool.

    Exceptions raised by ``fn`` propagate regardless of executor.
    """
    if executor not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {EXECUTOR_KINDS}"
        )
    batch: Sequence[T] = list(items)
    workers = resolve_workers(workers)
    if workers <= 1 or len(batch) <= 1 or executor == "serial":
        return [fn(item) for item in batch]
    pool = _make_executor(executor, min(workers, len(batch)))
    if pool is None:
        return [fn(item) for item in batch]
    with pool:
        return list(pool.map(fn, batch))


def parallel_map_stream(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int = 1,
    executor: str = "process",
    prefetch: int = 2,
    window: int | None = None,
) -> Iterator[R]:
    """Lazy :func:`parallel_map`: results stream back in input order.

    At most ``window`` items are in flight (submitted but not yet
    yielded) — ``workers * prefetch`` unless ``window`` overrides it —
    and the input iterable is pulled only as slots free up, so a lazy
    or unbounded input stream is consumed with bounded memory, unlike
    :func:`parallel_map` which materialises its input first. The
    explicit ``window`` is for callers whose in-flight bound is a
    memory budget in its own right (the publisher's spill window)
    rather than a pool-utilisation heuristic. The serial path
    (``workers <= 1``, ``"serial"``, or an environment without pools)
    degenerates to a plain lazy ``map``.
    """
    if executor not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {EXECUTOR_KINDS}"
        )
    if prefetch < 1:
        raise ValueError(f"prefetch must be at least 1, got {prefetch}")
    if window is not None and window < 1:
        raise ValueError(f"window must be at least 1, got {window}")
    workers = resolve_workers(workers)
    iterator = iter(items)
    pool = (
        None
        if workers <= 1 or executor == "serial"
        else _make_executor(executor, workers)
    )
    if pool is None:
        for item in iterator:
            yield fn(item)
        return
    if window is None:
        window = workers * prefetch
    pending: deque = deque()
    try:
        for item in iterator:
            pending.append(pool.submit(fn, item))
            if len(pending) >= window:
                yield pending.popleft().result()
        while pending:
            yield pending.popleft().result()
    finally:
        # The consumer may abandon the generator (or a job may raise)
        # with a full window still queued; cancel it instead of letting
        # shutdown block until work nobody will read finishes.
        pool.shutdown(wait=True, cancel_futures=True)
