"""Tests for the batch anonymization engine (repro.engine).

The load-bearing guarantee: for the same seed, the sharded/parallel
paths are *byte-identical* to the serial pipeline — sharding must never
change the published data.
"""

import pytest

from repro.core.pipeline import GL, PureL
from repro.datagen.generator import FleetConfig, generate_fleet
from repro.engine import (
    BatchAnonymizer,
    parallel_map,
    parallel_map_stream,
    resolve_workers,
)
from repro.engine.batch import _chunks


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(
        FleetConfig(n_objects=14, points_per_trajectory=70, rows=10, cols=10, seed=3)
    )


def coords_of(dataset):
    return [[p.coord for p in trajectory] for trajectory in dataset]


class TestParallelMap:
    def test_serial_fallback_preserves_order(self):
        assert parallel_map(lambda x: x * 2, range(5), workers=1) == [0, 2, 4, 6, 8]

    def test_thread_pool_preserves_order(self):
        got = parallel_map(lambda x: x * x, range(20), workers=4, executor="thread")
        assert got == [x * x for x in range(20)]

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            parallel_map(lambda x: x, [1, 2], workers=2, executor="gpu")

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_zero_workers_means_all_cores(self):
        assert resolve_workers(0) >= 1
        assert resolve_workers(None) >= 1

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("job failed")

        with pytest.raises(RuntimeError):
            parallel_map(boom, [1, 2, 3], workers=2, executor="thread")


class TestParallelMapStream:
    def test_preserves_order(self):
        got = list(
            parallel_map_stream(
                lambda x: x * x, range(20), workers=4, executor="thread"
            )
        )
        assert got == [x * x for x in range(20)]

    def test_serial_path_is_lazy(self):
        pulled = []

        def source():
            for i in range(10):
                pulled.append(i)
                yield i

        stream = parallel_map_stream(lambda x: x, source(), workers=1)
        assert next(stream) == 0
        assert pulled == [0]

    def test_pool_path_bounds_in_flight_window(self):
        pulled = []

        def source():
            for i in range(50):
                pulled.append(i)
                yield i

        stream = parallel_map_stream(
            lambda x: x, source(), workers=2, executor="thread", prefetch=2
        )
        assert next(stream) == 0
        # window = workers * prefetch = 4 items in flight, +1 for the
        # element pulled after the first yield resumed the loop.
        assert len(pulled) <= 5

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            list(parallel_map_stream(lambda x: x, [1], executor="gpu"))
        with pytest.raises(ValueError):
            list(parallel_map_stream(lambda x: x, [1], prefetch=0))

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("job failed")

        with pytest.raises(RuntimeError):
            list(parallel_map_stream(boom, [1, 2], workers=2, executor="thread"))


class TestChunks:
    def test_partition_covers_all_in_order(self):
        items = list(range(11))
        chunks = _chunks(items, 3)
        assert [x for chunk in chunks for x in chunk] == items
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1

    def test_more_chunks_than_items(self):
        chunks = _chunks([1, 2], 5)
        assert chunks == [[1], [2]]


class TestBatchAnonymizer:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_byte_identical_to_serial(self, fleet, executor):
        serial = GL(epsilon=1.0, signature_size=3, seed=21).anonymize(fleet.dataset)
        anonymizer = GL(epsilon=1.0, signature_size=3, seed=21)
        engine = BatchAnonymizer(anonymizer, workers=3, executor=executor)
        batched = engine.anonymize(fleet.dataset)
        assert coords_of(batched) == coords_of(serial)
        # Timestamps too: truly byte-identical trajectories.
        for a, b in zip(serial, batched, strict=True):
            assert [p.t for p in a] == [p.t for p in b]

    def test_report_identical_to_serial(self, fleet):
        reference = GL(epsilon=1.0, signature_size=3, seed=22)
        _, expected = reference.anonymize_with_report(fleet.dataset)
        anonymizer = GL(epsilon=1.0, signature_size=3, seed=22)
        engine = BatchAnonymizer(anonymizer, workers=4, executor="thread")
        _, report = engine.anonymize_with_report(fleet.dataset)
        assert report is not None
        assert report.to_dict() == expected.to_dict()

    def test_workers_one_matches_serial(self, fleet):
        serial = PureL(epsilon=0.5, signature_size=3, seed=23).anonymize(fleet.dataset)
        engine = BatchAnonymizer(
            PureL(epsilon=0.5, signature_size=3, seed=23), workers=1
        )
        assert coords_of(engine.anonymize(fleet.dataset)) == coords_of(serial)

    def test_shard_count_independent(self, fleet):
        """Output must not depend on how the dataset is sliced."""
        results = []
        for shards_per_worker in (1, 2, 7):
            engine = BatchAnonymizer(
                PureL(epsilon=0.5, signature_size=3, seed=24),
                workers=2,
                executor="thread",
                shards_per_worker=shards_per_worker,
            )
            results.append(coords_of(engine.anonymize(fleet.dataset)))
        assert results[0] == results[1] == results[2]

    def test_anonymize_many_matches_sequential_calls(self, fleet):
        sequential = GL(epsilon=1.0, signature_size=3, seed=25)
        expected = [
            coords_of(sequential.anonymize(fleet.dataset)) for _ in range(3)
        ]
        # Per-call streams: successive calls must differ.
        assert expected[0] != expected[1]
        engine = BatchAnonymizer(
            GL(epsilon=1.0, signature_size=3, seed=25), workers=2, executor="thread"
        )
        outcomes = engine.anonymize_many([fleet.dataset] * 3)
        assert [coords_of(result) for result, _ in outcomes] == expected
        for _, report in outcomes:
            assert report is not None
            assert report.epsilon_total == pytest.approx(1.0)

    def test_anonymize_many_updates_last_report(self, fleet):
        """Regression: the sweep ran on worker-side instances and left
        the wrapped anonymizer's last_report stale."""
        engine = BatchAnonymizer(
            GL(epsilon=1.0, signature_size=3, seed=28), workers=2, executor="thread"
        )
        outcomes = engine.anonymize_many([fleet.dataset] * 2)
        with pytest.warns(DeprecationWarning, match="last_report"):
            refreshed = engine.last_report
        assert refreshed is not None
        assert refreshed.to_dict() == outcomes[-1][1].to_dict()

    def test_anonymize_many_advances_call_counter(self, fleet):
        """A sweep then a direct call must keep drawing fresh streams."""
        engine = BatchAnonymizer(
            GL(epsilon=1.0, signature_size=3, seed=26), workers=2, executor="serial"
        )
        swept = [coords_of(r) for r, _ in engine.anonymize_many([fleet.dataset] * 2)]
        after = coords_of(engine.anonymize(fleet.dataset))
        assert after not in swept

    def test_rejects_bad_configuration(self, fleet):
        with pytest.raises(ValueError):
            BatchAnonymizer(GL(epsilon=1.0, seed=0), executor="gpu")
        with pytest.raises(ValueError):
            BatchAnonymizer(GL(epsilon=1.0, seed=0), shards_per_worker=0)

    def test_no_runner_state_left_on_wrapped_anonymizer(self, fleet):
        """The sharding hook travels as a per-call argument, never as
        instance state (the old _local_runner mutation is gone)."""
        anonymizer = PureL(epsilon=0.5, signature_size=3, seed=27)
        engine = BatchAnonymizer(anonymizer, workers=2, executor="thread")
        engine.anonymize(fleet.dataset)
        assert not hasattr(anonymizer, "_local_runner")

    def test_config_roundtrip(self):
        from repro.core.pipeline import FrequencyAnonymizer

        original = GL(epsilon=2.0, signature_size=4, levels=8, seed=5)
        rebuilt = FrequencyAnonymizer(**original.config())
        assert rebuilt.epsilon == pytest.approx(original.epsilon)
        assert rebuilt.config() == original.config()


class TestGlobalPoolLifecycle:
    """The wave-planning thread pool is created lazily once, reused
    across calls and stream chunks, and torn down deterministically."""

    def _engine(self):
        return BatchAnonymizer(
            GL(epsilon=1.0, signature_size=3, seed=31),
            workers=1,
            global_workers=2,
        )

    def test_pool_not_recreated_per_call_or_chunk(self, fleet, monkeypatch):
        import repro.engine.batch as batch_module

        created = []
        real = batch_module._make_executor

        def counting(kind, workers):
            created.append(kind)
            return real(kind, workers)

        monkeypatch.setattr(batch_module, "_make_executor", counting)
        engine = self._engine()
        assert engine._global_pool is None  # lazy: nothing until first use
        with engine:
            engine.anonymize_with_report(fleet.dataset)
            engine.anonymize_with_report(fleet.dataset)
            list(engine.anonymize_stream([fleet.dataset] * 3))
        assert created.count("thread") == 1

    def test_pool_instance_is_shared(self, fleet):
        engine = self._engine()
        engine.anonymize_with_report(fleet.dataset)
        pool = engine._global_pool
        assert pool is not None
        engine.anonymize_with_report(fleet.dataset)
        assert engine._global_pool is pool
        engine.close()

    def test_close_is_idempotent_and_terminal(self, fleet):
        engine = self._engine()
        engine.anonymize_with_report(fleet.dataset)
        engine.close()
        assert engine._global_pool is None
        engine.close()  # idempotent
        # Terminal: a closed engine refuses every entry point rather
        # than silently reviving its pool (long-lived holders like the
        # serving daemon depend on close meaning closed).
        with pytest.raises(RuntimeError, match="closed"):
            engine.anonymize_with_report(fleet.dataset)
        with pytest.raises(RuntimeError, match="closed"):
            engine.anonymize(fleet.dataset)
        with pytest.raises(RuntimeError, match="closed"):
            engine.anonymize_stream([fleet.dataset])  # eager, no next()
        assert engine._global_pool is None

    def test_context_manager_reentry_rejected_after_close(self, fleet):
        engine = self._engine()
        with engine:
            engine.anonymize_with_report(fleet.dataset)
        with pytest.raises(RuntimeError, match="closed"):
            with engine:
                pass  # pragma: no cover — __enter__ must refuse

    def test_no_pool_when_global_workers_is_one(self, fleet):
        engine = BatchAnonymizer(
            GL(epsilon=1.0, signature_size=3, seed=31), workers=1
        )
        engine.anonymize_with_report(fleet.dataset)
        assert engine._global_pool is None

    def test_pooled_output_identical_to_serial(self, fleet):
        serial = GL(epsilon=1.0, signature_size=3, seed=31).anonymize(
            fleet.dataset
        )
        with self._engine() as engine:
            pooled = engine.anonymize(fleet.dataset)
        assert coords_of(pooled) == coords_of(serial)
