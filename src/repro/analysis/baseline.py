"""Grandfathered-findings baseline: the analyzer's ratchet file.

A baseline entry says "this finding is known and accepted, with this
justification". Entries match on ``(code, path, snippet)`` — *not* on
line numbers — so edits elsewhere in a file never un-grandfather a
finding; ``count`` allows the same snippet to appear that many times.
Entries that no longer match anything are *stale* and reported as
warnings (the ratchet should only ever shrink), without affecting the
exit code.

The committed file is ``tools/analysis_baseline.json``::

    {
      "version": 1,
      "entries": [
        {
          "code": "DET001",
          "path": "src/repro/core/pipeline.py",
          "snippet": "return random.getrandbits(64)",
          "reason": "why this is acceptable",
          "count": 1
        }
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding

FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    code: str
    path: str
    snippet: str
    reason: str = ""
    count: int = 1

    def key(self) -> tuple[str, str, str]:
        return (self.code, self.path, self.snippet)

    def to_dict(self) -> dict:
        payload = {
            "code": self.code,
            "path": self.path,
            "snippet": self.snippet,
            "reason": self.reason,
        }
        if self.count != 1:
            payload["count"] = self.count
        return payload


@dataclass
class Baseline:
    """The set of grandfathered findings."""

    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        payload = json.loads(Path(path).read_text())
        version = payload.get("version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {version!r} "
                f"(expected {FORMAT_VERSION})"
            )
        entries = []
        for raw in payload.get("entries", []):
            entries.append(
                BaselineEntry(
                    code=raw["code"],
                    path=raw["path"],
                    snippet=raw["snippet"],
                    reason=raw.get("reason", ""),
                    count=int(raw.get("count", 1)),
                )
            )
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": FORMAT_VERSION,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    @classmethod
    def from_findings(
        cls, findings: list[Finding], reason: str = "grandfathered"
    ) -> "Baseline":
        """A baseline accepting exactly ``findings`` (counts merged)."""
        counts: dict[tuple[str, str, str], int] = {}
        for finding in findings:
            key = (finding.code, finding.path, finding.snippet)
            counts[key] = counts.get(key, 0) + 1
        entries = [
            BaselineEntry(
                code=code, path=path, snippet=snippet, reason=reason, count=count
            )
            for (code, path, snippet), count in sorted(counts.items())
        ]
        return cls(entries=entries)

    def apply(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Split ``findings`` into ``(active, baselined, stale_entries)``.

        Each entry absorbs up to ``count`` matching findings; capacity
        left over marks the entry stale (the violation it grandfathers
        is gone — delete it).
        """
        budget: dict[tuple[str, str, str], int] = {}
        for entry in self.entries:
            budget[entry.key()] = budget.get(entry.key(), 0) + entry.count
        active: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            key = (finding.code, finding.path, finding.snippet)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined.append(finding)
            else:
                active.append(finding)
        stale = [entry for entry in self.entries if budget.get(entry.key(), 0) > 0]
        return active, baselined, stale
