"""Terminal line charts for the figure harnesses.

A dependency-free ASCII renderer good enough to eyeball the shapes the
paper's figures show (who is above whom, where curves cross). Used by
``python -m repro.experiments.fig4`` / ``fig5``.
"""

from __future__ import annotations

import math

#: Glyph per series, cycled.
MARKERS = "ox+*#@"


def render_chart(
    series: dict[str, list[float | None]],
    x_values: list[float],
    title: str = "",
    width: int = 60,
    height: int = 14,
    log_y: bool = False,
) -> str:
    """Render named series over shared x positions as an ASCII chart.

    ``None`` values are skipped. ``log_y`` plots the y axis in log10
    (values must then be positive); x positions are mapped by rank, not
    value, which suits the sparse sweeps the figures use.
    """
    if width < 10 or height < 4:
        raise ValueError("chart too small to render")
    points: list[tuple[int, float, str]] = []
    for index, (_name, values) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        for xi, value in enumerate(values):
            if value is None:
                continue
            y = float(value)
            if log_y:
                if y <= 0:
                    continue
                y = math.log10(y)
            points.append((xi, y, marker))
    if not points:
        return f"{title}\n(no data)"

    ys = [y for _, y, _ in points]
    y_min, y_max = min(ys), max(ys)
    if y_max == y_min:
        y_max = y_min + 1.0
    n_x = max(len(x_values), 2)

    grid = [[" "] * width for _ in range(height)]
    for xi, y, marker in points:
        col = round(xi / (n_x - 1) * (width - 1))
        row = round((y_max - y) / (y_max - y_min) * (height - 1))
        grid[row][col] = marker

    def y_label(row: int) -> float:
        value = y_max - row / (height - 1) * (y_max - y_min)
        return 10**value if log_y else value

    lines = []
    if title:
        lines.append(title)
    for row in range(height):
        label = f"{y_label(row):10.3g} |" if row % 4 == 0 or row == height - 1 else "           |"
        lines.append(label + "".join(grid[row]))
    axis = "           +" + "-" * width
    lines.append(axis)
    labels = "            "
    slots = max(len(x_values), 1)
    per = max(width // slots, 1)
    for x in x_values:
        labels += f"{x:<{per}g}"
    lines.append(labels[: 12 + width])
    legend = "  legend: " + "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)
