"""Tests for the unified static gate (tools/check_static.py)."""

import importlib.util
import json
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def check_static():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    spec = importlib.util.spec_from_file_location(
        "check_static", REPO_ROOT / "tools" / "check_static.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_static"] = module
    spec.loader.exec_module(module)
    return module


class TestRepoIsClean:
    def test_full_gate_passes(self, check_static, capsys):
        assert check_static.main([]) == 0
        out = capsys.readouterr().out
        assert "static gate clean" in out
        for section in ("analysis", "api", "docs", "bench"):
            assert f"[   ok] {section}:" in out

    def test_json_mode_schema(self, check_static, capsys):
        assert check_static.main(["--json", "analysis"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["clean"] is True
        (section,) = payload["sections"]
        assert set(section) == {
            "name", "clean", "problems", "warnings", "summary", "error",
        }
        assert section["name"] == "analysis"

    def test_unknown_section_rejected(self, check_static):
        with pytest.raises(SystemExit) as excinfo:
            check_static.main(["frobnicate"])
        assert excinfo.value.code == 2


class TestInjectedViolation:
    """The acceptance gate: each seeded violation must fail CI with
    exit 1 (and a broken checker must exit 2, not pass silently)."""

    def inject(self, check_static, monkeypatch, tmp_path, source):
        tree = tmp_path / "repro_fixture"
        tree.mkdir()
        (tree / "leaky.py").write_text(textwrap.dedent(source))
        monkeypatch.setattr(check_static, "ANALYSIS_ROOTS", (tree,))
        monkeypatch.setattr(check_static, "BASELINE", tmp_path / "missing.json")

    def assert_fails_with(self, check_static, capsys, code):
        assert check_static.main(["analysis"]) == 1
        out = capsys.readouterr().out
        assert code in out
        assert "[ FAIL] analysis:" in out
        assert "static gate failed: analysis" in out

    def test_unledgered_draw_fails_gate(
        self, check_static, monkeypatch, tmp_path, capsys
    ):
        self.inject(
            check_static, monkeypatch, tmp_path,
            """
            class LeakyStage:
                def apply(self, count, rng):
                    return self.mechanism.perturb_count(count, rng)
            """,
        )
        self.assert_fails_with(check_static, capsys, "DP001")

    def test_dropped_epsilon_share_fails_gate(
        self, check_static, monkeypatch, tmp_path, capsys
    ):
        self.inject(
            check_static, monkeypatch, tmp_path,
            """
            def allocate(epsilon, mechanism):
                eps_general = epsilon * 0.5
                eps_tail = epsilon * 0.5
                return mechanism.run(eps_tail)
            """,
        )
        self.assert_fails_with(check_static, capsys, "EPS002")

    def test_unclosed_store_on_exception_path_fails_gate(
        self, check_static, monkeypatch, tmp_path, capsys
    ):
        self.inject(
            check_static, monkeypatch, tmp_path,
            """
            class SpillStore:
                def append(self, row):
                    pass

                def close(self):
                    pass


            def spill_all(rows):
                store = SpillStore()
                for row in rows:
                    store.append(row)
                store.close()
                return len(rows)
            """,
        )
        self.assert_fails_with(check_static, capsys, "LIFE001")

    def test_unreleased_reservation_fails_gate(
        self, check_static, monkeypatch, tmp_path, capsys
    ):
        self.inject(
            check_static, monkeypatch, tmp_path,
            """
            def spend(store, tenant, job, eps, work):
                rid = store.reserve(tenant, job, eps)
                work(rid)
                store.commit(tenant, rid)
            """,
        )
        self.assert_fails_with(check_static, capsys, "LEDGER001")

    def test_inverted_lock_pair_fails_gate(
        self, check_static, monkeypatch, tmp_path, capsys
    ):
        self.inject(
            check_static, monkeypatch, tmp_path,
            """
            class Engine:
                def flush(self):
                    with self.store_lock:
                        with self.job_lock:
                            pass

                def cancel(self):
                    with self.job_lock:
                        with self.store_lock:
                            pass
            """,
        )
        self.assert_fails_with(check_static, capsys, "RACE002")

    def test_checker_crash_exits_two(
        self, check_static, monkeypatch, tmp_path, capsys
    ):
        self.inject(check_static, monkeypatch, tmp_path, "def broken(:\n")
        assert check_static.main(["analysis"]) == 2
        out = capsys.readouterr().out
        assert "[ERROR] analysis:" in out
        assert "internal error" in out


class TestBenchSection:
    """The bench gate rides inside the unified static gate."""

    def _check_bench(self, check_static):
        import sys

        return sys.modules["check_bench"]

    def test_bench_section_passes_on_committed_history(
        self, check_static, capsys
    ):
        assert check_static.main(["bench"]) == 0
        out = capsys.readouterr().out
        assert "[   ok] bench:" in out
        assert "bench/scale partition(s)" in out

    def test_missing_history_fails_with_import_hint(
        self, check_static, monkeypatch, tmp_path, capsys
    ):
        check_static.main(["bench"])  # ensure check_bench is imported
        capsys.readouterr()
        monkeypatch.setattr(
            self._check_bench(check_static),
            "DEFAULT_HISTORY",
            tmp_path / "absent.jsonl",
        )
        assert check_static.main(["bench"]) == 1
        out = capsys.readouterr().out
        assert "repro bench record --snapshot BENCH_engine.json" in out
        assert "static gate failed: bench" in out

    def test_corrupt_history_is_a_section_error(
        self, check_static, monkeypatch, tmp_path, capsys
    ):
        check_static.main(["bench"])
        capsys.readouterr()
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text("{broken\n")
        monkeypatch.setattr(
            self._check_bench(check_static), "DEFAULT_HISTORY", corrupt
        )
        assert check_static.main(["bench"]) == 2
        out = capsys.readouterr().out
        assert "[ERROR] bench:" in out
