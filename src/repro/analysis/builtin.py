"""The built-in AST rules: DP001, DET001, DET002, EPS001.

RACE001 needs cross-module call-graph machinery and lives in
:mod:`repro.analysis.callgraph`. Everything here is a single-module
syntactic check over the shared :class:`~repro.analysis.visitor.ModuleInfo`
facts.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .findings import Finding
from .rules import Rule, rule
from .visitor import ModuleInfo, Project

# ---------------------------------------------------------------------------
# DP001 — unledgered noise
# ---------------------------------------------------------------------------

#: Modules allowed to draw noise without their own ledger calls — they
#: are the sanctioned mechanism primitives; accounting happens one
#: level up, at their call sites.
SANCTIONED_MODULES = frozenset(
    {
        "repro.core.laplace",
        "repro.core.global_mechanism",
        "repro.core.local_mechanism",
    }
)

#: Attribute-call names that draw noise. ``perturb_trajectory`` is
#: deliberately absent: it is the *recorded* high-level entry point the
#: engine layer calls, not a raw draw.
_DRAW_ATTRS = frozenset({"laplace", "exponential", "perturb", "perturb_count"})

#: Fully-qualified callables that draw noise.
_DRAW_QUALIFIED = frozenset(
    {
        "repro.core.laplace.laplace_noise",
        "repro.core.laplace.LaplaceMechanism",
    }
)

#: A scope containing any of these attribute calls is considered to
#: thread its draws through the composition ledger / accountant.
_LEDGER_ATTRS = frozenset({"record", "record_parallel", "spend"})


class _DrawCollector(ast.NodeVisitor):
    """Collect noise-draw call sites, grouped by innermost ClassDef
    (or the module for top-level code), and whether each scope also
    contains a ledger call."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self._class_stack: list[ast.ClassDef] = []
        #: scope key (ClassDef node or None for module level)
        self.draws: dict[ast.ClassDef | None, list[ast.Call]] = {}
        self.ledgered: set[ast.ClassDef | None] = set()

    def _scope(self) -> ast.ClassDef | None:
        return self._class_stack[-1] if self._class_stack else None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        scope = self._scope()
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _LEDGER_ATTRS:
                self.ledgered.add(scope)
            if func.attr in _DRAW_ATTRS:
                self.draws.setdefault(scope, []).append(node)
        qualified = self.module.qualified(func)
        if qualified in _DRAW_QUALIFIED:
            self.draws.setdefault(scope, []).append(node)
        self.generic_visit(node)


@rule
class UnledgeredNoise(Rule):
    code = "DP001"
    name = "unledgered noise"
    summary = (
        "noise is drawn outside the sanctioned mechanism modules by a "
        "scope that never records to the composition ledger"
    )
    rationale = (
        "Every Laplace draw consumes privacy budget; a draw that is not "
        "recorded via CompositionLedger.record/record_parallel or "
        "PrivacyAccountant.spend silently under-reports the true epsilon "
        "of a published dataset."
    )
    example = "noisy = mechanism.perturb_count(count, rng)  # no ledger in scope"

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if module.name in SANCTIONED_MODULES:
                continue
            collector = _DrawCollector(module)
            collector.visit(module.tree)
            for scope, calls in collector.draws.items():
                if scope in collector.ledgered:
                    continue
                where = f"class {scope.name}" if scope is not None else "module scope"
                for call in calls:
                    yield self.finding(
                        module,
                        call,
                        f"noise draw in {where} without a ledger "
                        f"record/record_parallel/spend call; thread a "
                        f"CompositionLedger or move the draw into a "
                        f"sanctioned mechanism module",
                    )


# ---------------------------------------------------------------------------
# DET001 — bare RNG
# ---------------------------------------------------------------------------

#: Explicit-state constructors in numpy.random that are fine to call.
_NUMPY_SEEDED = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937"}
)

#: stdlib ``random`` attributes that create explicit-state instances.
_STDLIB_SEEDED = frozenset({"Random", "SystemRandom"})


@rule
class BareRng(Rule):
    code = "DET001"
    name = "bare RNG"
    summary = (
        "global-state RNG call (stdlib random.* module function or "
        "np.random.* legacy API) instead of a threaded seeded generator"
    )
    rationale = (
        "All randomness must flow from derive_seed/local_stream_seed "
        "through explicit random.Random / numpy Generator instances; a "
        "global-state call breaks byte-identity between runs and between "
        "the serial and wave-parallel engines."
    )
    example = "value = random.random()  # use rng.random() with a seeded rng"

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                qualified = module.qualified(node.func)
                if qualified is None:
                    continue
                finding = self._classify(module, node, qualified)
                if finding is not None:
                    yield finding

    def _classify(
        self, module: ModuleInfo, node: ast.Call, qualified: str
    ) -> Finding | None:
        if qualified.startswith("random."):
            attr = qualified.split(".", 1)[1]
            if "." not in attr and attr not in _STDLIB_SEEDED:
                return self.finding(
                    module,
                    node,
                    f"global-state stdlib RNG call random.{attr}(); "
                    f"use an explicit random.Random(seed) instance",
                )
        if qualified.startswith("numpy.random."):
            attr = qualified.split("numpy.random.", 1)[1]
            if "." not in attr and attr not in _NUMPY_SEEDED:
                return self.finding(
                    module,
                    node,
                    f"legacy global-state numpy RNG call "
                    f"np.random.{attr}(); use numpy.random.default_rng(seed)",
                )
        return None


# ---------------------------------------------------------------------------
# DET002 — nondeterminism sources
# ---------------------------------------------------------------------------

#: Wall-clock reads that leak into output if called on a committed path.
#: ``time.perf_counter``/``time.monotonic`` are allowed: they only feed
#: timing reports, never data, and the reports label them as timings.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@rule
class NondeterminismSource(Rule):
    code = "DET002"
    name = "nondeterminism source"
    summary = (
        "wall-clock read or direct iteration over an unordered set in "
        "code that feeds committed output"
    )
    rationale = (
        "Byte-identical reruns are the repo's determinism contract; "
        "wall-clock values and set iteration order vary between "
        "processes (hash randomization) and so cannot appear on any "
        "path that produces committed output."
    )
    example = "for loc in {a, b, c}:  # iterate sorted(...) instead"

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    qualified = module.qualified(node.func)
                    if qualified in _WALL_CLOCK:
                        yield self.finding(
                            module,
                            node,
                            f"wall-clock read {qualified}(); thread an "
                            f"explicit timestamp parameter instead "
                            f"(perf_counter is allowed for timings)",
                        )
                    continue
                iters: list[ast.expr] = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    if self._is_unordered(module, it):
                        yield self.finding(
                            module,
                            it,
                            "iteration directly over a set has "
                            "nondeterministic order; wrap in sorted(...)",
                        )

    @staticmethod
    def _is_unordered(module: ModuleInfo, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            qualified = module.qualified(node.func)
            return qualified in {"set", "frozenset"}
        return False


# ---------------------------------------------------------------------------
# EPS001 — epsilon None-vs-zero confusion
# ---------------------------------------------------------------------------


def _is_epsilon_name(identifier: str) -> bool:
    lowered = identifier.lower()
    return (
        "epsilon" in lowered
        or lowered == "eps"
        or lowered.startswith("eps_")
        or lowered.endswith("_eps")
    )


def _epsilon_expr(node: ast.expr) -> str | None:
    """The identifier when ``node`` is a bare epsilon-named Name or
    Attribute chain, else None."""
    if isinstance(node, ast.Name) and _is_epsilon_name(node.id):
        return node.id
    if isinstance(node, ast.Attribute) and _is_epsilon_name(node.attr):
        return node.attr
    return None


def _is_zero(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and type(node.value) in (int, float) and node.value == 0


@rule
class EpsilonTruthiness(Rule):
    code = "EPS001"
    name = "epsilon None-vs-zero confusion"
    summary = (
        "epsilon compared with ==/!= 0 or used for truthiness instead "
        "of an `is None` check"
    )
    rationale = (
        "A disabled stage is epsilon=None, not epsilon=0: treating 0.0 "
        "and None alike either spends budget that was never requested "
        "or silently drops a requested mechanism (the PR 5 epsilon-edge "
        "bug)."
    )
    example = "mech = Mechanism(eps) if eps else None  # use `if eps is not None`"

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                yield from self._check_node(module, node)

    def _check_node(self, module: ModuleInfo, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:], strict=False):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for eps_side, other in ((left, right), (right, left)):
                    name = _epsilon_expr(eps_side)
                    if name is not None and _is_zero(other):
                        yield self.finding(
                            module,
                            node,
                            f"epsilon parameter {name!r} compared with "
                            f"==/!= 0; disabled means None — use "
                            f"`is None` / `is not None`",
                        )
            return
        tests: list[ast.expr] = []
        if isinstance(node, (ast.If, ast.While, ast.IfExp)):
            tests.append(node.test)
        elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            tests.append(node.operand)
        elif isinstance(node, ast.BoolOp):
            tests.extend(node.values)
        for test in tests:
            name = _epsilon_expr(test)
            if name is not None:
                yield self.finding(
                    module,
                    test,
                    f"truthiness test on epsilon parameter {name!r} "
                    f"conflates 0.0 with None; use `is not None`",
                )
