"""Tests for the DP composition ledger (repro.core.accounting)."""

import pytest

from repro.core.accounting import (
    CompositionLedger,
    MechanismDraw,
    apportion,
)


class TestMechanismDraw:
    def test_validates_epsilon(self):
        for bad in (0.0, -0.1, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                MechanismDraw(label="x", epsilon=bad)

    def test_validates_names(self):
        with pytest.raises(ValueError):
            MechanismDraw(label="", epsilon=0.5)
        with pytest.raises(ValueError):
            MechanismDraw(label="x", epsilon=0.5, scope=" ")


class TestComposition:
    def test_sequential_draws_add_up(self):
        ledger = CompositionLedger()
        ledger.record("tf", 0.5)
        ledger.record("pf", 0.25)
        assert ledger.epsilon_total == pytest.approx(0.75)

    def test_parallel_group_contributes_its_max(self):
        ledger = CompositionLedger()
        ledger.record_parallel("local", "pf", 0.5, scope="chunk:0")
        ledger.record_parallel("local", "pf", 0.5, scope="chunk:1")
        ledger.record_parallel("local", "pf", 0.3, scope="chunk:2")
        assert ledger.epsilon_total == pytest.approx(0.5)

    def test_mixed_composition(self):
        """ε_G (sequential) + max per-chunk ε_L (parallel) — the
        streaming publisher's exact shape."""
        ledger = CompositionLedger()
        ledger.record("global TF randomization", 0.5)
        for i in range(7):
            ledger.record_parallel(
                "local", "local PF randomization", 0.5, scope=f"chunk:{i}"
            )
        assert ledger.epsilon_total == pytest.approx(1.0)

    def test_parallel_requires_disjoint_scopes(self):
        ledger = CompositionLedger()
        ledger.record_parallel("local", "pf", 0.5, scope="chunk:0")
        with pytest.raises(ValueError, match="disjoint"):
            ledger.record_parallel("local", "pf", 0.5, scope="chunk:0")

    def test_independent_groups_add(self):
        ledger = CompositionLedger()
        ledger.record_parallel("a", "x", 0.2, scope="chunk:0")
        ledger.record_parallel("b", "y", 0.3, scope="chunk:0")
        assert ledger.epsilon_total == pytest.approx(0.5)

    def test_merge_revalidates(self):
        a = CompositionLedger()
        a.record("tf", 0.5)
        a.record_parallel("local", "pf", 0.25, scope="chunk:0")
        b = CompositionLedger()
        b.record_parallel("local", "pf", 0.25, scope="chunk:1")
        a.merge(b)
        assert a.epsilon_total == pytest.approx(0.75)
        clash = CompositionLedger()
        clash.record_parallel("local", "pf", 0.25, scope="chunk:0")
        with pytest.raises(ValueError, match="disjoint"):
            a.merge(clash)


class TestSerialisation:
    def make_ledger(self):
        ledger = CompositionLedger()
        ledger.record("global TF randomization", 0.4)
        ledger.record_parallel("local", "pf", 0.6, scope="chunk:0")
        ledger.record_parallel("local", "pf", 0.6, scope="chunk:1")
        return ledger

    def test_round_trip(self):
        ledger = self.make_ledger()
        rebuilt = CompositionLedger.from_dict(ledger.to_dict())
        assert rebuilt.to_dict() == ledger.to_dict()
        assert rebuilt.epsilon_total == pytest.approx(1.0)

    def test_round_trip_through_json(self):
        import json

        payload = json.loads(json.dumps(self.make_ledger().to_dict()))
        rebuilt = CompositionLedger.from_dict(payload)
        assert rebuilt.epsilon_total == pytest.approx(1.0)

    def test_tampered_total_is_rejected(self):
        payload = self.make_ledger().to_dict()
        payload["epsilon_total"] = 0.123
        with pytest.raises(ValueError, match="compose"):
            CompositionLedger.from_dict(payload)


class TestApportion:
    def test_sums_exactly_and_respects_caps(self):
        shares = apportion(7, [3, 3, 1], [3, 3, 1])
        assert sum(shares) == 7
        assert shares == [3, 3, 1]

    def test_largest_remainder_is_deterministic(self):
        assert apportion(5, [1, 1, 1], [5, 5, 5]) == apportion(
            5, [1, 1, 1], [5, 5, 5]
        )
        assert sum(apportion(5, [1, 1, 1], [5, 5, 5])) == 5

    def test_capped_overflow_redistributes(self):
        shares = apportion(6, [10, 1, 1], [2, 4, 4])
        assert sum(shares) == 6
        assert all(s <= c for s, c in zip(shares, [2, 4, 4], strict=True))

    def test_zero_weights_fill_in_order(self):
        assert apportion(3, [0, 0], [2, 2]) == [2, 1]

    def test_rejects_impossible_totals(self):
        with pytest.raises(ValueError):
            apportion(5, [1, 1], [2, 2])
        with pytest.raises(ValueError):
            apportion(-1, [1], [1])
