"""Every baseline the paper compares against (Table II).

* k-anonymity family: :class:`~repro.baselines.w4m.W4M`,
  :class:`~repro.baselines.glove.Glove`, :class:`~repro.baselines.klt.KLT`;
* signature family: :class:`~repro.baselines.signature_closure.SignatureClosure`
  (SC) and :class:`~repro.baselines.signature_closure.RadiusSignatureClosure`
  (RSC-α);
* generative DP family: :class:`~repro.baselines.dpt.DPT`,
  :class:`~repro.baselines.adatrace.AdaTrace`.

All expose ``anonymize(dataset) -> TrajectoryDataset`` like the
frequency-based models in :mod:`repro.core.pipeline`.
"""

from repro.baselines.signature_closure import RadiusSignatureClosure, SignatureClosure
from repro.baselines.w4m import W4M
from repro.baselines.glove import Glove
from repro.baselines.klt import KLT
from repro.baselines.dpt import DPT
from repro.baselines.adatrace import AdaTrace

__all__ = [
    "AdaTrace",
    "DPT",
    "Glove",
    "KLT",
    "RadiusSignatureClosure",
    "SignatureClosure",
    "W4M",
]
