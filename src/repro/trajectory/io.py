"""Reading and writing trajectory datasets in a T-Drive-style format.

The original T-Drive release ships one text file per taxi with lines
``taxi_id,datetime,longitude,latitude``. We support a planar analogue —
``object_id,t,x,y`` with ``t`` in seconds and ``x``/``y`` in metres — in
both single-file and directory-per-object layouts, plus a converter from
latitude/longitude records using an equirectangular projection (adequate
at city scale).
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Iterable, Iterator

from repro.trajectory.model import Point, Trajectory, TrajectoryDataset

#: Mean Earth radius in metres, used by the lat/lon projection helpers.
EARTH_RADIUS_M = 6_371_000.0


CSV_HEADER = ["object_id", "t", "x", "y"]


def write_csv_rows(writer, trajectories: Iterable[Trajectory]) -> None:
    """Write ``object_id,t,x,y`` data rows (no header) to a csv writer.

    The one definition of the row format; every producer of the native
    planar CSV (``write_csv``, the ingest artifact writer, the
    streaming publisher's chunk sink) goes through it, so byte-level
    output parity between them cannot drift.
    """
    for trajectory in trajectories:
        for point in trajectory:
            writer.writerow(
                [
                    trajectory.object_id,
                    f"{point.t:.3f}",
                    f"{point.x:.3f}",
                    f"{point.y:.3f}",
                ]
            )


def write_csv(dataset: TrajectoryDataset, path: str | Path) -> None:
    """Write the dataset as a single ``object_id,t,x,y`` CSV file."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_HEADER)
        write_csv_rows(writer, dataset)


def stream_csv_rows(
    lines: Iterable[str], source: str = "<stream>"
) -> Iterator[Trajectory]:
    """Lazily yield one :class:`Trajectory` per object from CSV lines.

    The memory-bounded core of :func:`stream_csv`/:func:`read_csv`: at
    any moment it holds only the current object's points, so arbitrarily
    large files (or unbounded line streams) can be consumed one object
    at a time. Rows must be grouped by object — as :func:`write_csv`
    produces — though the groups themselves may come in any order;
    within a group points are re-sorted by timestamp. Malformed rows and
    a group whose object id already appeared earlier raise
    :class:`ValueError` naming ``source`` and the offending line number.
    """
    reader = csv.reader(iter(lines))
    header = next(reader, None)
    if header != CSV_HEADER:
        raise ValueError(
            f"{source}:1: unexpected header {header!r} "
            f"(expected {','.join(CSV_HEADER)})"
        )
    current_id: str | None = None
    points: list[Point] = []
    seen: set[str] = set()
    for row in reader:
        line = reader.line_num
        if not row:
            continue
        if len(row) != 4:
            raise ValueError(
                f"{source}:{line}: expected 4 fields "
                f"({','.join(CSV_HEADER)}), got {len(row)}: {row!r}"
            )
        object_id, t, x, y = row
        try:
            point = Point(float(x), float(y), float(t))
        except ValueError:
            raise ValueError(
                f"{source}:{line}: non-numeric t/x/y field in row {row!r}"
            ) from None
        if object_id != current_id:
            if current_id is not None:
                yield Trajectory(current_id, sorted(points, key=lambda p: p.t))
            if object_id in seen:
                raise ValueError(
                    f"{source}:{line}: rows for object {object_id!r} are "
                    f"not contiguous; group rows by object before reading"
                )
            seen.add(object_id)
            current_id = object_id
            points = []
        points.append(point)
    if current_id is not None:
        yield Trajectory(current_id, sorted(points, key=lambda p: p.t))


def stream_csv(path: str | Path) -> Iterator[Trajectory]:
    """Lazily read a :func:`write_csv` file one trajectory at a time.

    Peak memory is one object's points (plus the line buffer), so this
    is the entry point for datasets too large to materialise — feed it
    to :func:`repro.data.preprocess.preprocess_stream` or chunk it with
    :func:`repro.data.stream.chunked`. See ``docs/data.md``.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        yield from stream_csv_rows(handle, source=str(path))


def read_csv(path: str | Path) -> TrajectoryDataset:
    """Read a dataset previously written with :func:`write_csv`.

    A materialising wrapper around :func:`stream_csv`: rows stream
    through one object at a time rather than being first collected into
    a per-object dict. Rows must be grouped by object (as
    :func:`write_csv` produces) but objects may appear in any order;
    points are re-sorted by timestamp per object. Malformed rows raise
    :class:`ValueError` with the file name and line number.
    """
    return TrajectoryDataset(stream_csv(path))


def write_tdrive_directory(dataset: TrajectoryDataset, directory: str | Path) -> None:
    """Write one ``<object_id>.txt`` file per trajectory, T-Drive style."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for trajectory in dataset:
        target = directory / f"{trajectory.object_id}.txt"
        with target.open("w", newline="") as handle:
            writer = csv.writer(handle)
            for point in trajectory:
                writer.writerow(
                    [trajectory.object_id, f"{point.t:.3f}", f"{point.x:.3f}", f"{point.y:.3f}"]
                )


def read_object_file(path: str | Path) -> Trajectory:
    """Read one per-object ``<object_id>.txt`` file (planar rows).

    The object id is the file stem; points are re-sorted by timestamp.
    Malformed rows raise :class:`ValueError` with file and line number.
    """
    path = Path(path)
    points = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        for row in reader:
            if not row:
                continue
            if len(row) != 4:
                raise ValueError(
                    f"{path}:{reader.line_num}: expected 4 fields, "
                    f"got {len(row)}: {row!r}"
                )
            _, t, x, y = row
            points.append(Point(float(x), float(y), float(t)))
    points.sort(key=lambda p: p.t)
    return Trajectory(path.stem, points)


def read_tdrive_directory(directory: str | Path) -> TrajectoryDataset:
    """Read a directory written by :func:`write_tdrive_directory`."""
    directory = Path(directory)
    return TrajectoryDataset(
        read_object_file(target) for target in sorted(directory.glob("*.txt"))
    )


def project_latlon(
    records: Iterable[tuple[str, float, float, float]],
    origin: tuple[float, float] | None = None,
) -> TrajectoryDataset:
    """Convert ``(object_id, t, lat, lon)`` records into planar metres.

    Uses an equirectangular projection centred on ``origin`` (defaults
    to the mean coordinate), which keeps city-scale distance distortion
    well under 1 %.
    """
    rows = list(records)
    if not rows:
        return TrajectoryDataset()
    if origin is None:
        origin = (
            sum(r[2] for r in rows) / len(rows),
            sum(r[3] for r in rows) / len(rows),
        )
    lat0, lon0 = origin
    cos_lat0 = math.cos(math.radians(lat0))
    points_by_object: dict[str, list[Point]] = {}
    order: list[str] = []
    for object_id, t, lat, lon in rows:
        x = math.radians(lon - lon0) * cos_lat0 * EARTH_RADIUS_M
        y = math.radians(lat - lat0) * EARTH_RADIUS_M
        if object_id not in points_by_object:
            points_by_object[object_id] = []
            order.append(object_id)
        points_by_object[object_id].append(Point(x, y, t))
    trajectories = []
    for object_id in order:
        points = sorted(points_by_object[object_id], key=lambda p: p.t)
        trajectories.append(Trajectory(object_id, points))
    return TrajectoryDataset(trajectories)
