#!/usr/bin/env python
"""Guard the public API surface against accidental breakage.

Builds a description of every ``__all__`` export of the public
packages (``repro.api``, ``repro.engine``, ``repro.data``, plus the
top-level ``repro`` namespace) — functions and methods down to their
full signatures, classes down to their public methods and properties —
and compares it against the checked-in snapshot
``tools/api_surface.json``. Any drift (a removed name, a changed
signature, an undeclared addition) fails with a precise diff, so
breaking the API is always a *reviewed* decision:

Usage::

    PYTHONPATH=src python tools/check_api.py            # verify (CI)
    PYTHONPATH=src python tools/check_api.py --update   # bless changes

CI runs the verify mode as the ``api`` section of the unified
``tools/check_static.py`` gate.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "tools" / "api_surface.json"

#: The modules whose ``__all__`` is the public contract.
PUBLIC_MODULES = (
    "repro",
    "repro.api",
    "repro.engine",
    "repro.data",
    "repro.analysis",
    "repro.bench",
    "repro.serve",
)

#: Memory addresses and other run-dependent repr noise to normalize.
_ADDRESS = re.compile(r"0x[0-9a-fA-F]+")


def _signature_of(obj) -> str:
    try:
        signature = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"
    return _ADDRESS.sub("0x...", signature)


def _describe_class(cls: type) -> dict:
    members: dict[str, str] = {}
    for name, member in inspect.getmembers(cls):
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            members[name] = "property"
        elif callable(member):
            members[name] = f"method{_signature_of(member)}"
    return {
        "kind": "class",
        "signature": _signature_of(cls),
        "members": members,
    }


def _describe(obj) -> dict | str:
    if inspect.isclass(obj):
        return _describe_class(obj)
    if callable(obj):
        return f"function{_signature_of(obj)}"
    return f"constant:{type(obj).__name__}"


def build_surface() -> dict:
    """``{module: {export: description}}`` for the public modules."""
    surface: dict[str, dict] = {}
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        exports = getattr(module, "__all__", None)
        if exports is None:
            raise RuntimeError(f"{module_name} declares no __all__")
        entry: dict[str, object] = {}
        for name in sorted(exports):
            if not hasattr(module, name):
                raise RuntimeError(
                    f"{module_name}.__all__ lists {name!r} but the module "
                    f"does not define it"
                )
            entry[name] = _describe(getattr(module, name))
        surface[module_name] = entry
    return surface


def diff_surfaces(expected: dict, actual: dict) -> list[str]:
    """Human-readable differences, empty when the surfaces match."""
    problems: list[str] = []
    for module in sorted(set(expected) | set(actual)):
        have, want = actual.get(module), expected.get(module)
        if want is None:
            problems.append(f"{module}: new module not in snapshot")
            continue
        if have is None:
            problems.append(f"{module}: module missing from surface")
            continue
        for name in sorted(set(want) | set(have)):
            if name not in have:
                problems.append(f"{module}.{name}: removed from public API")
            elif name not in want:
                problems.append(
                    f"{module}.{name}: added but not in snapshot "
                    f"(run with --update to bless)"
                )
            elif want[name] != have[name]:
                if (
                    isinstance(want[name], dict)
                    and isinstance(have[name], dict)
                ):
                    w_members = want[name].get("members", {})
                    h_members = have[name].get("members", {})
                    for member in sorted(set(w_members) | set(h_members)):
                        if w_members.get(member) != h_members.get(member):
                            problems.append(
                                f"{module}.{name}.{member}: "
                                f"{w_members.get(member)!r} -> "
                                f"{h_members.get(member)!r}"
                            )
                    if want[name].get("signature") != have[name].get(
                        "signature"
                    ):
                        problems.append(
                            f"{module}.{name}: signature "
                            f"{want[name].get('signature')!r} -> "
                            f"{have[name].get('signature')!r}"
                        )
                else:
                    problems.append(
                        f"{module}.{name}: {want[name]!r} -> {have[name]!r}"
                    )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="check_api")
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the snapshot to match the current surface",
    )
    args = parser.parse_args(argv)
    surface = build_surface()
    if args.update:
        SNAPSHOT.write_text(json.dumps(surface, indent=2, sort_keys=True) + "\n")
        print(f"snapshot updated: {SNAPSHOT}")
        return 0
    if not SNAPSHOT.is_file():
        print(
            f"{SNAPSHOT}: missing — run `python tools/check_api.py --update`",
            file=sys.stderr,
        )
        return 1
    expected = json.loads(SNAPSHOT.read_text())
    problems = diff_surfaces(expected, surface)
    exports = sum(len(entry) for entry in surface.values())
    print(
        f"checked {exports} public exports across {len(surface)} modules"
    )
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(
            f"{len(problems)} API surface change(s) — if intentional, "
            f"bless with `python tools/check_api.py --update`",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
