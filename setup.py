"""Legacy setup shim so editable installs work without the `wheel` package.

Mirrors the `[project.scripts]` entry point from pyproject.toml because
older setuptools' `setup.py develop` path does not always materialise
pyproject-declared scripts.
"""

from setuptools import setup

setup(
    entry_points={
        "console_scripts": ["repro = repro.cli:main"],
    }
)
