"""Intra- and inter-trajectory modification (Section IV-B).

Given the perturbed frequency distributions produced by the mechanisms,
these optimisers edit trajectories so the published data *satisfies*
the noisy distributions while greedily minimising utility loss:

* :class:`IntraTrajectoryModifier` realises each trajectory's perturbed
  PF distribution (Definition 9) by reducing frequency changes to
  K-nearest-segment searches (Definition 10);
* :class:`InterTrajectoryModifier` realises the dataset's perturbed TF
  distribution (Definition 7) by reducing trajectory selection to
  K-nearest-trajectory searches (Definition 8), aggregated from a
  shared dataset-wide segment index.

Both support the paper's index backends (linear scan, uniform grid,
hierarchical grid) and, for the hierarchical grid, the three search
strategies of Section IV-C2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.core.edits import EditableTrajectory
from repro.core.global_mechanism import TFPerturbation
from repro.core.local_mechanism import PFPerturbation
from repro.geo.geometry import BBox, Coord
from repro.index.base import SegmentIndex
from repro.index.hierarchical import HierarchicalGridIndex
from repro.index.linear import LinearSegmentIndex
from repro.index.search import iter_nearest_via_knn, knn_batch_via_knn
from repro.index.uniform import UniformGridIndex
from repro.trajectory.model import LocationKey, Trajectory, TrajectoryDataset

IndexFactory = Callable[[BBox], SegmentIndex]

#: Margin added around bounding boxes so inserted points near the edge
#: still fall inside the grid extent, as a fraction of the bbox
#: diagonal. A relative margin keeps grid cell resolution intact
#: regardless of coordinate scale: a fixed absolute margin (the old
#: behaviour was a flat 10.0) inflated a lat/lon-degree-scale extent
#: ~1000x and collapsed every grid level onto the same few cells.
_BBOX_MARGIN_FRACTION = 0.01

#: Absolute floor so degenerate (point-like) bboxes still get a
#: non-zero extent to grid over.
_BBOX_MARGIN_FLOOR = 1e-6


def index_extent(bbox: BBox) -> BBox:
    """The grid extent used when indexing data bounded by ``bbox``."""
    margin = max(
        _BBOX_MARGIN_FRACTION * math.hypot(bbox.width, bbox.height),
        _BBOX_MARGIN_FLOOR,
    )
    return bbox.expand(margin)


def make_index_factory(
    backend: str = "hierarchical",
    levels: int = 10,
    granularity: int = 512,
) -> IndexFactory:
    """A factory building the requested index backend over a bbox.

    ``backend`` is one of ``"linear"``, ``"uniform"``, ``"hierarchical"``,
    or ``"rtree"``.
    """
    if backend == "linear":
        return lambda bbox: LinearSegmentIndex()
    if backend == "uniform":
        return lambda bbox: UniformGridIndex(bbox, granularity=granularity)
    if backend == "hierarchical":
        return lambda bbox: HierarchicalGridIndex(bbox, levels=levels)
    if backend == "rtree":
        from repro.index.rtree import RTreeIndex

        return lambda bbox: RTreeIndex()
    raise ValueError(f"unknown index backend {backend!r}")


def search_knn(
    index: SegmentIndex, q: Coord, k: int, strategy: str
) -> list[tuple[int, float]]:
    """Dispatch kNN to the index, passing the strategy where supported."""
    if isinstance(index, HierarchicalGridIndex):
        return index.knn(q, k, strategy=strategy)
    return index.knn(q, k)


def iter_nearest(index: SegmentIndex, q: Coord) -> Iterator[tuple[int, float]]:
    """Dispatch incremental nearest-segment iteration to the index.

    Every bundled backend implements ``iter_nearest`` natively; unknown
    third-party indexes fall back to restart-doubling over ``knn``.
    """
    native = getattr(index, "iter_nearest", None)
    if native is not None:
        return native(q)
    return iter_nearest_via_knn(index, q)


def search_knn_batch(
    index: SegmentIndex, qs: Sequence[Coord], k: int, strategy: str
) -> list[list[tuple[int, float]]]:
    """Dispatch a batched kNN, passing the strategy where supported."""
    if isinstance(index, HierarchicalGridIndex):
        return index.knn_batch(qs, k, strategy=strategy)
    native = getattr(index, "knn_batch", None)
    if native is not None:
        return native(qs, k)
    return knn_batch_via_knn(index, qs, k)


@dataclass(slots=True)
class ModificationReport:
    """Aggregate outcome of a modification pass."""

    utility_loss: float = 0.0
    insertions: int = 0
    deletions: int = 0
    #: Frequency changes that could not be realised (e.g. an insertion
    #: target had no segments left). Kept for diagnostics; should be
    #: zero on realistic data.
    unrealised: int = 0

    def merge(self, other: "ModificationReport") -> None:
        self.utility_loss += other.utility_loss
        self.insertions += other.insertions
        self.deletions += other.deletions
        self.unrealised += other.unrealised


class IntraTrajectoryModifier:
    """Realises a perturbed PF distribution on a single trajectory."""

    def __init__(
        self,
        index_factory: IndexFactory | None = None,
        strategy: str = "bottom_up_down",
    ) -> None:
        self.index_factory = index_factory or make_index_factory()
        self.strategy = strategy

    def apply(
        self, trajectory: Trajectory, perturbation: PFPerturbation
    ) -> tuple[Trajectory, ModificationReport]:
        """A new trajectory satisfying ``perturbation``, plus the report.

        Deletions run before insertions so freed capacity never forces
        an insertion into a segment that is about to disappear.
        """
        report = ModificationReport()
        if len(trajectory) == 0:
            return trajectory.copy(), report
        bbox = index_extent(trajectory.bbox())
        editable = EditableTrajectory(trajectory, self.index_factory(bbox))

        for loc, count in sorted(perturbation.decreases()):
            outcome = editable.delete_cheapest(loc, count)
            report.utility_loss += outcome.utility_loss
            report.deletions += -outcome.delta_points
            if -outcome.delta_points < count:
                report.unrealised += count + outcome.delta_points

        for loc, count in sorted(perturbation.increases()):
            report.merge(self._insert(editable, loc, count))

        return editable.to_trajectory(), report

    def _insert(
        self, editable: EditableTrajectory, loc: LocationKey, count: int
    ) -> ModificationReport:
        """Insert ``count`` occurrences into the nearest segments.

        Mirrors Algorithm 3's usage: one top-``∆f`` search, then one
        insertion per returned segment (splitting a segment does not
        invalidate the other results).
        """
        report = ModificationReport()
        hits = search_knn(editable.index, loc, count, self.strategy)
        for sid, _ in hits:
            outcome = editable.insert_into_segment(loc, sid)
            report.utility_loss += outcome.utility_loss
            report.insertions += 1
        for _ in range(count - len(hits)):
            # Degenerate trajectory with no segments: append instead.
            outcome = editable.append(loc)
            report.utility_loss += outcome.utility_loss
            report.insertions += 1
        return report


def rank_containing(
    editables: dict[str, "EditableTrajectory"], loc: LocationKey
) -> list["EditableTrajectory"]:
    """Trajectories containing ``loc``, cheapest complete deletion first.

    Stable-sorted, so equal-cost trajectories keep dataset order — the
    deterministic ranking both the serial TF-decrease loop and the wave
    planner's read-only simulation share.
    """
    containing = [
        editable for editable in editables.values() if editable.contains(loc)
    ]
    containing.sort(key=lambda e: e.complete_deletion_cost(loc))
    return containing


def apply_decrease_selection(
    editables: dict[str, "EditableTrajectory"],
    loc: LocationKey,
    delta: int,
    owners: Sequence[str],
    containing_count: int,
) -> ModificationReport:
    """Delete every occurrence of ``loc`` from the chosen ``owners``.

    The application half of a TF decrease: ``owners`` is the ranked
    selection (at most ``delta`` ids), ``containing_count`` how many
    trajectories contained ``loc`` when the selection was made.
    """
    report = ModificationReport()
    for owner in owners:
        outcome = editables[owner].delete_all(loc)
        report.utility_loss += outcome.utility_loss
        report.deletions += -outcome.delta_points
    if containing_count < delta:
        report.unrealised += delta - containing_count
    return report


def apply_increase_selection(
    shared_index: SegmentIndex,
    editables: dict[str, "EditableTrajectory"],
    loc: LocationKey,
    delta: int,
    chosen: Sequence[tuple[str, int]],
) -> ModificationReport:
    """Insert ``loc`` into each chosen ``(owner, sid)`` segment.

    The application half of a TF increase, shared by the serial
    per-location loop and the wave executor: selections are applied in
    selection order, with the stale-sid guard intact (a chosen segment
    that vanished through an earlier edit is replaced by the owner's
    nearest live segment).
    """
    report = ModificationReport()
    performed = 0
    for owner, sid in chosen:
        editable = editables[owner]
        if not editable.node_for_segment(sid):
            # The segment vanished through an earlier edit (cannot
            # happen within one loc's batch, but guard anyway).
            replacement = nearest_live_segment_of_owner(
                shared_index, loc, editable
            )
            if replacement is None:
                continue
            sid = replacement
        outcome = editable.insert_into_segment(loc, sid)
        report.utility_loss += outcome.utility_loss
        report.insertions += 1
        performed += 1
    report.unrealised += delta - performed
    return report


def nearest_live_segment_of_owner(
    shared_index: SegmentIndex, loc: LocationKey, editable: "EditableTrajectory"
) -> int | None:
    """The owner's nearest *live* segment to ``loc``, or None.

    Consumes the incremental frontier lazily and — unlike the old
    restart-scan — verifies each hit against the editable's own
    segment table: a stale sid that still matches the owner in the
    shared index but no longer exists on the trajectory must not be
    returned (inserting into it would raise).
    """
    for sid, _ in iter_nearest(shared_index, loc):
        if (
            shared_index.segment(sid).owner == editable.object_id
            and editable.node_for_segment(sid)
        ):
            return sid
    return None


class InterTrajectoryModifier:
    """Realises a perturbed global TF distribution on the whole dataset.

    ``trajectory_selection`` picks how the Δl nearest trajectories are
    found for TF increases (Definition 8):

    * ``"index"`` — scan the shared segment index outward from the
      location and keep the first Δl distinct eligible owners (the
      paper's published approach);
    * ``"bbox"`` — the paper's future-work optimisation: rank
      trajectories by the lower bound MINdist(loc, bbox(τ)) and
      evaluate exact nearest-segment costs in bound order, stopping
      once the next bound exceeds the current Δl-th best cost. Both
      produce cost-equivalent selections.

    ``candidate_source`` controls how candidates are obtained for the
    ``"index"`` selection:

    * ``"wave"`` (default) — the planner/executor path: group
      locations into conflict-free *waves* (see
      :mod:`repro.core.waves`), simulate each wave's selections
      read-only against one static index snapshot (sharing the
      batched per-cell distance kernels), then apply the recorded
      decisions in serial order. Byte-identical to ``"incremental"``
      by construction;
    * ``"incremental"`` — the per-location loop: pull candidates
      lazily from the index's resumable ``iter_nearest`` frontier,
      stopping the moment Δl owners are found;
    * ``"restart"`` — the original restart-scan: run ``knn`` with
      ``k = 4Δl`` and re-run from scratch with ``k`` quadrupled until
      enough owners appear. Kept as the baseline the engine benchmark
      measures against. Restart makes cost-identical selections;
      exact-distance ties at the ``k`` boundary may resolve to a
      different (equally cheap) owner.
    """

    def __init__(
        self,
        index_factory: IndexFactory | None = None,
        strategy: str = "bottom_up_down",
        trajectory_selection: str = "index",
        candidate_source: str = "wave",
    ) -> None:
        if trajectory_selection not in ("index", "bbox"):
            raise ValueError(
                f"unknown trajectory selection {trajectory_selection!r}"
            )
        if candidate_source not in ("wave", "incremental", "restart"):
            raise ValueError(
                f"unknown candidate source {candidate_source!r}"
            )
        self.index_factory = index_factory or make_index_factory()
        self.strategy = strategy
        self.trajectory_selection = trajectory_selection
        self.candidate_source = candidate_source
        #: Diagnostics of the most recent wave-planned run (None for
        #: the serial candidate sources), akin to an index's
        #: ``last_stats``.
        self.last_wave_stats = None

    def apply(
        self,
        dataset: TrajectoryDataset,
        perturbation: TFPerturbation,
        wave_map: Callable | None = None,
    ) -> tuple[TrajectoryDataset, ModificationReport]:
        """A new dataset satisfying the perturbed TF distribution.

        ``wave_map`` (wave mode only) maps the planner's read-only
        per-location simulations over an executor pool — the engine's
        ``global_workers`` hook; ``None`` simulates in-process.
        """
        report = ModificationReport()
        if len(dataset) == 0:
            return dataset.copy(), report
        shared_index = self.index_factory(index_extent(dataset.bbox()))
        editables = {
            trajectory.object_id: EditableTrajectory(trajectory, shared_index)
            for trajectory in dataset
        }

        # ``candidate_source`` governs the "index" selection only; the
        # bbox selection examines every trajectory, so waving it would
        # degenerate to the serial loop — it keeps the reference path.
        if (
            self.candidate_source == "wave"
            and self.trajectory_selection == "index"
        ):
            self._apply_waves(
                shared_index, editables, perturbation, report, wave_map
            )
        else:
            self._apply_serial(shared_index, editables, perturbation, report)

        modified = TrajectoryDataset(
            editables[trajectory.object_id].to_trajectory() for trajectory in dataset
        )
        return modified, report

    def _apply_serial(
        self,
        shared_index: SegmentIndex,
        editables: dict[str, EditableTrajectory],
        perturbation: TFPerturbation,
        report: ModificationReport,
    ) -> None:
        """The per-location reference loop (Algorithm 3's order)."""
        # TF decreases: completely delete the location from the Δl
        # trajectories with the cheapest complete-deletion loss.
        for loc, delta in sorted(perturbation.decreases()):
            containing = rank_containing(editables, loc)
            report.merge(
                apply_decrease_selection(
                    editables,
                    loc,
                    delta,
                    [e.object_id for e in containing[:delta]],
                    len(containing),
                )
            )

        # TF increases: insert the location once into each of the Δl
        # nearest trajectories that do not already pass through it.
        for loc, delta in sorted(perturbation.increases()):
            if self.trajectory_selection == "bbox":
                report.merge(
                    self._insert_with_bbox_pruning(editables, loc, delta)
                )
            else:
                report.merge(
                    self._insert_into_nearest_trajectories(
                        shared_index, editables, loc, delta
                    )
                )

    def _apply_waves(
        self,
        shared_index: SegmentIndex,
        editables: dict[str, EditableTrajectory],
        perturbation: TFPerturbation,
        report: ModificationReport,
        wave_map: Callable | None,
    ) -> None:
        """Drive the planner/executor pair over the TF schedule."""
        from repro.core.waves import WaveExecutor, WavePlanner

        planner = WavePlanner(
            shared_index, editables, strategy=self.strategy, wave_map=wave_map
        )
        executor = WaveExecutor(shared_index, editables)
        for kind, pending in perturbation.schedule():
            while pending:
                wave, pending = planner.plan_wave(kind, pending)
                executor.apply_wave(kind, wave, report)
        self.last_wave_stats = planner.stats

    def _insert_into_nearest_trajectories(
        self,
        shared_index: SegmentIndex,
        editables: dict[str, EditableTrajectory],
        loc: LocationKey,
        delta: int,
    ) -> ModificationReport:
        """K-nearest-trajectory search via the shared segment index.

        A trajectory's insertion loss is the distance of its nearest
        segment (Definition 8), so scanning segments in ascending
        distance yields trajectories in ascending insertion loss; we
        keep the first ``delta`` distinct eligible owners.
        """
        report = ModificationReport()
        eligible = {
            object_id
            for object_id, editable in editables.items()
            if not editable.contains(loc)
        }
        if not eligible:
            report.unrealised += delta
            return report

        if self.candidate_source == "restart":
            chosen = self._select_restart_scan(shared_index, eligible, loc, delta)
        else:
            chosen = self._select_incremental(shared_index, eligible, loc, delta)

        report.merge(
            apply_increase_selection(
                shared_index, editables, loc, delta, list(chosen.items())
            )
        )
        return report

    def _select_incremental(
        self,
        shared_index: SegmentIndex,
        eligible: set[str],
        loc: LocationKey,
        delta: int,
    ) -> dict[str, int]:
        """First ``delta`` distinct eligible owners, pulled lazily.

        Consumes the index's resumable nearest-segment frontier and
        stops as soon as enough owners are found — the search never
        scans farther than the Δl-th selected trajectory's nearest
        segment (Algorithm 3's pruning carried across candidates).
        """
        chosen: dict[str, int] = {}  # object id -> best segment sid
        for sid, _ in iter_nearest(shared_index, loc):
            owner = shared_index.segment(sid).owner
            if owner in eligible and owner not in chosen:
                chosen[owner] = sid
                if len(chosen) >= delta:
                    break
        return chosen

    def _select_restart_scan(
        self,
        shared_index: SegmentIndex,
        eligible: set[str],
        loc: LocationKey,
        delta: int,
    ) -> dict[str, int]:
        """The original restart-scan selection (benchmark baseline).

        Re-runs the full kNN search with ``k`` quadrupled until
        ``delta`` distinct eligible owners appear among the hits.
        """
        chosen: dict[str, int] = {}
        k = max(4 * delta, 16)
        while True:
            hits = search_knn(shared_index, loc, k, self.strategy)
            for sid, _ in hits:
                owner = shared_index.segment(sid).owner
                if owner in eligible and owner not in chosen:
                    chosen[owner] = sid
                    if len(chosen) >= delta:
                        break
            if len(chosen) >= delta or k >= len(shared_index):
                break
            k = min(k * 4, max(len(shared_index), 1))
        return chosen

    def _insert_with_bbox_pruning(
        self,
        editables: dict[str, EditableTrajectory],
        loc: LocationKey,
        delta: int,
    ) -> ModificationReport:
        """TF increase via bounding-box pruning (paper's future work).

        Trajectories are visited in ascending MINdist(loc, bbox) order;
        exact nearest-segment costs are only computed until the next
        bound cannot beat the current Δl-th best cost (the Theorem 4
        argument lifted from cells to trajectories).
        """
        report = ModificationReport()
        candidates = sorted(
            (
                (editable.min_possible_insertion_cost(loc), object_id)
                for object_id, editable in editables.items()
                if not editable.contains(loc)
            ),
        )
        if not candidates:
            report.unrealised += delta
            return report

        best: list[tuple[float, str, int]] = []  # (exact cost, owner, sid)
        for bound, object_id in candidates:
            if len(best) >= delta and bound > best[-1][0]:
                break  # no remaining trajectory can beat the worst kept
            sid, cost = editables[object_id].nearest_own_segment(loc)
            if sid is None:
                continue
            best.append((cost, object_id, sid))
            best.sort()
            del best[delta:]

        for _, owner, sid in best:
            outcome = editables[owner].insert_into_segment(loc, sid)
            report.utility_loss += outcome.utility_loss
            report.insertions += 1
        report.unrealised += delta - len(best)
        return report

    def _nearest_segment_of_owner(
        self, shared_index: SegmentIndex, loc: LocationKey, editable: EditableTrajectory
    ) -> int | None:
        """See :func:`nearest_live_segment_of_owner`."""
        return nearest_live_segment_of_owner(shared_index, loc, editable)
