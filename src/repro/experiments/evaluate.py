"""Shared evaluation: compute every Table II metric for one method."""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.linkage import LinkageAttack
from repro.attacks.recovery import RecoveryAttack
from repro.datagen.generator import FleetResult
from repro.experiments.config import ExperimentConfig
from repro.metrics.privacy import mutual_information
from repro.metrics.recovery import score_recovery
from repro.metrics.utility import (
    diameter_error,
    frequent_pattern_f1,
    information_loss,
    trip_error,
)
from repro.trajectory.model import TrajectoryDataset

#: Table II column order.
METRIC_COLUMNS = (
    "LAs",
    "LAt",
    "LAst",
    "LAsq",
    "MI",
    "INF",
    "DE",
    "TE",
    "FFP",
    "Precision",
    "Recall",
    "F-score",
    "RMF",
    "Accuracy",
)


@dataclass(slots=True)
class Evaluation:
    """All metrics for one (method, dataset) pair. None = not applicable."""

    values: dict[str, float | None]

    def row(self) -> list[str]:
        cells = []
        for column in METRIC_COLUMNS:
            value = self.values.get(column)
            cells.append("-" if value is None else f"{value:.3f}")
        return cells


def evaluate_method(
    original: TrajectoryDataset,
    anonymized: TrajectoryDataset,
    fleet: FleetResult,
    config: ExperimentConfig,
    synthetic: bool = False,
    with_recovery: bool = True,
) -> Evaluation:
    """Compute the full Table II metric set for one anonymized dataset.

    ``synthetic`` marks generative models: like the paper, temporal /
    spatiotemporal linkage and recovery are skipped for them (their
    trajectories carry fresh synthetic clocks and are not road-aligned).
    """
    attack = LinkageAttack(
        cell_size=config.linkage_cell, top_k=config.linkage_top_k
    )
    values: dict[str, float | None] = {}
    values["LAs"] = attack.linking_accuracy(original, anonymized, "spatial")
    if synthetic:
        values["LAt"] = None
        values["LAst"] = None
    else:
        values["LAt"] = attack.linking_accuracy(original, anonymized, "temporal")
        values["LAst"] = attack.linking_accuracy(
            original, anonymized, "spatiotemporal"
        )
    values["LAsq"] = attack.linking_accuracy(original, anonymized, "sequential")
    values["MI"] = mutual_information(original, anonymized)

    values["INF"] = information_loss(original, anonymized, sample_stride=2)
    values["DE"] = diameter_error(original, anonymized)
    values["TE"] = trip_error(original, anonymized)
    values["FFP"] = frequent_pattern_f1(original, anonymized)

    if synthetic or not with_recovery:
        for column in ("Precision", "Recall", "F-score", "RMF", "Accuracy"):
            values[column] = None
    else:
        from repro.trajectory.model import Trajectory

        sample = min(config.recovery_sample, len(original))
        original_sample = original.subset(sample)
        anonymized_sample = anonymized.subset(sample)
        # Point-accuracy compares original samples to the recovered
        # route, so the originals are truncated like the probes.
        truncated = TrajectoryDataset(
            Trajectory(t.object_id, t.points[: config.recovery_max_points])
            for t in original_sample
        )
        if config.recovery_attack == "path":
            from repro.attacks.path_inference import PathInferenceAttack

            attacker = PathInferenceAttack(
                fleet.network,
                max_points_per_trajectory=config.recovery_max_points,
            )
        else:
            attacker = RecoveryAttack(
                fleet.network,
                sigma=config.recovery_sigma,
                beta=config.recovery_beta,
                candidate_radius=config.recovery_radius,
                max_points_per_trajectory=config.recovery_max_points,
            )
        recovery = attacker.run(anonymized_sample)
        # Probes are truncated to recovery_max_points, so truncate each
        # ground-truth route to the (proportionally) covered prefix.
        truth: dict[str, list[tuple[int, int]]] = {}
        for trajectory in original_sample:
            route = fleet.routes.get(trajectory.object_id, [])
            fraction = min(
                1.0, config.recovery_max_points / max(len(trajectory), 1)
            )
            truth[trajectory.object_id] = route[
                : max(1, int(len(route) * fraction))
            ]
        metrics = score_recovery(fleet.network, truncated, truth, recovery)
        values["Precision"] = metrics.precision
        values["Recall"] = metrics.recall
        values["F-score"] = metrics.f_score
        values["RMF"] = metrics.rmf
        values["Accuracy"] = metrics.accuracy
    return Evaluation(values=values)
