"""Tests for the streaming readers in ``repro.data.stream``."""

import pytest

from repro.data.stream import (
    RawRecord,
    chunked,
    detect_format,
    group_records,
    parse_timestamp,
    project_record,
    scan_origin,
    stream_tdrive_records,
    stream_trajectories,
    unproject_point,
)
from repro.trajectory.io import (
    project_latlon,
    read_csv,
    stream_csv,
    stream_csv_rows,
    write_csv,
)
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset


class CountingLines:
    """Line iterable that records how many lines were pulled."""

    def __init__(self, lines):
        self.lines = lines
        self.consumed = 0

    def __iter__(self):
        for line in self.lines:
            self.consumed += 1
            yield line


def make_lines(n_objects: int, points_per_object: int) -> list[str]:
    lines = ["object_id,t,x,y\n"]
    for i in range(n_objects):
        for k in range(points_per_object):
            lines.append(f"obj{i},{k}.0,{i}.0,{k}.0\n")
    return lines


class TestStreamCsvRows:
    def test_matches_read_csv(self, tmp_path):
        dataset = TrajectoryDataset(
            [
                Trajectory("a", [Point(0.0, 1.0, 0.0), Point(2.0, 3.0, 10.0)]),
                Trajectory("b", [Point(5.0, 5.0, 2.0)]),
            ]
        )
        path = tmp_path / "fleet.csv"
        write_csv(dataset, path)
        streamed = list(stream_csv(path))
        loaded = read_csv(path)
        assert [t.object_id for t in streamed] == [t.object_id for t in loaded]
        for streamed_t, loaded_t in zip(streamed, loaded, strict=True):
            assert [p.coord for p in streamed_t] == [p.coord for p in loaded_t]

    def test_bounded_memory_iteration(self):
        # Pulling the first trajectory must consume only its own group
        # (plus header and the one look-ahead row that ends the group),
        # not the whole file.
        source = CountingLines(make_lines(n_objects=50, points_per_object=10))
        stream = stream_csv_rows(source)
        first = next(stream)
        assert first.object_id == "obj0"
        assert len(first) == 10
        assert source.consumed <= 12  # header + 10 rows + 1 look-ahead

    def test_iteration_order_and_sorting(self):
        lines = [
            "object_id,t,x,y\n",
            "b,20.0,1.0,1.0\n",
            "b,10.0,0.0,0.0\n",
            "a,5.0,2.0,2.0\n",
        ]
        result = list(stream_csv_rows(lines))
        assert [t.object_id for t in result] == ["b", "a"]
        assert [p.t for p in result[0]] == [10.0, 20.0]

    def test_malformed_row_names_line(self):
        lines = ["object_id,t,x,y\n", "a,1.0,2.0,3.0\n", "a,1.0,2.0\n"]
        with pytest.raises(ValueError, match=r"<stream>:3: expected 4 fields"):
            list(stream_csv_rows(lines))

    def test_non_numeric_field_names_line(self):
        lines = ["object_id,t,x,y\n", "a,nope,2.0,3.0\n"]
        with pytest.raises(ValueError, match=r"<stream>:2: non-numeric"):
            list(stream_csv_rows(lines))

    def test_non_contiguous_group_names_line(self):
        lines = [
            "object_id,t,x,y\n",
            "a,1.0,0.0,0.0\n",
            "b,1.0,0.0,0.0\n",
            "a,2.0,0.0,0.0\n",
        ]
        with pytest.raises(ValueError, match=r":4: .*not contiguous"):
            list(stream_csv_rows(lines))

    def test_bad_header(self):
        with pytest.raises(ValueError, match=r":1: unexpected header"):
            list(stream_csv_rows(["a,b,c\n"]))

    def test_read_csv_error_includes_path_and_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("object_id,t,x,y\nobj,1.0,2.0\n")
        with pytest.raises(ValueError, match=r"bad\.csv:2"):
            read_csv(path)


class TestChunked:
    def test_chunk_sizes_and_order(self):
        trajectories = [Trajectory(f"t{i}", [Point(0, 0, 0)]) for i in range(7)]
        chunks = list(chunked(iter(trajectories), 3))
        assert [len(c) for c in chunks] == [3, 3, 1]
        flat = [t.object_id for c in chunks for t in c]
        assert flat == [f"t{i}" for i in range(7)]

    def test_lazy_consumption(self):
        source = CountingLines(make_lines(n_objects=20, points_per_object=5))

        def trajectories():
            yield from stream_csv_rows(source)

        chunks = chunked(trajectories(), 4)
        next(chunks)
        # One chunk = 4 objects * 5 rows, plus header and at most one
        # look-ahead row per group boundary.
        assert source.consumed <= 4 * 5 + 6

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            list(chunked([], 0))


class TestTdriveRecords:
    def test_parse_timestamp_datetime_and_float(self):
        assert parse_timestamp("1234.5") == 1234.5
        assert parse_timestamp("1970-01-01 00:01:00") == 60.0

    def test_stream_single_file(self, tmp_path):
        path = tmp_path / "taxi.txt"
        path.write_text(
            "1,2008-02-02 15:36:08,116.51172,39.92123\n"
            "1,2008-02-02 15:46:08,116.51135,39.93883\n"
        )
        records = list(stream_tdrive_records(path))
        assert len(records) == 2
        assert records[0].object_id == "1"
        assert records[0].lat == pytest.approx(39.92123)
        assert records[0].lon == pytest.approx(116.51172)
        assert records[1].t - records[0].t == 600.0

    def test_stream_directory_in_name_order(self, tmp_path):
        (tmp_path / "b.txt").write_text("b,10.0,116.5,39.9\n")
        (tmp_path / "a.txt").write_text("a,10.0,116.5,39.9\n")
        ids = [r.object_id for r in stream_tdrive_records(tmp_path)]
        assert ids == ["a", "b"]

    def test_malformed_line_names_file_and_line(self, tmp_path):
        path = tmp_path / "taxi.txt"
        path.write_text("1,10.0,116.5,39.9\n1,10.0,116.5\n")
        with pytest.raises(ValueError, match=r"taxi\.txt:2: expected 4 fields"):
            list(stream_tdrive_records(path))

    def test_bad_coordinate_names_file_and_line(self, tmp_path):
        path = tmp_path / "taxi.txt"
        path.write_text("1,10.0,not-a-lon,39.9\n")
        with pytest.raises(ValueError, match=r"taxi\.txt:1: malformed"):
            list(stream_tdrive_records(path))

    def test_scan_origin_is_mean(self, tmp_path):
        path = tmp_path / "taxi.txt"
        path.write_text("1,0.0,116.0,39.0\n1,60.0,117.0,40.0\n")
        assert scan_origin(path) == pytest.approx((39.5, 116.5))


class TestProjection:
    ORIGIN = (39.9, 116.4)

    def test_latlon_round_trip(self):
        lat, lon = 39.92123, 116.51172
        x, y = project_record(lat, lon, self.ORIGIN)
        back = unproject_point(x, y, self.ORIGIN)
        assert back == pytest.approx((lat, lon), abs=1e-9)

    def test_group_records_matches_project_latlon(self):
        records = [
            RawRecord("t", 0.0, 39.90, 116.40),
            RawRecord("t", 60.0, 39.91, 116.41),
        ]
        streamed = list(group_records(iter(records), self.ORIGIN))
        reference = project_latlon(
            [("t", r.t, r.lat, r.lon) for r in records], origin=self.ORIGIN
        )
        assert len(streamed) == 1
        for p, q in zip(streamed[0], reference[0], strict=True):
            assert p.coord == pytest.approx(q.coord, abs=1e-9)
            assert p.t == q.t

    def test_group_records_rejects_interleaved_objects(self):
        records = [
            RawRecord("a", 0.0, 39.9, 116.4),
            RawRecord("b", 0.0, 39.9, 116.4),
            RawRecord("a", 60.0, 39.9, 116.4),
        ]
        with pytest.raises(ValueError, match="not contiguous"):
            list(group_records(iter(records), self.ORIGIN))


class TestStreamTrajectories:
    def test_detect_planar_by_header(self, tmp_path):
        path = tmp_path / "fleet.csv"
        path.write_text("object_id,t,x,y\na,1.0,2.0,3.0\n")
        assert detect_format(path) == "planar"

    def test_detect_planar_by_numeric_time(self, tmp_path):
        path = tmp_path / "fleet.txt"
        path.write_text("a,1.0,2.0,3.0\n")
        assert detect_format(path) == "planar"

    def test_detect_tdrive(self, tmp_path):
        path = tmp_path / "taxi.txt"
        path.write_text("1,2008-02-02 15:36:08,116.5,39.9\n")
        assert detect_format(path) == "tdrive"

    def test_tdrive_auto_origin(self, tmp_path):
        path = tmp_path / "taxi.txt"
        path.write_text(
            "1,2008-02-02 15:36:08,116.51,39.92\n"
            "1,2008-02-02 15:46:08,116.52,39.93\n"
        )
        trajectories = list(stream_trajectories(path))
        assert len(trajectories) == 1
        assert len(trajectories[0]) == 2
        # Mean-origin projection centres the data around (0, 0).
        xs = [p.x for p in trajectories[0]]
        assert sum(xs) == pytest.approx(0.0, abs=1e-6)

    def test_planar_directory(self, tmp_path):
        dataset = TrajectoryDataset([Trajectory("a", [Point(1.0, 2.0, 0.0)])])
        from repro.trajectory.io import write_tdrive_directory

        write_tdrive_directory(dataset, tmp_path / "fleet")
        trajectories = list(stream_trajectories(tmp_path / "fleet"))
        assert [t.object_id for t in trajectories] == ["a"]

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown format"):
            list(stream_trajectories(tmp_path, format="shapefile"))
