"""Tests for shift classification (repro.bench.shift).

The load-bearing property: classification is an exact mirror under a
direction flip — a key that reads as an improvement when lower is
better must read as the corresponding degradation when higher is
better, on the same numbers, boundaries included. Plus the concrete
threshold contract the CI gate depends on.
"""

import pytest
from hypothesis import given, strategies as st

from repro.bench import (
    BenchRecord,
    BenchScale,
    CrossScaleError,
    Direction,
    ShiftClass,
    Thresholds,
    classify_shift,
    compare_records,
    direction_for,
)

positive = st.floats(
    min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False
)

DIRECTIONS = (Direction.LOWER_IS_BETTER, Direction.HIGHER_IS_BETTER)

_MIRROR = {
    ShiftClass.SIGNIFICANT_IMPROVEMENT: ShiftClass.SIGNIFICANT_DEGRADATION,
    ShiftClass.MINOR_IMPROVEMENT: ShiftClass.MINOR_DEGRADATION,
    ShiftClass.STABLE: ShiftClass.STABLE,
    ShiftClass.MINOR_DEGRADATION: ShiftClass.MINOR_IMPROVEMENT,
    ShiftClass.SIGNIFICANT_DEGRADATION: ShiftClass.SIGNIFICANT_IMPROVEMENT,
}


class TestClassifyShift:
    @given(candidate=positive, baseline=positive)
    def test_direction_flip_mirrors_exactly(self, candidate, baseline):
        lower = classify_shift(
            candidate, baseline, Direction.LOWER_IS_BETTER
        )
        higher = classify_shift(
            candidate, baseline, Direction.HIGHER_IS_BETTER
        )
        assert higher is _MIRROR[lower]

    @given(baseline=positive, direction=st.sampled_from(DIRECTIONS))
    def test_equal_values_are_stable(self, baseline, direction):
        assert (
            classify_shift(baseline, baseline, direction)
            is ShiftClass.STABLE
        )

    @pytest.mark.parametrize(
        "candidate, expected",
        (
            (130.0, ShiftClass.SIGNIFICANT_DEGRADATION),
            (125.0, ShiftClass.SIGNIFICANT_DEGRADATION),
            (115.0, ShiftClass.SIGNIFICANT_DEGRADATION),  # boundary
            (110.0, ShiftClass.MINOR_DEGRADATION),
            (105.0, ShiftClass.MINOR_DEGRADATION),  # boundary
            (102.0, ShiftClass.STABLE),
            (100.0, ShiftClass.STABLE),
            (98.0, ShiftClass.STABLE),
            (95.0, ShiftClass.MINOR_IMPROVEMENT),  # boundary
            (90.0, ShiftClass.MINOR_IMPROVEMENT),
            (85.0, ShiftClass.SIGNIFICANT_IMPROVEMENT),  # boundary
            (50.0, ShiftClass.SIGNIFICANT_IMPROVEMENT),
        ),
    )
    def test_default_thresholds_lower_is_better(self, candidate, expected):
        assert (
            classify_shift(candidate, 100.0, Direction.LOWER_IS_BETTER)
            is expected
        )

    def test_custom_thresholds(self):
        relaxed = Thresholds(minor=0.10, significant=0.50)
        shift = classify_shift(
            130.0, 100.0, Direction.LOWER_IS_BETTER, relaxed
        )
        assert shift is ShiftClass.MINOR_DEGRADATION

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError, match="minor <= significant"):
            Thresholds(minor=0.2, significant=0.1)
        with pytest.raises(ValueError, match="minor <= significant"):
            Thresholds(minor=0.0)

    def test_non_positive_baseline_rejected(self):
        with pytest.raises(ValueError, match="baseline median"):
            classify_shift(1.0, 0.0, Direction.LOWER_IS_BETTER)


class TestDirectionFor:
    def test_seconds_are_lower_is_better(self):
        assert (
            direction_for("inter_modification.wave_s")
            is Direction.LOWER_IS_BETTER
        )

    def test_speedups_are_higher_is_better(self):
        assert (
            direction_for("speedups.wave_over_incremental")
            is Direction.HIGHER_IS_BETTER
        )

    def test_counters_are_untracked(self):
        assert direction_for("stream_publisher.chunks") is None


def _record(metrics, *, scale=None, speedups=None):
    return BenchRecord(
        bench="engine",
        scale=scale
        or BenchScale(
            n_objects=500,
            points_per_trajectory=300,
            signature_size=10,
            paper_scale=True,
        ),
        python="3.11.7",
        metrics=metrics,
        speedups=speedups or {},
    )


class TestCompareRecords:
    def test_degradation_detected_against_window_median(self):
        baselines = [
            _record({"inter_modification": {"wave_s": value}})
            for value in (10.0, 10.2, 9.8)
        ]
        candidate = _record({"inter_modification": {"wave_s": 12.5}})
        comparison = compare_records(candidate, baselines)
        (shift,) = comparison.shifts
        assert shift.key == "inter_modification.wave_s"
        assert shift.shift is ShiftClass.SIGNIFICANT_DEGRADATION
        assert not comparison.clean
        assert comparison.exit_code() == 1

    def test_speedup_drop_is_a_degradation(self):
        baselines = [
            _record({"noop": {"x_s": 1.0}}, speedups={"wave": 1.5})
        ]
        candidate = _record(
            {"noop": {"x_s": 1.0}}, speedups={"wave": 1.0}
        )
        comparison = compare_records(candidate, baselines)
        by_key = {shift.key: shift for shift in comparison.shifts}
        assert (
            by_key["speedups.wave"].shift
            is ShiftClass.SIGNIFICANT_DEGRADATION
        )

    def test_window_limits_baselines(self):
        old = _record({"g": {"x_s": 100.0}})
        recent = [_record({"g": {"x_s": 10.0}}) for _ in range(5)]
        candidate = _record({"g": {"x_s": 10.1}})
        comparison = compare_records(
            candidate, [old] + recent, window=5
        )
        (shift,) = comparison.shifts
        assert shift.baseline["median"] == 10.0
        assert shift.shift is ShiftClass.STABLE

    def test_new_and_missing_keys_are_reported_not_fatal(self):
        baselines = [_record({"g": {"x_s": 1.0, "gone_s": 2.0}})]
        candidate = _record({"g": {"x_s": 1.0, "fresh_s": 3.0}})
        comparison = compare_records(candidate, baselines)
        assert comparison.new_keys == ("g.fresh_s",)
        assert comparison.missing_keys == ("g.gone_s",)
        assert comparison.clean

    def test_cross_scale_comparison_refused(self):
        smoke = BenchScale(
            n_objects=60,
            points_per_trajectory=120,
            signature_size=5,
            paper_scale=False,
        )
        candidate = _record({"g": {"x_s": 1.0}})
        baseline = _record({"g": {"x_s": 1.0}}, scale=smoke)
        with pytest.raises(CrossScaleError, match="only comparable"):
            compare_records(candidate, [baseline])

    def test_cross_bench_comparison_refused(self):
        candidate = _record({"g": {"x_s": 1.0}})
        other = BenchRecord(
            bench="other",
            scale=candidate.scale,
            python="3.11.7",
            metrics={"g": {"x_s": 1.0}},
        )
        with pytest.raises(CrossScaleError):
            compare_records(candidate, [other])

    def test_render_human_mentions_verdict(self):
        candidate = _record({"g": {"x_s": 1.0}})
        comparison = compare_records(candidate, [candidate])
        text = comparison.render_human()
        assert "stable or better" in text
        assert "g.x_s" in text
