"""Run a method spec against a dataset and get everything back at once.

:func:`run` is the front door the CLI, the experiment drivers, and
library users share: build the method a :class:`MethodSpec` describes,
anonymize, and return a :class:`RunResult` bundling the output
dataset, the :class:`~repro.core.pipeline.AnonymizationReport` (for
frequency-family methods), the spec itself, and wall-clock timing.

Results travel **with the return value** — nothing is stashed on
shared instances, so concurrent runs can never clobber each other's
reports (the ``last_report`` attribute survives only as a deprecated
alias on the pipeline classes).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.api.registry import build, method_info
from repro.api.spec import MethodSpec
from repro.core.pipeline import AnonymizationReport, FrequencyAnonymizer
from repro.trajectory.model import TrajectoryDataset

#: Engine choices of :func:`run`. ``"batch"`` shards the local stage
#: of frequency-family methods across a worker pool, byte-identical
#: to ``"serial"`` for the same seed.
ENGINE_KINDS = ("serial", "batch")


@dataclass(frozen=True)
class RunResult:
    """Everything one anonymization run produced, bundled together."""

    #: The anonymized dataset D*.
    dataset: TrajectoryDataset
    #: The method's run report; ``None`` for methods that expose no
    #: ``anonymize_with_report`` (the non-DP baselines publish no
    #: budget ledger).
    report: AnonymizationReport | None
    #: The spec that produced this result (provenance; its
    #: :attr:`~repro.api.spec.MethodSpec.digest` identifies the
    #: configuration).
    spec: MethodSpec
    #: Wall-clock seconds of the anonymize call itself.
    seconds: float
    #: Which engine ran it: ``"serial"`` or ``"batch"``.
    engine: str

    @property
    def utility_loss(self) -> float | None:
        """Total modification cost, when the method reports one."""
        return None if self.report is None else self.report.utility_loss

    def to_dict(self) -> dict:
        """JSON-serialisable provenance summary (no dataset payload)."""
        return {
            "spec": self.spec.to_dict(),
            "digest": self.spec.digest,
            "engine": self.engine,
            "seconds": self.seconds,
            "trajectories": len(self.dataset),
            "report": None if self.report is None else self.report.to_dict(),
        }


def as_spec(spec: MethodSpec | str | Mapping[str, Any]) -> MethodSpec:
    """Coerce a spec, bare kind, or ``to_dict`` payload to a spec."""
    if isinstance(spec, MethodSpec):
        return spec
    if isinstance(spec, str):
        return MethodSpec(spec)
    if isinstance(spec, Mapping):
        return MethodSpec.from_dict(spec)
    raise TypeError(
        f"expected a MethodSpec, kind string, or spec dict, "
        f"got {type(spec).__name__}"
    )


def run(
    spec: MethodSpec | str | Mapping[str, Any],
    data: TrajectoryDataset,
    *,
    engine: str = "serial",
    workers: int | None = None,
    executor: str = "process",
    shards_per_worker: int = 4,
    global_workers: int | None = 1,
) -> RunResult:
    """Anonymize ``data`` as ``spec`` describes; return a :class:`RunResult`.

    ``engine="batch"`` routes frequency-family methods through
    :class:`repro.engine.BatchAnonymizer` (``workers`` / ``executor`` /
    ``shards_per_worker`` configure the local-stage pool,
    ``global_workers`` the global stage's wave-planning thread pool)
    with output byte-identical to the serial path for the same seed;
    other families run the method as-is and reject the batch engine
    explicitly.
    """
    spec = as_spec(spec)
    if engine not in ENGINE_KINDS:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {ENGINE_KINDS}"
        )
    anonymizer = build(spec)
    if engine == "batch":
        if not isinstance(anonymizer, FrequencyAnonymizer):
            info = method_info(spec.kind)
            raise ValueError(
                f"engine='batch' requires a frequency-family method; "
                f"{spec.kind!r} is family {info.family!r}"
            )
        # Lazy so `import repro.api` stays light; the engine is only
        # needed when a batch run is actually requested.
        from repro.engine.batch import BatchAnonymizer

        front = BatchAnonymizer(
            anonymizer,
            workers=workers,
            executor=executor,
            shards_per_worker=shards_per_worker,
            global_workers=global_workers,
        )
        # The engine's wave-planning pool is persistent by design;
        # this engine lives for one call, so tear it down on the way
        # out rather than leaving threads to GC timing.
        with front:
            started = time.perf_counter()
            dataset, report = front.anonymize_with_report(data)
            seconds = time.perf_counter() - started
    elif hasattr(anonymizer, "anonymize_with_report"):
        # Frequency pipelines and the DP baselines (DPT/AdaTrace) all
        # return their report — with its composition ledger — alongside
        # the result; duck-typed so plugins can opt in too.
        started = time.perf_counter()
        dataset, report = anonymizer.anonymize_with_report(data)
        seconds = time.perf_counter() - started
    else:
        started = time.perf_counter()
        dataset = anonymizer.anonymize(data)
        seconds = time.perf_counter() - started
        report = None
    return RunResult(
        dataset=dataset, report=report, spec=spec, seconds=seconds, engine=engine
    )


def split_spec(
    spec: MethodSpec | str | Mapping[str, Any], split: float
) -> MethodSpec:
    """Re-split a frequency-family spec's total ε between the stages.

    ``split`` is the fraction of the total budget spent on the global
    TF mechanism (the streaming publisher's pass-1 estimate); the rest
    funds the local PF mechanism.  The result is a canonical
    ``"frequency"``-kind spec whose ``epsilon_global``/``epsilon_local``
    params *carry the split* — the declarative form every report and
    ledger records.  ``split=1.0`` disables the local stage,
    ``split=0.0`` the global one.
    """
    if not 0.0 <= split <= 1.0:
        raise ValueError(f"split must be in [0, 1], got {split}")
    anonymizer = build(as_spec(spec))
    if not isinstance(anonymizer, FrequencyAnonymizer):
        raise ValueError(
            "split applies to frequency-family methods only"
        )
    epsilon = anonymizer.epsilon
    params = anonymizer.config()
    params["epsilon_global"] = epsilon * split or None
    params["epsilon_local"] = epsilon * (1.0 - split) or None
    return MethodSpec("frequency", params)


def publish(
    spec: MethodSpec | str | Mapping[str, Any],
    source: str | os.PathLike | Callable[[], Any],
    *,
    chunk_size: int = 500,
    split: float | None = None,
    engine: str = "serial",
    workers: int | None = None,
    executor: str = "process",
    shards_per_worker: int = 4,
    global_workers: int | None = 1,
    publish_workers: int | None = 1,
    publish_executor: str = "process",
    spill_dir: str | os.PathLike | None = None,
    window: int | None = None,
    apportionment: str = "balanced",
    sink: Callable | None = None,
    byte_sink: Callable | None = None,
):
    """Publish a chunked dataset as **one** ε-DP release; return the
    merged :class:`~repro.engine.publish.PublishReport`.

    ``source`` is a dataset reference (CSV path, artifact directory,
    or registry name — chunked into ``chunk_size`` trajectories) or a
    chunk factory (``() -> Iterable[TrajectoryDataset]``), consumed
    exactly once: pass 1 spills each parsed chunk to ``spill_dir``
    (default: a self-cleaning tempdir) and pass 2 realises from the
    spills.  The method must be frequency-family; its ε_G/ε_L *are*
    the budget split between the shared pass-1 TF estimate and the
    parallel per-chunk local randomization (``split`` re-splits the
    spec's total ε first — see :func:`split_spec`).

    Two independent parallelism axes, both byte-identical to serial
    for the same seed: ``engine="batch"`` shards *within* each chunk's
    local stage (``workers``/``executor``/…), while
    ``publish_workers > 1`` (``0`` = per core) realises whole spilled
    chunks concurrently across a ``publish_executor`` pool behind a
    bounded in-flight ``window``.  ``sink(chunk, report)`` receives
    each anonymized chunk in stream order as soon as it is ready;
    ``byte_sink(rows, report)`` receives the same chunk's encoded CSV
    data rows (the fast path for file output).
    """
    spec = as_spec(spec)
    if engine not in ENGINE_KINDS:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {ENGINE_KINDS}"
        )
    if split is not None:
        spec = split_spec(spec, split)
    anonymizer = build(spec)
    if not isinstance(anonymizer, FrequencyAnonymizer):
        info = method_info(spec.kind)
        raise ValueError(
            f"publish requires a frequency-family method; "
            f"{spec.kind!r} is family {info.family!r}"
        )
    # Lazy so `import repro.api` stays light.
    from repro.engine.batch import BatchAnonymizer
    from repro.engine.publish import StreamPublisher, chunk_source

    chunks = source if callable(source) else chunk_source(source, chunk_size)
    publisher_knobs = dict(
        workers=publish_workers,
        executor=publish_executor,
        spill_dir=spill_dir,
        window=window,
        apportionment=apportionment,
    )
    if engine == "batch":
        front = BatchAnonymizer(
            anonymizer,
            workers=workers,
            executor=executor,
            shards_per_worker=shards_per_worker,
            global_workers=global_workers,
        )
        with front:
            return StreamPublisher(front, **publisher_knobs).publish(
                chunks, sink=sink, byte_sink=byte_sink
            )
    return StreamPublisher(anonymizer, **publisher_knobs).publish(
        chunks, sink=sink, byte_sink=byte_sink
    )
