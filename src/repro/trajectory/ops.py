"""Trajectory processing utilities.

Standard operations a downstream user of the library needs when
preparing real GPS data for the anonymizers:

* :func:`simplify` — Douglas-Peucker polyline simplification;
* :func:`resample` — fixed-interval temporal resampling;
* :func:`detect_dwells` — stop detection (radius + minimum duration);
* :func:`split_trips` — decompose a full moving history into trips at
  dwells, the decomposition the paper's trip-distribution metric (TE)
  presumes;
* :func:`sliding_windows` — fixed-size sub-trajectory windows.

All functions return new objects; inputs are never mutated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.geometry import Coord, point_distance, point_segment_distance
from repro.trajectory.model import Point, Trajectory


def simplify(trajectory: Trajectory, tolerance: float) -> Trajectory:
    """Douglas-Peucker simplification with the given tolerance (metres).

    Keeps the first and last sample; a sample is kept when it deviates
    from the simplified chord by more than ``tolerance``.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    points = trajectory.points
    if len(points) <= 2:
        return trajectory.copy()
    keep = [False] * len(points)
    keep[0] = keep[-1] = True
    stack = [(0, len(points) - 1)]
    while stack:
        start, end = stack.pop()
        if end - start < 2:
            continue
        a = points[start].coord
        b = points[end].coord
        worst = -1.0
        worst_index = -1
        for i in range(start + 1, end):
            d = point_segment_distance(points[i].coord, a, b)
            if d > worst:
                worst = d
                worst_index = i
        if worst > tolerance:
            keep[worst_index] = True
            stack.append((start, worst_index))
            stack.append((worst_index, end))
    return Trajectory(
        trajectory.object_id,
        [p for p, kept in zip(points, keep, strict=True) if kept],
    )


def resample(trajectory: Trajectory, interval: float) -> Trajectory:
    """Resample to a fixed time ``interval`` by linear interpolation.

    Output timestamps run from the first to the last original sample in
    steps of ``interval``; positions are interpolated along the
    original sequence.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    points = trajectory.points
    if len(points) < 2:
        return trajectory.copy()
    resampled = []
    t = points[0].t
    cursor = 0
    while t <= points[-1].t:
        while cursor < len(points) - 2 and points[cursor + 1].t < t:
            cursor += 1
        before = points[cursor]
        after = points[cursor + 1]
        span = after.t - before.t
        fraction = (t - before.t) / span if span > 0 else 0.0
        fraction = min(max(fraction, 0.0), 1.0)
        resampled.append(
            Point(
                before.x + fraction * (after.x - before.x),
                before.y + fraction * (after.y - before.y),
                t,
            )
        )
        t += interval
    return Trajectory(trajectory.object_id, resampled)


@dataclass(frozen=True, slots=True)
class Dwell:
    """A detected stop: sample range [start, end] (inclusive)."""

    start: int
    end: int
    centre: Coord
    duration: float

    @property
    def n_samples(self) -> int:
        return self.end - self.start + 1


def detect_dwells(
    trajectory: Trajectory,
    radius: float = 100.0,
    min_duration: float = 300.0,
) -> list[Dwell]:
    """Detect stops: maximal runs staying within ``radius`` of their
    first sample for at least ``min_duration`` seconds.
    """
    if radius <= 0 or min_duration <= 0:
        raise ValueError("radius and min_duration must be positive")
    points = trajectory.points
    dwells: list[Dwell] = []
    i = 0
    while i < len(points):
        anchor = points[i]
        j = i
        while (
            j + 1 < len(points)
            and point_distance(points[j + 1].coord, anchor.coord) <= radius
        ):
            j += 1
        duration = points[j].t - points[i].t
        if j > i and duration >= min_duration:
            xs = [points[k].x for k in range(i, j + 1)]
            ys = [points[k].y for k in range(i, j + 1)]
            centre = (sum(xs) / len(xs), sum(ys) / len(ys))
            dwells.append(Dwell(start=i, end=j, centre=centre, duration=duration))
            i = j + 1
        else:
            i += 1
    return dwells


def split_trips(
    trajectory: Trajectory,
    radius: float = 100.0,
    min_duration: float = 300.0,
    min_trip_points: int = 2,
) -> list[Trajectory]:
    """Split a full history into trips at detected dwells.

    Each trip runs from the end of one dwell to the start of the next;
    trips shorter than ``min_trip_points`` samples are discarded.
    Object ids get a ``#k`` suffix per trip.
    """
    dwells = detect_dwells(trajectory, radius=radius, min_duration=min_duration)
    boundaries = [0]
    for dwell in dwells:
        boundaries.extend((dwell.start, dwell.end))
    boundaries.append(len(trajectory) - 1)
    trips = []
    for k in range(0, len(boundaries) - 1, 2):
        start = boundaries[k]
        end = boundaries[k + 1]
        chunk = trajectory.points[start : end + 1]
        if len(chunk) >= min_trip_points:
            trips.append(
                Trajectory(f"{trajectory.object_id}#{len(trips)}", list(chunk))
            )
    return trips


def sliding_windows(
    trajectory: Trajectory, size: int, stride: int | None = None
) -> list[Trajectory]:
    """Fixed-size windows over the trajectory (``stride`` defaults to
    ``size``, i.e. non-overlapping)."""
    if size < 1:
        raise ValueError("size must be positive")
    if stride is None:
        stride = size
    if stride < 1:
        raise ValueError("stride must be positive")
    windows = []
    for start in range(0, max(len(trajectory) - size + 1, 1), stride):
        chunk = trajectory.points[start : start + size]
        if chunk:
            windows.append(
                Trajectory(f"{trajectory.object_id}@{start}", list(chunk))
            )
    return windows
