"""Planar geometry used by the edit-cost model and the spatial indexes.

The paper's utility-loss definitions (Definitions 5 and 6) and the
point-to-grid-cell pruning bound (Definition 12, Theorem 4) reduce to two
primitives implemented here:

* :func:`point_segment_distance` — Equation (3) of the paper, the minimum
  distance from a point to a closed line segment; and
* :meth:`BBox.min_distance` — Equation (4), the minimum distance from a
  point to an axis-aligned rectangle (zero when the point is inside).

Coordinates are plain ``(x, y)`` tuples in metres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

Coord = tuple[float, float]


def point_distance(p: Coord, q: Coord) -> float:
    """Euclidean distance between two planar points."""
    return math.hypot(p[0] - q[0], p[1] - q[1])


def segment_length(a: Coord, b: Coord) -> float:
    """Length of the segment ``<a, b>``."""
    return point_distance(a, b)


def project_onto_segment(q: Coord, a: Coord, b: Coord) -> tuple[Coord, float]:
    """Project point ``q`` onto segment ``<a, b>``.

    Returns the closest point on the segment and the clamped projection
    parameter ``t`` in ``[0, 1]`` (``0`` maps to ``a``, ``1`` to ``b``).
    Degenerate segments (``a == b``) project onto ``a``.
    """
    ax, ay = a
    bx, by = b
    dx = bx - ax
    dy = by - ay
    norm_sq = dx * dx + dy * dy
    if norm_sq == 0.0:
        return a, 0.0
    t = ((q[0] - ax) * dx + (q[1] - ay) * dy) / norm_sq
    t = max(0.0, min(1.0, t))
    return (ax + t * dx, ay + t * dy), t


def point_segment_distance(q: Coord, a: Coord, b: Coord) -> float:
    """Minimum distance from ``q`` to segment ``<a, b>`` (Equation 3)."""
    closest, _ = project_onto_segment(q, a, b)
    return point_distance(q, closest)


@dataclass(frozen=True, slots=True)
class BBox:
    """Axis-aligned bounding box ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(f"degenerate bbox: {self}")

    @classmethod
    def from_points(cls, points: Iterable[Coord]) -> "BBox":
        """Smallest bbox enclosing ``points`` (which must be non-empty)."""
        iterator = iter(points)
        try:
            x, y = next(iterator)
        except StopIteration:
            raise ValueError("cannot build a bbox from zero points") from None
        min_x = max_x = x
        min_y = max_y = y
        for px, py in iterator:
            min_x = min(min_x, px)
            max_x = max(max_x, px)
            min_y = min(min_y, py)
            max_y = max(max_y, py)
        return cls(min_x, min_y, max_x, max_y)

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def center(self) -> Coord:
        return ((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, p: Coord) -> bool:
        """Whether ``p`` lies inside the box (boundary inclusive)."""
        return self.min_x <= p[0] <= self.max_x and self.min_y <= p[1] <= self.max_y

    def contains_bbox(self, other: "BBox") -> bool:
        """Whether ``other`` is entirely inside this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "BBox") -> bool:
        """Whether the two boxes overlap (boundary touching counts)."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def min_distance(self, p: Coord) -> float:
        """Minimum distance from ``p`` to the box (Equation 4).

        Zero when ``p`` lies inside the box; otherwise the distance to the
        nearest edge.
        """
        dx = max(self.min_x - p[0], 0.0, p[0] - self.max_x)
        dy = max(self.min_y - p[1], 0.0, p[1] - self.max_y)
        return math.hypot(dx, dy)

    def expand(self, margin: float) -> "BBox":
        """A copy grown by ``margin`` on every side."""
        return BBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )


def path_length(points: Sequence[Coord]) -> float:
    """Total polyline length of a point sequence."""
    return sum(
        point_distance(points[i], points[i + 1]) for i in range(len(points) - 1)
    )


def diameter(points: Sequence[Coord]) -> float:
    """Maximum pairwise distance within ``points``.

    Uses the convex-hull-free O(n^2) definition for small inputs but
    falls back to a bbox-corner approximation for long trajectories,
    which is accurate enough for the diameter *distribution* metric the
    paper reports (DE) while keeping the metric linear-time.
    """
    n = len(points)
    if n < 2:
        return 0.0
    if n <= 256:
        best = 0.0
        for i in range(n):
            for j in range(i + 1, n):
                d = point_distance(points[i], points[j])
                if d > best:
                    best = d
        return best
    # Approximation: the diameter is bounded below by the largest
    # distance from a bbox corner-touching point to any other extreme
    # point, and above by the bbox diagonal. We refine with two rounds
    # of the standard "furthest point" double sweep.
    anchor = points[0]
    far = max(points, key=lambda p: point_distance(anchor, p))
    far2 = max(points, key=lambda p: point_distance(far, p))
    return point_distance(far, far2)
