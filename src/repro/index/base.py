"""Shared segment-index protocol and bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.geo.geometry import Coord, point_segment_distance


@dataclass(frozen=True, slots=True)
class IndexedSegment:
    """A segment registered in an index.

    ``owner`` carries the id of the trajectory the segment belongs to,
    which the inter-trajectory modifier uses to aggregate segment-level
    results to trajectory-level candidates.
    """

    sid: int
    a: Coord
    b: Coord
    owner: str | None = None

    def distance_to(self, q: Coord) -> float:
        return point_segment_distance(q, self.a, self.b)


@runtime_checkable
class SegmentIndex(Protocol):
    """The interface every spatial index in this package implements."""

    def insert(self, a: Coord, b: Coord, owner: str | None = None) -> int:
        """Register a segment; returns its id."""
        ...

    def remove(self, sid: int) -> None:
        """Unregister a segment by id."""
        ...

    def segment(self, sid: int) -> IndexedSegment:
        """Look up a registered segment."""
        ...

    def knn(self, q: Coord, k: int) -> list[tuple[int, float]]:
        """The ``k`` nearest segments to ``q`` as (sid, distance) pairs."""
        ...

    def iter_nearest(self, q: Coord) -> Iterator[tuple[int, float]]:
        """Lazily yield every segment in ascending distance from ``q``.

        The incremental counterpart of :meth:`knn`: consumers that do
        not know ``k`` up front (e.g. "first Δl distinct eligible
        owners") pull candidates one at a time instead of restarting
        the search with a growing ``k``. Ties are yielded in ascending
        sid order, matching :meth:`knn` output. The iterator snapshots
        or walks live structures — mutating the index invalidates it.

        Implementors without a native incremental search can delegate
        to :func:`repro.index.search.iter_nearest_via_knn`.
        """
        ...

    def __len__(self) -> int:
        ...


class SegmentRegistry:
    """Id allocation and storage shared by the concrete indexes."""

    def __init__(self) -> None:
        self._segments: dict[int, IndexedSegment] = {}
        self._next_id = 0

    def allocate(self, a: Coord, b: Coord, owner: str | None) -> IndexedSegment:
        segment = IndexedSegment(self._next_id, a, b, owner)
        self._segments[segment.sid] = segment
        self._next_id += 1
        return segment

    def release(self, sid: int) -> IndexedSegment:
        try:
            return self._segments.pop(sid)
        except KeyError:
            raise KeyError(f"segment {sid} is not in the index") from None

    def get(self, sid: int) -> IndexedSegment:
        try:
            return self._segments[sid]
        except KeyError:
            raise KeyError(f"segment {sid} is not in the index") from None

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[IndexedSegment]:
        return iter(self._segments.values())

    def bulk_load(
        self, segments: Iterable[tuple[Coord, Coord, str | None]]
    ) -> list[IndexedSegment]:
        return [self.allocate(a, b, owner) for a, b, owner in segments]
