"""DP composition accounting across mechanism draws.

The :class:`~repro.core.laplace.PrivacyAccountant` guards one run's
budget; this module answers the *publisher's* question: what is the
end-to-end ε of a release assembled from several mechanism draws over
several pieces of one dataset?  Two composition rules cover everything
the streaming publisher does (Dwork & Roth, Theorems 3.14 / 3.16 — the
paper's Theorem 1 is the sequential case):

* **sequential** — draws that all read the same data add up:
  ``ε = Σ ε_i``;
* **parallel** — draws over *disjoint* partitions of the data cost
  only the worst partition: ``ε = max ε_i``.

A :class:`CompositionLedger` records every draw as a named
:class:`MechanismDraw` with the *scope* (which slice of the data it
read) and an optional *group* (draws sharing a group compose in
parallel and must name pairwise-distinct scopes; the group as a whole
then composes sequentially with everything else).  The ledger is plain
data: it serialises into report JSON next to the existing
``budget_ledger`` and round-trips through :meth:`to_dict` /
:meth:`from_dict`, so a published artifact carries its own auditable
ε accounting.

This module is a leaf — stdlib only — so every layer may use it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

#: Scope of a draw over the whole dataset (the sequential default).
WHOLE_DATASET = "dataset"


def _validate_epsilon(epsilon: float, label: str) -> float:
    epsilon = float(epsilon)
    if math.isnan(epsilon) or math.isinf(epsilon) or epsilon <= 0.0:
        raise ValueError(
            f"draw {label!r} must spend a positive finite epsilon, "
            f"got {epsilon!r}"
        )
    return epsilon


@dataclass(frozen=True, slots=True)
class MechanismDraw:
    """One recorded mechanism invocation.

    ``scope`` names the slice of the dataset the draw read (e.g.
    ``"dataset"`` or ``"chunk:3"``); ``group`` is ``None`` for a
    sequentially-composed draw, or the name of the parallel group the
    draw belongs to.
    """

    label: str
    epsilon: float
    scope: str = WHOLE_DATASET
    group: str | None = None

    def __post_init__(self) -> None:
        if not self.label or not str(self.label).strip():
            raise ValueError("draw label must be non-empty")
        if not self.scope or not str(self.scope).strip():
            raise ValueError(f"draw {self.label!r} scope must be non-empty")
        object.__setattr__(
            self, "epsilon", _validate_epsilon(self.epsilon, self.label)
        )

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "epsilon": self.epsilon,
            "scope": self.scope,
            "group": self.group,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MechanismDraw":
        return cls(
            label=payload["label"],
            epsilon=payload["epsilon"],
            scope=payload.get("scope", WHOLE_DATASET),
            group=payload.get("group"),
        )


@dataclass(slots=True)
class CompositionLedger:
    """Sequential/parallel composition over named mechanism draws.

    Draws recorded with :meth:`record` compose sequentially; draws
    recorded with :meth:`record_parallel` under the same group name
    must cover pairwise-disjoint scopes and contribute only their
    maximum.  :attr:`epsilon_total` is then::

        Σ ε(sequential draws)  +  Σ_groups  max ε(draws in group)
    """

    draws: list[MechanismDraw] = field(default_factory=list)
    #: ``group -> scopes`` index behind the parallel-disjointness
    #: check (kept in step by :meth:`record_parallel`; rebuilt by
    #: :meth:`__post_init__` for ledgers constructed with draws).
    _group_scopes: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for draw in self.draws:
            if draw.group is not None:
                self._group_scopes.setdefault(draw.group, set()).add(
                    draw.scope
                )

    def record(
        self, label: str, epsilon: float, scope: str = WHOLE_DATASET
    ) -> MechanismDraw:
        """Record a sequentially-composed draw (reads ``scope``)."""
        draw = MechanismDraw(label=label, epsilon=epsilon, scope=scope)
        self.draws.append(draw)
        return draw

    def record_parallel(
        self, group: str, label: str, epsilon: float, scope: str
    ) -> MechanismDraw:
        """Record a draw composing in parallel within ``group``.

        Parallel composition is only sound over disjoint data, so two
        draws of one group may not name the same scope.
        """
        if not group or not group.strip():
            raise ValueError("parallel group name must be non-empty")
        scopes = self._group_scopes.setdefault(group, set())
        if scope in scopes:
            raise ValueError(
                f"group {group!r} already holds a draw over scope "
                f"{scope!r}; parallel composition requires disjoint "
                f"scopes (use record() for a sequential draw)"
            )
        draw = MechanismDraw(
            label=label, epsilon=epsilon, scope=scope, group=group
        )
        self.draws.append(draw)
        scopes.add(scope)
        return draw

    # -- aggregation ------------------------------------------------------------

    def sequential_draws(self) -> list[MechanismDraw]:
        return [draw for draw in self.draws if draw.group is None]

    def groups(self) -> dict[str, list[MechanismDraw]]:
        """Parallel groups in first-recorded order."""
        grouped: dict[str, list[MechanismDraw]] = {}
        for draw in self.draws:
            if draw.group is not None:
                grouped.setdefault(draw.group, []).append(draw)
        return grouped

    @property
    def epsilon_total(self) -> float:
        """End-to-end ε of everything recorded so far."""
        total = sum(draw.epsilon for draw in self.sequential_draws())
        for members in self.groups().values():
            total += max(draw.epsilon for draw in members)
        return total

    def merge(self, other: "CompositionLedger") -> None:
        """Append ``other``'s draws, revalidating group disjointness."""
        for draw in other.draws:
            if draw.group is None:
                self.draws.append(draw)
            else:
                self.record_parallel(
                    draw.group, draw.label, draw.epsilon, draw.scope
                )

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON form; inverse of :meth:`from_dict`.

        ``epsilon_total`` is included for human readers; ``from_dict``
        recomputes it from the draws and rejects a payload whose
        recorded total disagrees — a tampered or truncated ledger must
        not round-trip silently.
        """
        return {
            "epsilon_total": self.epsilon_total,
            "draws": [draw.to_dict() for draw in self.draws],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CompositionLedger":
        ledger = cls()
        for entry in payload.get("draws", ()):
            draw = MechanismDraw.from_dict(entry)
            if draw.group is None:
                ledger.draws.append(draw)
            else:
                ledger.record_parallel(
                    draw.group, draw.label, draw.epsilon, draw.scope
                )
        declared = payload.get("epsilon_total")
        if declared is not None and not math.isclose(
            float(declared), ledger.epsilon_total, rel_tol=1e-9, abs_tol=1e-9
        ):
            raise ValueError(
                f"ledger payload declares epsilon_total={declared} but its "
                f"draws compose to {ledger.epsilon_total}"
            )
        return ledger


def apportion(total: int, weights: Iterable[float], caps: Iterable[int]) -> list[int]:
    """Split ``total`` units over bins proportionally to ``weights``,
    never exceeding the per-bin ``caps``.

    Deterministic largest-remainder rounding (ties to the lower index),
    with capped overflow redistributed in index order.  The publisher
    uses this to apportion one shared TF delta across chunks; it lives
    here because the accounting invariant (per-chunk deltas sum exactly
    to the shared delta) is what makes the ledger's story true.
    Requires ``0 <= total <= sum(caps)``.
    """
    weights = [float(w) for w in weights]
    caps = [int(c) for c in caps]
    if len(weights) != len(caps):
        raise ValueError("weights and caps must have equal length")
    if any(w < 0 for w in weights) or any(c < 0 for c in caps):
        raise ValueError("weights and caps must be non-negative")
    if total < 0 or total > sum(caps):
        raise ValueError(
            f"cannot apportion {total} units into capacity {sum(caps)}"
        )
    n = len(weights)
    shares = [0] * n
    if total == 0 or n == 0:
        return shares
    weight_sum = sum(weights)
    if weight_sum <= 0.0:
        # Degenerate: no preference — fill in index order under caps.
        remaining = total
        for i in range(n):
            take = min(caps[i], remaining)
            shares[i] = take
            remaining -= take
        return shares
    quotas = [total * w / weight_sum for w in weights]
    shares = [min(int(math.floor(q)), caps[i]) for i, q in enumerate(quotas)]
    remainder = total - sum(shares)
    # Hand out the remainder by descending fractional part (stable on
    # ties), skipping bins already at capacity; loop because capped
    # bins can force several rounds.
    order = sorted(range(n), key=lambda i: (-(quotas[i] - math.floor(quotas[i])), i))
    while remainder > 0:
        progressed = False
        for i in order:
            if remainder == 0:
                break
            if shares[i] < caps[i]:
                shares[i] += 1
                remainder -= 1
                progressed = True
        if not progressed:  # pragma: no cover — excluded by the guard above
            raise ValueError("apportion ran out of capacity")
    return shares
