"""Unit + property tests for repro.geo.geometry."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo.geometry import (
    BBox,
    diameter,
    path_length,
    point_distance,
    point_segment_distance,
    project_onto_segment,
    segment_length,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
coords = st.tuples(finite, finite)


class TestPointDistance:
    def test_zero_for_identical_points(self):
        assert point_distance((3.0, 4.0), (3.0, 4.0)) == 0.0

    def test_pythagorean_triple(self):
        assert point_distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)

    @given(coords, coords)
    def test_symmetry(self, p, q):
        assert point_distance(p, q) == pytest.approx(point_distance(q, p))

    @given(coords, coords, coords)
    def test_triangle_inequality(self, p, q, r):
        assert point_distance(p, r) <= (
            point_distance(p, q) + point_distance(q, r) + 1e-6
        )


class TestProjectOntoSegment:
    def test_projects_interior(self):
        closest, t = project_onto_segment((5.0, 5.0), (0.0, 0.0), (10.0, 0.0))
        assert closest == pytest.approx((5.0, 0.0))
        assert t == pytest.approx(0.5)

    def test_clamps_before_start(self):
        closest, t = project_onto_segment((-5.0, 3.0), (0.0, 0.0), (10.0, 0.0))
        assert closest == (0.0, 0.0)
        assert t == 0.0

    def test_clamps_after_end(self):
        closest, t = project_onto_segment((15.0, 3.0), (0.0, 0.0), (10.0, 0.0))
        assert closest == (10.0, 0.0)
        assert t == 1.0

    def test_degenerate_segment(self):
        closest, t = project_onto_segment((1.0, 1.0), (2.0, 2.0), (2.0, 2.0))
        assert closest == (2.0, 2.0)
        assert t == 0.0


class TestPointSegmentDistance:
    def test_perpendicular_distance(self):
        assert point_segment_distance((5.0, 3.0), (0.0, 0.0), (10.0, 0.0)) == pytest.approx(3.0)

    def test_distance_to_endpoint(self):
        assert point_segment_distance((-3.0, 4.0), (0.0, 0.0), (10.0, 0.0)) == pytest.approx(5.0)

    def test_point_on_segment_is_zero(self):
        assert point_segment_distance((4.0, 0.0), (0.0, 0.0), (10.0, 0.0)) == 0.0

    @given(coords, coords, coords)
    def test_never_exceeds_endpoint_distances(self, q, a, b):
        d = point_segment_distance(q, a, b)
        assert d <= point_distance(q, a) + 1e-6
        assert d <= point_distance(q, b) + 1e-6

    @given(coords, coords, coords)
    def test_non_negative(self, q, a, b):
        assert point_segment_distance(q, a, b) >= 0.0


class TestBBox:
    def test_from_points(self):
        box = BBox.from_points([(1.0, 5.0), (-2.0, 3.0), (4.0, -1.0)])
        assert box == BBox(-2.0, -1.0, 4.0, 5.0)

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            BBox.from_points([])

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            BBox(1.0, 0.0, 0.0, 1.0)

    def test_contains_boundary(self):
        box = BBox(0.0, 0.0, 10.0, 10.0)
        assert box.contains((0.0, 0.0))
        assert box.contains((10.0, 10.0))
        assert not box.contains((10.0001, 5.0))

    def test_contains_bbox(self):
        outer = BBox(0.0, 0.0, 10.0, 10.0)
        assert outer.contains_bbox(BBox(1.0, 1.0, 9.0, 9.0))
        assert not outer.contains_bbox(BBox(1.0, 1.0, 11.0, 9.0))

    def test_intersects(self):
        a = BBox(0.0, 0.0, 5.0, 5.0)
        assert a.intersects(BBox(4.0, 4.0, 8.0, 8.0))
        assert a.intersects(BBox(5.0, 5.0, 8.0, 8.0))  # touching counts
        assert not a.intersects(BBox(6.0, 6.0, 8.0, 8.0))

    def test_min_distance_inside_is_zero(self):
        box = BBox(0.0, 0.0, 10.0, 10.0)
        assert box.min_distance((5.0, 5.0)) == 0.0

    def test_min_distance_to_edge(self):
        box = BBox(0.0, 0.0, 10.0, 10.0)
        assert box.min_distance((15.0, 5.0)) == pytest.approx(5.0)

    def test_min_distance_to_corner(self):
        box = BBox(0.0, 0.0, 10.0, 10.0)
        assert box.min_distance((13.0, 14.0)) == pytest.approx(5.0)

    def test_expand(self):
        box = BBox(0.0, 0.0, 10.0, 10.0).expand(2.0)
        assert box == BBox(-2.0, -2.0, 12.0, 12.0)

    def test_center_and_dims(self):
        box = BBox(0.0, 2.0, 10.0, 6.0)
        assert box.center == (5.0, 4.0)
        assert box.width == 10.0
        assert box.height == 4.0

    @given(st.lists(coords, min_size=1, max_size=30))
    def test_from_points_contains_all(self, points):
        box = BBox.from_points(points)
        assert all(box.contains(p) for p in points)

    @given(st.lists(coords, min_size=1, max_size=30), coords)
    def test_min_distance_lower_bounds_member_distance(self, points, q):
        """MINdist(q, bbox) <= dist(q, p) for every p inside — Theorem 4's basis."""
        box = BBox.from_points(points)
        lower = box.min_distance(q)
        for p in points:
            assert lower <= point_distance(q, p) + 1e-6


class TestPathAndDiameter:
    def test_path_length(self):
        assert path_length([(0.0, 0.0), (3.0, 4.0), (3.0, 10.0)]) == pytest.approx(11.0)

    def test_path_length_single_point(self):
        assert path_length([(1.0, 1.0)]) == 0.0

    def test_diameter_small(self):
        pts = [(0.0, 0.0), (1.0, 0.0), (0.0, 2.0)]
        assert diameter(pts) == pytest.approx(math.hypot(1.0, 2.0))

    def test_diameter_trivial(self):
        assert diameter([(5.0, 5.0)]) == 0.0
        assert diameter([]) == 0.0

    def test_diameter_large_input_approximation(self):
        # A straight line: the double-sweep approximation is exact.
        pts = [(float(i), 0.0) for i in range(1000)]
        assert diameter(pts) == pytest.approx(999.0)

    @given(st.lists(coords, min_size=2, max_size=50))
    def test_diameter_at_least_any_consecutive_gap(self, points):
        d = diameter(points)
        assert d >= point_distance(points[0], points[-1]) - 1e-6

    def test_segment_length_matches_point_distance(self):
        assert segment_length((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)
