"""Round-trip tests for trajectory I/O."""

import pytest

from repro.trajectory.io import (
    project_latlon,
    read_csv,
    read_tdrive_directory,
    write_csv,
    write_tdrive_directory,
)
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset


@pytest.fixture
def dataset():
    return TrajectoryDataset(
        [
            Trajectory("taxi1", [Point(0.0, 0.0, 0.0), Point(600.0, 0.0, 186.0)]),
            Trajectory("taxi2", [Point(100.5, -20.25, 10.0)]),
        ]
    )


class TestCsvRoundTrip:
    def test_round_trip(self, dataset, tmp_path):
        path = tmp_path / "fleet.csv"
        write_csv(dataset, path)
        loaded = read_csv(path)
        assert len(loaded) == 2
        for original, restored in zip(dataset, loaded, strict=True):
            assert original.object_id == restored.object_id
            assert len(original) == len(restored)
            for p, q in zip(original, restored, strict=True):
                assert p.coord == pytest.approx(q.coord, abs=1e-3)
                assert p.t == pytest.approx(q.t, abs=1e-3)

    def test_read_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_read_rejects_malformed_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("object_id,t,x,y\nobj,1.0,2.0\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_read_sorts_by_time(self, tmp_path):
        path = tmp_path / "unsorted.csv"
        path.write_text(
            "object_id,t,x,y\nobj,20.0,1.0,1.0\nobj,10.0,0.0,0.0\n"
        )
        loaded = read_csv(path)
        assert [p.t for p in loaded[0]] == [10.0, 20.0]


class TestTdriveDirectory:
    def test_round_trip(self, dataset, tmp_path):
        write_tdrive_directory(dataset, tmp_path / "fleet")
        loaded = read_tdrive_directory(tmp_path / "fleet")
        assert sorted(t.object_id for t in loaded) == ["taxi1", "taxi2"]
        assert len(loaded.by_id("taxi1")) == 2

    def test_empty_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        assert len(read_tdrive_directory(tmp_path / "empty")) == 0


class TestProjectLatLon:
    def test_empty(self):
        assert len(project_latlon([])) == 0

    def test_local_distances_preserved(self):
        # Two points ~1.11 km apart in latitude near Beijing.
        records = [
            ("t", 0.0, 39.90, 116.40),
            ("t", 60.0, 39.91, 116.40),
        ]
        ds = project_latlon(records)
        d = ds[0][0].distance_to(ds[0][1])
        assert d == pytest.approx(1111.9, rel=0.01)

    def test_explicit_origin_places_points(self):
        records = [("t", 0.0, 39.90, 116.40)]
        ds = project_latlon(records, origin=(39.90, 116.40))
        assert ds[0][0].coord == pytest.approx((0.0, 0.0), abs=1e-6)

    def test_groups_multiple_objects(self):
        records = [
            ("a", 0.0, 39.90, 116.40),
            ("b", 0.0, 39.95, 116.45),
            ("a", 60.0, 39.91, 116.41),
        ]
        ds = project_latlon(records)
        assert len(ds) == 2
        assert len(ds.by_id("a")) == 2
