"""Forward worklist dataflow over :mod:`repro.analysis.cfg` graphs.

The engine is deliberately small: a rule subclasses
:class:`Transfer`, describes its lattice through ``initial``/``join``,
and gives each statement's effect in ``transfer``, which returns *two*
post-states — the state on normal completion and the state when the
statement raises partway through. :func:`fixpoint` then iterates to
convergence: the in-state of a node joins, over its incoming edges,
the exception post-state of predecessors reached via ``exc``/``raise``
edges and the normal post-state otherwise. (That split is what makes
"``reserve`` happened but the very next line blew up" representable:
on the exception edge the reservation is still pending.)

States must be hashable-comparable values drawn from a finite lattice
(the built-in rules use ``dict[str, frozenset]`` environments — a
powerset lattice, so monotone joins terminate). The engine never
mutates a state it is handed; transfers must likewise return fresh
values rather than mutating their input.

After convergence a rule typically makes one more pass over the nodes
with :meth:`Solution.in_state` to emit findings — e.g. "a ``closed``
resource flows into this use" — keeping the transfer function pure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .cfg import CFG, Node

__all__ = ["Solution", "Transfer", "fixpoint"]

#: Edge kinds that carry the *exception* post-state of their source.
_EXC_KINDS = frozenset({"exc", "raise"})


class Transfer:
    """Pluggable transfer function: lattice + per-statement effect."""

    def initial(self) -> Any:
        """State entering the function (at the synthetic entry node)."""
        return {}

    def join(self, left: Any, right: Any) -> Any:
        """Least upper bound of two states.

        The default merges ``dict[key, frozenset]`` environments by
        unioning the sets key-wise — the shape every built-in rule
        uses. Override for other lattices.
        """
        if not left:
            return right
        if not right:
            return left
        merged = dict(left)
        for key, value in right.items():
            seen = merged.get(key)
            merged[key] = value if seen is None else seen | value
        return merged

    def transfer(self, node: Node, state: Any) -> tuple[Any, Any]:
        """``(post_normal, post_exception)`` after executing ``node``.

        The exception component is the state observed along outgoing
        ``exc``/``raise`` edges; the common conservative answer is the
        *pre*-state (the statement failed before completing its
        effect), which is what this identity default provides.
        """
        return state, state


@dataclass
class Solution:
    """Converged states, keyed by node index."""

    cfg: CFG
    transfer_fn: Transfer
    _in: dict[int, Any]

    def in_state(self, node: Node) -> Any:
        """State just before ``node`` executes (None if unreachable)."""
        return self._in.get(node.index)

    def reachable(self, node: Node) -> bool:
        return node.index in self._in


def fixpoint(cfg: CFG, transfer_fn: Transfer) -> Solution:
    """Run ``transfer_fn`` to convergence over ``cfg``."""
    preds: dict[int, list[tuple[int, str]]] = {}
    succs: dict[int, list[int]] = {}
    for edge in cfg.edges:
        preds.setdefault(edge.dst, []).append((edge.src, edge.kind))
        succs.setdefault(edge.src, []).append(edge.dst)

    in_states: dict[int, Any] = {cfg.entry.index: transfer_fn.initial()}
    out_states: dict[int, tuple[Any, Any]] = {}
    worklist: list[int] = [cfg.entry.index]
    queued = {cfg.entry.index}
    while worklist:
        index = worklist.pop(0)
        queued.discard(index)
        node = cfg.nodes[index]
        state = in_states[index]
        post = transfer_fn.transfer(node, state)
        if out_states.get(index) == post:
            continue
        out_states[index] = post
        post_normal, post_exc = post
        for dst in succs.get(index, ()):  # recompute each touched in-state
            joined: Any = None
            seeded = False
            if dst == cfg.entry.index:
                joined, seeded = transfer_fn.initial(), True
            for src, kind in preds.get(dst, ()):
                src_post = out_states.get(src)
                if src_post is None:
                    continue
                incoming = src_post[1] if kind in _EXC_KINDS else src_post[0]
                if not seeded:
                    joined, seeded = incoming, True
                else:
                    joined = transfer_fn.join(joined, incoming)
            if not seeded:
                continue
            if dst not in in_states or in_states[dst] != joined:
                in_states[dst] = joined
                if dst not in queued:
                    queued.add(dst)
                    worklist.append(dst)
    return Solution(cfg=cfg, transfer_fn=transfer_fn, _in=in_states)
