"""Tests for trajectory processing utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.trajectory.model import Point, Trajectory
from repro.trajectory.ops import (
    detect_dwells,
    resample,
    simplify,
    sliding_windows,
    split_trips,
)


def traj(coords, dt=60.0, object_id="t"):
    return Trajectory(
        object_id,
        [Point(float(x), float(y), dt * i) for i, (x, y) in enumerate(coords)],
    )


class TestSimplify:
    def test_collinear_points_removed(self):
        t = traj([(0, 0), (50, 0), (100, 0), (150, 0), (200, 0)])
        result = simplify(t, tolerance=1.0)
        assert [p.coord for p in result] == [(0, 0), (200, 0)]

    def test_corner_preserved(self):
        t = traj([(0, 0), (100, 0), (100, 100)])
        result = simplify(t, tolerance=5.0)
        assert (100.0, 0.0) in [p.coord for p in result]

    def test_small_deviation_dropped_large_kept(self):
        t = traj([(0, 0), (100, 3), (200, 0)])
        assert len(simplify(t, tolerance=5.0)) == 2
        assert len(simplify(t, tolerance=1.0)) == 3

    def test_short_trajectories_unchanged(self):
        assert len(simplify(traj([(0, 0)]), 10.0)) == 1
        assert len(simplify(traj([(0, 0), (5, 5)]), 10.0)) == 2

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            simplify(traj([(0, 0)]), -1.0)

    def test_endpoints_always_kept(self):
        t = traj([(0, 0), (10, 50), (20, -50), (30, 0)])
        result = simplify(t, tolerance=1000.0)
        assert result[0].coord == (0, 0)
        assert result[len(result) - 1].coord == (30, 0)

    @given(
        st.lists(
            st.tuples(st.integers(-1000, 1000), st.integers(-1000, 1000)),
            min_size=3,
            max_size=30,
        ),
        st.floats(min_value=0.0, max_value=500.0),
    )
    def test_output_is_subsequence(self, coords, tolerance):
        t = traj(coords)
        result = simplify(t, tolerance)
        original = [p.coord for p in t]
        simplified = [p.coord for p in result]
        it = iter(original)
        assert all(c in it for c in simplified)  # subsequence check


class TestResample:
    def test_fixed_interval(self):
        t = traj([(0, 0), (60, 0), (120, 0)], dt=60.0)
        result = resample(t, interval=30.0)
        times = [p.t for p in result]
        assert times == [0.0, 30.0, 60.0, 90.0, 120.0]

    def test_interpolates_positions(self):
        t = traj([(0, 0), (60, 0)], dt=60.0)
        result = resample(t, interval=30.0)
        assert result[1].coord == pytest.approx((30.0, 0.0))

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            resample(traj([(0, 0)]), 0.0)

    def test_short_input_copied(self):
        t = traj([(5, 5)])
        result = resample(t, 10.0)
        assert [p.coord for p in result] == [(5, 5)]

    def test_irregular_input_times(self):
        points = [Point(0, 0, 0.0), Point(100, 0, 10.0), Point(200, 0, 100.0)]
        t = Trajectory("x", points)
        result = resample(t, interval=45.0)
        assert [p.t for p in result] == [0.0, 45.0, 90.0]
        # 45s is between t=10 and t=100: x between 100 and 200.
        assert 100.0 < result[1].x < 200.0


class TestDetectDwells:
    def test_detects_stop(self):
        coords = [(0, 0), (600, 0), (610, 5), (605, -5), (615, 0), (1200, 0)]
        t = traj(coords, dt=120.0)
        dwells = detect_dwells(t, radius=50.0, min_duration=300.0)
        assert len(dwells) == 1
        dwell = dwells[0]
        assert dwell.start == 1
        assert dwell.end == 4
        assert dwell.n_samples == 4
        assert dwell.duration == pytest.approx(360.0)
        assert dwell.centre[0] == pytest.approx(607.5)

    def test_no_dwell_when_moving(self):
        t = traj([(i * 500, 0) for i in range(10)], dt=60.0)
        assert detect_dwells(t, radius=50.0, min_duration=60.0) == []

    def test_short_stop_ignored(self):
        coords = [(0, 0), (600, 0), (605, 0), (1200, 0)]
        t = traj(coords, dt=60.0)
        assert detect_dwells(t, radius=50.0, min_duration=300.0) == []

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            detect_dwells(traj([(0, 0)]), radius=0.0)
        with pytest.raises(ValueError):
            detect_dwells(traj([(0, 0)]), min_duration=-1.0)

    def test_empty_trajectory(self):
        assert detect_dwells(Trajectory("x")) == []


class TestSplitTrips:
    def test_splits_at_dwell(self):
        coords = (
            [(i * 500, 0) for i in range(5)]
            + [(2500, 0)] * 5  # dwell
            + [(2500, i * 500) for i in range(1, 6)]
        )
        t = traj(coords, dt=120.0)
        trips = split_trips(t, radius=50.0, min_duration=300.0)
        assert len(trips) == 2
        assert trips[0].object_id == "t#0"
        assert trips[1].object_id == "t#1"

    def test_no_dwell_single_trip(self):
        t = traj([(i * 500, 0) for i in range(6)], dt=60.0)
        trips = split_trips(t, radius=50.0, min_duration=300.0)
        assert len(trips) == 1
        assert len(trips[0]) == 6

    def test_tiny_trips_discarded(self):
        t = traj([(0, 0)])
        assert split_trips(t) == []


class TestSlidingWindows:
    def test_non_overlapping(self):
        t = traj([(i, 0) for i in range(10)])
        windows = sliding_windows(t, size=4)
        assert [len(w) for w in windows] == [4, 4]
        assert windows[0].object_id == "t@0"
        assert windows[1].object_id == "t@4"

    def test_overlapping(self):
        t = traj([(i, 0) for i in range(6)])
        windows = sliding_windows(t, size=4, stride=2)
        assert len(windows) == 2
        assert windows[1][0].coord == (2.0, 0.0)

    def test_window_larger_than_trajectory(self):
        t = traj([(0, 0), (1, 1)])
        windows = sliding_windows(t, size=10)
        assert len(windows) == 1
        assert len(windows[0]) == 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            sliding_windows(traj([(0, 0)]), size=0)
        with pytest.raises(ValueError):
            sliding_windows(traj([(0, 0)]), size=2, stride=0)
