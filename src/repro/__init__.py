"""repro — Frequency-based randomization for DP spatial trajectory publishing.

A reproduction of Jin, Hua, Ruan, Zhou, *"Frequency-based Randomization
for Guaranteeing Differential Privacy in Spatial Trajectories"* (ICDE
2022), including the signature-based DP mechanisms, trajectory
modification machinery, hierarchical grid index, every baseline the
paper compares against, the attack models it evaluates with, and a
synthetic T-Drive-like data substrate.
"""

from repro.trajectory.model import Point, Trajectory, TrajectoryDataset
from repro.datagen.generator import FleetConfig, FleetResult, generate_fleet
from repro.datagen.road_network import RoadNetwork, build_road_network
from repro.core.pipeline import GL, FrequencyAnonymizer, PureG, PureL
from repro.api import MethodSpec, RunResult, publish, run

__all__ = [
    "FleetConfig",
    "FleetResult",
    "FrequencyAnonymizer",
    "GL",
    "MethodSpec",
    "Point",
    "PureG",
    "PureL",
    "RoadNetwork",
    "RunResult",
    "Trajectory",
    "TrajectoryDataset",
    "build_road_network",
    "generate_fleet",
    "publish",
    "run",
]

__version__ = "1.0.0"
