"""SVG rendering without external dependencies.

:class:`SvgCanvas` maps planar metre coordinates into an SVG viewport
(y flipped so north is up) and offers polyline/circle primitives;
:func:`render_fleet` and :func:`render_comparison` are one-call
conveniences used by the examples.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.geo.geometry import BBox, Coord
from repro.datagen.road_network import RoadNetwork
from repro.trajectory.model import Trajectory, TrajectoryDataset

#: Qualitative palette cycled across trajectories.
PALETTE = (
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
)


class SvgCanvas:
    """An SVG drawing surface over a planar bounding box."""

    def __init__(self, bbox: BBox, width: int = 800, margin: float = 20.0) -> None:
        if width < 10:
            raise ValueError("width too small")
        self.bbox = bbox
        self.width = width
        self.margin = margin
        aspect = bbox.height / bbox.width if bbox.width > 0 else 1.0
        self.height = max(int(width * aspect), 10)
        self._elements: list[str] = []

    # -- coordinate mapping ----------------------------------------------------

    def transform(self, p: Coord) -> tuple[float, float]:
        """Metres -> SVG pixels (y axis flipped)."""
        sx = (self.width - 2 * self.margin) / max(self.bbox.width, 1e-9)
        sy = (self.height - 2 * self.margin) / max(self.bbox.height, 1e-9)
        x = self.margin + (p[0] - self.bbox.min_x) * sx
        y = self.height - self.margin - (p[1] - self.bbox.min_y) * sy
        return (x, y)

    # -- primitives ---------------------------------------------------------------

    def polyline(
        self,
        points: Sequence[Coord],
        color: str = "#333333",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        if len(points) < 2:
            return
        coords = " ".join(
            f"{x:.1f},{y:.1f}" for x, y in (self.transform(p) for p in points)
        )
        self._elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="{stroke_width}" stroke-opacity="{opacity}" '
            f'stroke-linejoin="round" stroke-linecap="round"/>'
        )

    def line(
        self,
        a: Coord,
        b: Coord,
        color: str = "#999999",
        stroke_width: float = 0.5,
        opacity: float = 1.0,
    ) -> None:
        (x1, y1), (x2, y2) = self.transform(a), self.transform(b)
        self._elements.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{color}" stroke-width="{stroke_width}" '
            f'stroke-opacity="{opacity}"/>'
        )

    def circle(
        self,
        centre: Coord,
        radius: float = 3.0,
        color: str = "#d62728",
        opacity: float = 1.0,
    ) -> None:
        x, y = self.transform(centre)
        self._elements.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius}" '
            f'fill="{color}" fill-opacity="{opacity}"/>'
        )

    def text(self, position: Coord, label: str, size: int = 12, color: str = "#000") -> None:
        x, y = self.transform(position)
        self._elements.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'fill="{color}" font-family="sans-serif">{label}</text>'
        )

    # -- composites -----------------------------------------------------------------

    def draw_network(
        self, network: RoadNetwork, color: str = "#cccccc", stroke_width: float = 0.6
    ) -> None:
        for edge in network.edges:
            self.line(
                network.node_coord(edge.u),
                network.node_coord(edge.v),
                color=color,
                stroke_width=stroke_width,
            )

    def draw_trajectory(
        self,
        trajectory: Trajectory,
        color: str = PALETTE[0],
        stroke_width: float = 1.4,
        opacity: float = 0.85,
    ) -> None:
        self.polyline(
            trajectory.coords(), color=color, stroke_width=stroke_width,
            opacity=opacity,
        )

    def draw_dataset(
        self, dataset: TrajectoryDataset, stroke_width: float = 1.2, opacity: float = 0.6
    ) -> None:
        for index, trajectory in enumerate(dataset):
            self.draw_trajectory(
                trajectory,
                color=PALETTE[index % len(PALETTE)],
                stroke_width=stroke_width,
                opacity=opacity,
            )

    def draw_markers(
        self, coords: Iterable[Coord], radius: float = 3.5, color: str = "#d62728"
    ) -> None:
        for coord in coords:
            self.circle(coord, radius=radius, color=color)

    # -- output ------------------------------------------------------------------------

    def to_string(self) -> str:
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'  <rect width="100%" height="100%" fill="white"/>\n'
            f"  {body}\n</svg>\n"
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_string())
        return path


def render_fleet(
    dataset: TrajectoryDataset,
    network: RoadNetwork | None = None,
    markers: Iterable[Coord] = (),
    width: int = 800,
) -> str:
    """One-call rendering of a dataset (plus optional network/markers)."""
    bbox = network.bbox() if network is not None else dataset.bbox()
    canvas = SvgCanvas(bbox.expand(bbox.width * 0.02 + 1.0), width=width)
    if network is not None:
        canvas.draw_network(network)
    canvas.draw_dataset(dataset)
    canvas.draw_markers(markers)
    return canvas.to_string()


def render_comparison(
    original: Trajectory,
    anonymized: Trajectory,
    network: RoadNetwork | None = None,
    width: int = 800,
) -> str:
    """Original (blue) vs anonymized (orange) overlay of one trajectory."""
    coords = original.coords() + anonymized.coords()
    bbox = network.bbox() if network is not None else BBox.from_points(coords)
    canvas = SvgCanvas(bbox.expand(bbox.width * 0.02 + 1.0), width=width)
    if network is not None:
        canvas.draw_network(network)
    canvas.draw_trajectory(original, color=PALETTE[0], stroke_width=2.0)
    canvas.draw_trajectory(anonymized, color=PALETTE[1], stroke_width=1.4)
    return canvas.to_string()
