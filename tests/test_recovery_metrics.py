"""Direct unit tests for route-based recovery scoring."""

import pytest

from repro.attacks.hmm import MatchResult
from repro.attacks.recovery import RecoveryOutput
from repro.datagen.road_network import RoadNetwork
from repro.metrics.recovery import RecoveryMetrics, score_recovery
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset


@pytest.fixture
def line_network():
    """Five nodes on a line, 100 m apart: edges (0,1),(1,2),(2,3),(3,4)."""
    coords = [(i * 100.0, 0.0) for i in range(5)]
    edges = [(i, i + 1) for i in range(4)]
    return RoadNetwork(coords, edges)


def output_with(edge_keys_list):
    output = RecoveryOutput()
    for keys in edge_keys_list:
        output.results.append(MatchResult(candidates=[], edge_keys=keys))
    return output


def one_trajectory_dataset(coords=((0, 0), (400, 0))):
    return TrajectoryDataset(
        [Trajectory("a", [Point(float(x), float(y), 60.0 * i) for i, (x, y) in enumerate(coords)])]
    )


class TestRouteScores:
    def test_perfect_recovery(self, line_network):
        truth = {"a": [(0, 1), (1, 2), (2, 3), (3, 4)]}
        recovery = output_with([[(0, 1), (1, 2), (2, 3), (3, 4)]])
        metrics = score_recovery(
            line_network, one_trajectory_dataset(), truth, recovery
        )
        assert metrics.precision == pytest.approx(1.0)
        assert metrics.recall == pytest.approx(1.0)
        assert metrics.f_score == pytest.approx(1.0)
        assert metrics.rmf == pytest.approx(0.0)
        assert metrics.accuracy == pytest.approx(1.0)

    def test_half_recovered(self, line_network):
        truth = {"a": [(0, 1), (1, 2), (2, 3), (3, 4)]}
        recovery = output_with([[(0, 1), (1, 2)]])
        metrics = score_recovery(
            line_network, one_trajectory_dataset(), truth, recovery
        )
        assert metrics.precision == pytest.approx(1.0)
        assert metrics.recall == pytest.approx(0.5)
        assert metrics.f_score == pytest.approx(2 / 3)
        assert metrics.rmf == pytest.approx(0.5)  # 200 m missed / 400 m

    def test_hallucinated_detour_raises_rmf(self, line_network):
        """Recovered = truth + wrong edges: precision drops, RMF grows."""
        truth = {"a": [(0, 1), (1, 2)]}
        recovery = output_with([[(0, 1), (1, 2), (2, 3), (3, 4)]])
        metrics = score_recovery(
            line_network,
            one_trajectory_dataset(coords=((0, 0), (200, 0))),
            truth,
            recovery,
        )
        assert metrics.recall == pytest.approx(1.0)
        assert metrics.precision == pytest.approx(0.5)
        assert metrics.rmf == pytest.approx(1.0)  # 200 m added / 200 m truth

    def test_rmf_can_exceed_one(self, line_network):
        """The paper notes RMF > 1 for its models — the metric allows it."""
        truth = {"a": [(0, 1)]}
        recovery = output_with([[(1, 2), (2, 3), (3, 4)]])
        metrics = score_recovery(
            line_network,
            one_trajectory_dataset(coords=((0, 0), (100, 0))),
            truth,
            recovery,
        )
        assert metrics.rmf == pytest.approx(4.0)  # (300 added + 100 missed)/100

    def test_empty_recovery(self, line_network):
        truth = {"a": [(0, 1), (1, 2)]}
        recovery = output_with([[]])
        metrics = score_recovery(
            line_network, one_trajectory_dataset(), truth, recovery
        )
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f_score == 0.0
        assert metrics.accuracy == 0.0

    def test_point_accuracy_tolerance(self, line_network):
        truth = {"a": [(0, 1)]}
        # Original samples 50 m off the recovered edge.
        dataset = one_trajectory_dataset(coords=((0, 50), (100, 50)))
        recovery = output_with([[(0, 1)]])
        tight = score_recovery(line_network, dataset, truth, recovery, tolerance=10.0)
        loose = score_recovery(line_network, dataset, truth, recovery, tolerance=75.0)
        assert tight.accuracy == pytest.approx(0.0)
        assert loose.accuracy == pytest.approx(1.0)

    def test_misaligned_sizes_rejected(self, line_network):
        with pytest.raises(ValueError):
            score_recovery(
                line_network, one_trajectory_dataset(), {}, output_with([])
            )

    def test_averages_across_trajectories(self, line_network):
        dataset = TrajectoryDataset(
            [
                Trajectory("a", [Point(0, 0, 0.0), Point(100, 0, 60.0)]),
                Trajectory("b", [Point(200, 0, 0.0), Point(300, 0, 60.0)]),
            ]
        )
        truth = {"a": [(0, 1)], "b": [(2, 3)]}
        recovery = output_with([[(0, 1)], []])  # perfect + nothing
        metrics = score_recovery(line_network, dataset, truth, recovery)
        assert metrics.recall == pytest.approx(0.5)
        assert metrics.f_score == pytest.approx(0.5)

    def test_metrics_dataclass_fields(self):
        metrics = RecoveryMetrics(1.0, 0.5, 0.66, 0.5, 0.9)
        assert metrics.precision == 1.0
        assert metrics.rmf == 0.5
