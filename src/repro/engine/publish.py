"""The whole-dataset streaming publisher.

``BatchAnonymizer.anonymize_stream`` over ``chunked()`` readers treats
every chunk as its own release: each chunk draws its own noisy TF over
its own candidate set, so the published stream is k independent DP
releases with no shared target and no budget story for the dataset as
a whole.  :class:`StreamPublisher` closes that gap with a **two-pass**
protocol that publishes one consistent ε-DP release of the entire
(possibly larger-than-memory) dataset:

* **Pass 1 — estimate.**  Stream the chunks **once**, accumulating the
  dataset-wide TF distribution, the dataset size ``N``, and the union
  candidate set P (chunk-local signature extraction), while **spilling**
  each parsed chunk to a staging directory
  (:mod:`repro.engine.spill`) so the raw source is never re-opened or
  re-parsed.  Once accumulation finishes, draw **one** noisy TF over P
  with the global mechanism's ε_G — the only whole-dataset mechanism
  invocation.
* **Pass 2 — realise.**  Apportion each location's shared TF delta
  across the chunks (balanced by default — see :meth:`chunk_targets`),
  replay each chunk from its spill, and anonymize it via the existing
  wave pipeline with its apportioned target injected (``tf_target``) —
  pure modification, no fresh TF draw.  The local PF stage runs per
  chunk as usual.

The two passes are **pipelined**: pass-2 jobs dispatch through
:func:`~repro.engine.pool.parallel_map_stream`, so with
``publish workers > 1`` spilled chunks are realised concurrently
across a process pool (workers receive the spec, the apportioned
target, and the shared ``base_seed``, and ship back CSV bytes plus the
chunk report), behind a bounded in-flight ``window`` that caps both
memory and spill-disk usage.  When the spec has no global mechanism
there is no shared draw to wait for, so realisation of chunk k starts
as soon as its spill lands, while pass 1 is still parsing chunk k+1;
with a global mechanism the one shared TF draw necessarily gates
realisation (the target depends on the whole stream), but only
realisation — parsing, accumulation, and spilling never stall on it.

Accounting (:mod:`repro.core.accounting`): the shared TF draw is one
*sequential* draw over the whole dataset; the per-chunk local PF draws
cover **disjoint** trajectory sets and compose in *parallel*, so the
end-to-end budget is ε_G + max(ε_L) = ε_G + ε_L — exactly the declared
split, independent of the number of chunks or the executor that
realised them.  The merged :class:`PublishReport` carries the full
:class:`CompositionLedger`.

Determinism: the publisher reserves one call index and derives one
``base_seed`` shared by every chunk (per-trajectory local streams are
keyed by object id, so chunks never collide).  Output order and bytes
are identical across serial, thread, and process executors for the
same seed, and a single-chunk publish is **byte-identical** to
``anonymize`` on the same seeded configuration.
"""

from __future__ import annotations

import csv
import io
import random
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.core.accounting import WHOLE_DATASET, CompositionLedger, apportion
from repro.core.global_mechanism import TFPerturbation
from repro.core.modification import ModificationReport
from repro.core.pipeline import (
    AnonymizationReport,
    FrequencyAnonymizer,
    derive_seed,
)
from repro.engine.batch import BatchAnonymizer
from repro.engine.pool import (
    EXECUTOR_KINDS,
    parallel_map_stream,
    resolve_workers,
)
from repro.engine.spill import SpillStore, read_spill
from repro.trajectory.io import write_csv_rows
from repro.trajectory.model import LocationKey, TrajectoryDataset

if TYPE_CHECKING:  # engine sits below repro.api; runtime imports are lazy
    from repro.api.spec import MethodSpec

#: Chunk sink: receives each anonymized chunk as soon as it is ready
#: (write it out, ship it, …) so the publisher never holds the stream.
ChunkSink = Callable[[TrajectoryDataset, AnonymizationReport], None]

#: Byte sink: like :data:`ChunkSink` but receives the chunk's CSV data
#: rows already encoded (the exact ``write_csv_rows`` bytes). This is
#: the fast path for file output — process workers encode rows
#: worker-side, so the parent only writes bytes.
ChunkByteSink = Callable[[bytes, AnonymizationReport], None]

#: A chunk source: a zero-argument factory returning one iteration over
#: the chunks. The publisher calls it **exactly once** per publish —
#: pass 1 spills every parsed chunk, so a one-shot stream (a socket, a
#: decompressing reader) is a valid source.
ChunkSource = Callable[[], Iterable[TrajectoryDataset]]

#: Label of the shared whole-dataset TF draw in the ledger.
SHARED_TF_LABEL = "global TF randomization"
#: Parallel group of the per-chunk local PF draws.
LOCAL_GROUP = "local PF randomization"

#: How :meth:`StreamPublisher.chunk_targets` splits shared TF deltas.
APPORTIONMENT_KINDS = ("balanced", "proportional")


def chunk_source(
    ref, chunk_size: int, registry=None
) -> ChunkSource:
    """A chunk source over any dataset reference.

    ``ref`` is anything :func:`repro.data.registry.stream_dataset`
    accepts (planar CSV path, artifact directory, or registry
    ``name[@version]``). The publisher opens the source exactly once
    and streams it with bounded memory.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    from repro.data.registry import stream_dataset
    from repro.data.stream import chunked

    def factory() -> Iterator[TrajectoryDataset]:
        return chunked(stream_dataset(ref, registry), chunk_size)

    return factory


def csv_chunk_bytes(dataset: TrajectoryDataset) -> bytes:
    """The chunk's CSV data rows (no header) as bytes.

    Exactly the bytes ``write_csv_rows`` would put on disk — one
    definition of the row format, so worker-encoded chunks cannot
    drift from the serial writer.
    """
    buffer = io.StringIO(newline="")
    write_csv_rows(csv.writer(buffer), dataset)
    return buffer.getvalue().encode("utf-8")


@dataclass(slots=True)
class SharedTFEstimate:
    """Outcome of pass 1: the one whole-dataset noisy TF draw."""

    #: The shared perturbation over the union candidate set P, or
    #: ``None`` when the global mechanism is disabled (PureL-style
    #: publishing needs no TF target — parallel local releases only).
    perturbation: TFPerturbation | None
    #: Trajectories seen across all chunks.
    n_total: int
    #: Per-chunk trajectory counts, in stream order.
    chunk_sizes: list[int]
    #: Per-chunk *nonzero* TF restricted to P, in stream order —
    #: sparse, so memory stays O(occupied locations), not O(k·|P|).
    chunk_tf: list[dict[LocationKey, int]]
    #: The reserved per-call noise-stream index of this publish.
    call_index: int
    #: The noise base every chunk of pass 2 shares.
    base_seed: int

    @property
    def chunk_count(self) -> int:
        return len(self.chunk_sizes)


@dataclass(slots=True)
class PublishReport:
    """Everything observable about one published stream."""

    #: End-to-end ε composed from the ledger (== the declared split).
    epsilon_total: float
    #: The composition ledger behind :attr:`epsilon_total`.
    accounting: CompositionLedger
    #: Chunks published.
    chunk_count: int
    #: Trajectories published across all chunks.
    trajectories: int
    #: |P| — locations of the shared TF target (0 when global is off).
    tf_locations: int
    #: Sum of the per-chunk modification costs.
    utility_loss: float
    #: Per-chunk summaries, in stream order.
    chunks: list[dict] = field(default_factory=list)
    #: Provenance: the configuration that produced this stream.
    spec: "MethodSpec | None" = None
    #: Wall-clock seconds (both passes).
    seconds: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable merged report (the artifact's audit trail)."""
        return {
            "method": (
                None
                if self.spec is None
                else {**self.spec.to_dict(), "digest": self.spec.digest}
            ),
            "epsilon_total": self.epsilon_total,
            "accounting": self.accounting.to_dict(),
            "chunk_count": self.chunk_count,
            "trajectories": self.trajectories,
            "tf_locations": self.tf_locations,
            "utility_loss_m": self.utility_loss,
            "chunks": list(self.chunks),
            "seconds": self.seconds,
        }


@dataclass(frozen=True, slots=True)
class _ChunkJob:
    """One pass-2 realisation job — plain data, crosses process lines."""

    index: int
    #: Spill file holding the parsed chunk.
    path: str
    #: Trajectory count pass 1 recorded (spill validation pins it).
    expected: int
    #: ``FrequencyAnonymizer`` constructor kwargs for worker-side
    #: rebuild, or ``None`` on the in-process path.
    spec_params: dict | None
    #: The chunk's apportioned TF target (``None`` without a global).
    target: TFPerturbation | None
    #: The publish-wide noise base.
    base_seed: int
    #: Ledger scope of this chunk's local draws.
    scope: str
    #: Whether the caller's sinks need the dataset / the CSV bytes.
    want_dataset: bool
    want_bytes: bool


@dataclass(slots=True)
class _ChunkOutcome:
    """What comes back from realising one chunk."""

    index: int
    trajectories: int
    report: AnonymizationReport
    dataset: TrajectoryDataset | None
    payload: bytes | None


def _package(
    job: _ChunkJob,
    result: TrajectoryDataset,
    report: AnonymizationReport,
) -> _ChunkOutcome:
    return _ChunkOutcome(
        index=job.index,
        trajectories=len(result),
        report=report,
        dataset=result if job.want_dataset else None,
        payload=csv_chunk_bytes(result) if job.want_bytes else None,
    )


def _realize_spilled_chunk(job: _ChunkJob) -> _ChunkOutcome:
    """Worker: replay one spilled chunk and realise its target.

    Runs in a pool worker (its own process under the default
    executor): rebuilds the pipeline from the job's constructor
    kwargs, loads and validates the spill, and realises the injected
    target with the shared ``base_seed`` — exactly the serial
    publisher's per-chunk call, so the bytes cannot differ.
    """
    chunk = read_spill(
        job.path, index=job.index, expected_trajectories=job.expected
    )
    assert job.spec_params is not None
    anonymizer = FrequencyAnonymizer(**job.spec_params)
    result, report = anonymizer.anonymize_with_report(
        chunk,
        tf_target=job.target,
        base_seed=job.base_seed,
        scope=job.scope,
    )
    return _package(job, result, report)


class _PassOneAccumulator:
    """Streaming pass-1 state: sizes, TF partials, candidate union."""

    def __init__(self, anonymizer: FrequencyAnonymizer) -> None:
        self._anonymizer = anonymizer
        self._needs_tf = anonymizer._global is not None
        self._global_tf: Counter = Counter()
        self._candidate_set: set[LocationKey] = set()
        self._chunk_tfs: list[Counter] = []
        self.sizes: list[int] = []

    def add(self, chunk: TrajectoryDataset) -> None:
        self.sizes.append(len(chunk))
        if not self._needs_tf:
            # Without a global mechanism there is no shared target to
            # estimate; only the chunk sizes matter, so skip the full
            # counting scan of the stream.
            return
        tf = chunk.trajectory_frequencies()
        self._chunk_tfs.append(tf)
        self._global_tf.update(tf)
        index = self._anonymizer.extractor.extract(chunk, tf=tf)
        self._candidate_set.update(index.candidate_set)

    def finish(
        self, call_index: int, base_seed: int, ledger: CompositionLedger
    ) -> SharedTFEstimate:
        """Draw the shared noisy TF over everything accumulated.

        The one whole-dataset draw is recorded in ``ledger`` at draw
        time — the ε_G spend and the noise it bought never separate.
        """
        if not self.sizes:
            raise ValueError("cannot publish an empty stream (no chunks)")
        n_total = sum(self.sizes)
        anonymizer = self._anonymizer
        perturbation = None
        if self._needs_tf:
            shared_tf = {
                loc: self._global_tf[loc] for loc in self._candidate_set
            }
            rng = random.Random(derive_seed(base_seed, "global"))
            perturbation = anonymizer._global.perturb(
                shared_tf, n_total, rng
            )
            ledger.record(
                SHARED_TF_LABEL,
                anonymizer.epsilon_global,
                scope=WHOLE_DATASET,
            )
        restricted = [
            {
                loc: count
                for loc, count in tf.items()
                if loc in self._candidate_set
            }
            for tf in self._chunk_tfs
        ]
        return SharedTFEstimate(
            perturbation=perturbation,
            n_total=n_total,
            chunk_sizes=list(self.sizes),
            chunk_tf=restricted,
            call_index=call_index,
            base_seed=base_seed,
        )


class StreamPublisher:
    """Pipelined two-pass whole-dataset publisher over a chunked stream.

    Parameters
    ----------
    engine:
        A :class:`~repro.engine.batch.BatchAnonymizer` (the in-process
        path then shards each chunk's local stage and reuses the
        engine's shared wave-planning pool across chunks) or a bare
        :class:`~repro.core.pipeline.FrequencyAnonymizer`.  The
        wrapped pipeline's ``epsilon_global`` / ``epsilon_local`` *are*
        the budget split: ε_G buys the one shared TF estimate of
        pass 1, ε_L the parallel per-chunk local randomization of
        pass 2.
    workers:
        Pass-2 fan-out: how many spilled chunks to realise at once.
        ``1`` (default) keeps realisation in-process; ``0``/``None``
        means one worker per CPU core. Output bytes and order are
        identical for every value.
    executor:
        ``"process"`` (default), ``"thread"``, or ``"serial"`` — the
        pool kind behind ``workers`` (see :mod:`repro.engine.pool`).
    spill_dir:
        Where pass 1 stages parsed chunks. Default: a private tempdir,
        removed when the publish finishes (success or failure). An
        explicit directory (e.g. registry staging space) has its
        staged files cleaned the same way.
    window:
        In-flight bound for the pass-1/pass-2 pipeline — at most this
        many chunks are spilled-but-unpublished at once, capping
        memory and spill disk. Default ``max(4, 2 * workers)``.
    apportionment:
        ``"balanced"`` (default) or ``"proportional"`` — see
        :meth:`chunk_targets`.
    """

    def __init__(
        self,
        engine: BatchAnonymizer | FrequencyAnonymizer,
        *,
        workers: int | None = 1,
        executor: str = "process",
        spill_dir=None,
        window: int | None = None,
        apportionment: str = "balanced",
    ) -> None:
        if isinstance(engine, BatchAnonymizer):
            self.engine = engine
            self.anonymizer = engine.anonymizer
        elif isinstance(engine, FrequencyAnonymizer):
            self.engine = engine
            self.anonymizer = engine
        else:
            raise TypeError(
                f"StreamPublisher needs a FrequencyAnonymizer or "
                f"BatchAnonymizer, got {type(engine).__name__}"
            )
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTOR_KINDS}"
            )
        if apportionment not in APPORTIONMENT_KINDS:
            raise ValueError(
                f"unknown apportionment {apportionment!r}; choose from "
                f"{APPORTIONMENT_KINDS}"
            )
        if window is not None and window < 1:
            raise ValueError(f"window must be at least 1, got {window}")
        if self.anonymizer._global is not None and not self.anonymizer.global_first:
            # The shared TF is estimated over the *raw* stream; with
            # local-first ordering the pipeline would perturb the TF of
            # the locally-modified data instead, so the two would
            # silently diverge (and single-chunk byte-identity fail).
            raise ValueError(
                "StreamPublisher requires global_first=True when the "
                "global mechanism is enabled: the shared TF estimate is "
                "drawn over the raw stream"
            )
        self.workers = resolve_workers(workers)
        self.executor = executor
        self.spill_dir = spill_dir
        self.window = (
            max(4, 2 * self.workers) if window is None else window
        )
        self.apportionment = apportionment
        self._closed = False

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Terminal close, mirroring ``BatchAnonymizer.close``.

        Spill staging is scoped to each :meth:`publish` call and is
        cleaned there (success and failure alike); ``close`` marks the
        publisher itself unusable so long-lived holders get the same
        closed-means-closed contract as the batch engine. Idempotent.
        """
        self._closed = True

    def __enter__(self) -> "StreamPublisher":
        if self._closed:
            raise RuntimeError(
                "StreamPublisher is closed; build a new publisher instead "
                "of reusing a closed one"
            )
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "StreamPublisher is closed; build a new publisher instead "
                "of reusing a closed one"
            )

    # -- pass 1 -----------------------------------------------------------------

    def estimate(self, chunks: Iterable[TrajectoryDataset]) -> SharedTFEstimate:
        """Stream the chunks once; draw the shared noisy TF over P.

        The union candidate set P comes from chunk-local signature
        extraction; the TF values over P are the exact dataset-wide
        counts, so a single-chunk stream reproduces precisely the
        ``(tf, rng)`` pair the plain pipeline would perturb — the
        byte-identity anchor. (:meth:`publish` runs the same
        accumulation inline with spilling; this standalone form is the
        analysis/inspection surface.)
        """
        accumulator = _PassOneAccumulator(self.anonymizer)
        for chunk in chunks:
            if len(chunk) == 0:
                continue
            accumulator.add(chunk)
        if not accumulator.sizes:
            raise ValueError("cannot publish an empty stream (no chunks)")
        call_index = self.anonymizer.reserve_call_index()
        # estimate() exposes pass 1 alone; the ledger that reaches the
        # caller is built by publish(), so this one is scratch.
        return accumulator.finish(
            call_index,
            self.anonymizer.base_seed_for(call_index),
            CompositionLedger(),
        )

    def chunk_targets(self, estimate: SharedTFEstimate) -> list[TFPerturbation] | None:
        """Apportion the shared TF delta into one target per chunk.

        Every location's shared delta splits across chunks so that the
        per-chunk deltas sum *exactly* to the shared delta and every
        per-chunk target stays inside ``[0, |chunk|]`` — TF decreases
        bounded by how many of the chunk's trajectories contain the
        location (you cannot delete what is not there), increases by
        how many do *not* (an insertion targets a trajectory without
        the location). Two shapes satisfy that invariant:

        * ``"balanced"`` (default): give each location's whole delta
          to as *few* chunks as possible, preferring the chunk with
          the least delta assigned so far. Chunks end up with
          near-equal total work but far fewer *distinct* perturbed
          locations each, and wave planning scales with distinct
          locations — measured ~20% less pass-2 wall-clock at paper
          scale than proportional spreading, which is what flips
          shared-TF publishing past per-chunk throughput.
        * ``"proportional"``: spread each delta across all chunks
          proportionally to capacity with largest-remainder rounding —
          the historical behaviour, closest to "every chunk looks like
          a miniature of the dataset".

        A single chunk receives the shared perturbation verbatim under
        either mode.
        """
        shared = estimate.perturbation
        if shared is None:
            return None
        k = estimate.chunk_count
        deltas: list[dict[LocationKey, int]] = [{} for _ in range(k)]
        load = [0] * k
        balanced = self.apportionment == "balanced"
        for loc in sorted(shared.original):
            d = shared.perturbed[loc] - shared.original[loc]
            if d == 0:
                continue
            origs = [estimate.chunk_tf[i].get(loc, 0) for i in range(k)]
            if d > 0:
                caps = [estimate.chunk_sizes[i] - origs[i] for i in range(k)]
            else:
                caps = origs
            if balanced:
                shares = self._balanced_shares(abs(d), caps, load)
            else:
                shares = apportion(abs(d), caps, caps)
            for i, share in enumerate(shares):
                if share:
                    deltas[i][loc] = share if d > 0 else -share
                    load[i] += share
        targets = []
        for i in range(k):
            # Sparse: the chunk's own nonzero TF plus any location its
            # delta share touches — never the full candidate set per
            # chunk (a single chunk still receives all of P, because
            # every candidate location has a nonzero dataset TF).
            original = dict(estimate.chunk_tf[i])
            perturbed = dict(original)
            for loc, share in deltas[i].items():
                perturbed[loc] = perturbed.get(loc, 0) + share
                original.setdefault(loc, 0)
            targets.append(
                TFPerturbation(
                    original=original,
                    perturbed=perturbed,
                    epsilon=shared.epsilon,
                )
            )
        return targets

    @staticmethod
    def _balanced_shares(
        units: int, caps: list[int], load: list[int]
    ) -> list[int]:
        """Concentrate ``units`` on the least-loaded chunks, capped."""
        shares = [0] * len(caps)
        remaining = units
        for i in sorted(range(len(caps)), key=lambda i: (load[i], i)):
            if remaining == 0:
                break
            take = min(caps[i], remaining)
            if take:
                shares[i] = take
                remaining -= take
        if remaining:
            # Unreachable: the mechanism clamps the shared TF into
            # [0, N], so total capacity always covers the delta.
            raise RuntimeError(
                f"apportionment shortfall: {remaining} unplaced unit(s)"
            )
        return shares

    # -- pass 2 -----------------------------------------------------------------

    def publish(
        self,
        chunks: ChunkSource,
        sink: ChunkSink | None = None,
        *,
        byte_sink: ChunkByteSink | None = None,
    ) -> PublishReport:
        """Publish the whole stream; return the merged report.

        ``chunks`` is called **exactly once**: pass 1 parses, spills,
        and accumulates each chunk as it arrives, and pass 2 realises
        from the spills — never from the source.  Each anonymized
        chunk is handed to ``sink`` (and/or its encoded rows to
        ``byte_sink``) in stream order as soon as it is ready, so the
        output can stream to disk without ever holding the dataset.
        """
        self._ensure_open()
        started = time.perf_counter()
        anonymizer = self.anonymizer
        needs_tf = anonymizer._global is not None
        call_index = anonymizer.reserve_call_index()
        base_seed = anonymizer.base_seed_for(call_index)
        parallel = self.workers > 1 and self.executor != "serial"
        spec_params = anonymizer.config() if parallel else None
        want_dataset = sink is not None
        ledger = CompositionLedger()
        state: dict = {}

        with SpillStore(
            self.spill_dir, cache=0 if parallel else self.window
        ) as store:

            def jobs() -> Iterator[_ChunkJob]:
                def job_for(index: int, target) -> _ChunkJob:
                    return _ChunkJob(
                        index=index,
                        path=str(store.path_of(index)),
                        expected=state["sizes"][index],
                        spec_params=spec_params,
                        target=target,
                        base_seed=base_seed,
                        scope=f"chunk:{index}",
                        want_dataset=want_dataset,
                        want_bytes=byte_sink is not None,
                    )

                accumulator = _PassOneAccumulator(anonymizer)
                state["sizes"] = accumulator.sizes
                for chunk in chunks():
                    if len(chunk) == 0:
                        continue
                    index = len(accumulator.sizes)
                    accumulator.add(chunk)
                    store.stage(index, chunk)
                    if not needs_tf:
                        # No shared draw to wait for: realisation of
                        # this chunk overlaps parsing of the next.
                        yield job_for(index, None)
                state["estimate"] = estimate = accumulator.finish(
                    call_index, base_seed, ledger
                )
                if needs_tf:
                    targets = self.chunk_targets(estimate)
                    assert targets is not None
                    for index, target in enumerate(targets):
                        yield job_for(index, target)

            if parallel:
                runner = _realize_spilled_chunk
            else:

                def runner(job: _ChunkJob) -> _ChunkOutcome:
                    chunk = store.load(job.index)
                    result, report = self.engine.anonymize_with_report(
                        chunk,
                        tf_target=job.target,
                        base_seed=job.base_seed,
                        scope=job.scope,
                    )
                    return _package(job, result, report)

            totals = ModificationReport()
            summaries: list[dict] = []
            trajectories = 0
            for outcome in parallel_map_stream(
                runner,
                jobs(),
                workers=self.workers if parallel else 1,
                executor=self.executor if parallel else "serial",
                window=self.window,
            ):
                report = outcome.report
                chunk_mods = ModificationReport()
                for part in (report.global_report, report.local_report):
                    if part is not None:
                        chunk_mods.merge(part)
                totals.merge(chunk_mods)
                trajectories += outcome.trajectories
                summaries.append(
                    {
                        "scope": f"chunk:{outcome.index}",
                        "trajectories": outcome.trajectories,
                        "utility_loss_m": chunk_mods.utility_loss,
                        "insertions": chunk_mods.insertions,
                        "deletions": chunk_mods.deletions,
                        "unrealised": chunk_mods.unrealised,
                    }
                )
                if sink is not None:
                    sink(outcome.dataset, report)
                if byte_sink is not None:
                    byte_sink(outcome.payload, report)
                store.remove(outcome.index)

        estimate = state["estimate"]
        # The shared ε_G draw (if any) was recorded by pass 1 at draw
        # time; the per-chunk locals compose in parallel after it.
        if anonymizer._local is not None:
            for index in range(estimate.chunk_count):
                ledger.record_parallel(
                    LOCAL_GROUP,
                    "local PF randomization",
                    anonymizer.epsilon_local,
                    scope=f"chunk:{index}",
                )

        return PublishReport(
            epsilon_total=ledger.epsilon_total,
            accounting=ledger,
            chunk_count=estimate.chunk_count,
            trajectories=trajectories,
            tf_locations=(
                0
                if estimate.perturbation is None
                else len(estimate.perturbation.original)
            ),
            utility_loss=totals.utility_loss,
            chunks=summaries,
            spec=anonymizer.spec(),
            seconds=time.perf_counter() - started,
        )

    def publish_collected(
        self, chunks: ChunkSource
    ) -> tuple[TrajectoryDataset, PublishReport]:
        """:meth:`publish`, materialising the output (tests, small data)."""
        published: list = []
        report = self.publish(
            chunks, sink=lambda dataset, _report: published.extend(dataset)
        )
        return TrajectoryDataset(published), report
