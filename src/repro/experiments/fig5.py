"""Figure 5: efficiency of the search strategies and modification stages.

Left panel — K-nearest-segment search cost of the five strategies
(Linear, UG, HGt, HGb, HG+) over growing dataset sizes. The paper
measures the full modification pipeline; since the pipeline's cost is
dominated by its kNN searches, we time a fixed batch of searches per
strategy against the same dataset-wide segment index — the isolation
makes the strategy comparison exact while keeping pure-Python runtimes
sane.

Right panel — wall-clock share of local (intra-) vs global (inter-)
trajectory modification, timed on the real pipeline with the HG+
strategy (the paper reports global at 90 %+ of total time).

Global-stage panel — the engine's three candidate sources for the
inter-trajectory modification (``restart`` — the seed restart-scan,
``incremental`` — PR 1's lazy frontier, ``wave`` — the wave-planned
planner/executor path), crossed with the three hierarchical search
strategies, all timed on real PureG runs. Wave and incremental are
byte-identical to each other; restart makes cost-identical selections
(exact-distance ties at its k boundary may pick a different equally
cheap owner), so the comparison isolates pure search/scheduling cost.

Invoke with::

    python -m repro.experiments.fig5 [smoke|default|large] [workers]
                                     [--dataset REF]

``workers > 1`` additionally times the batch engine's sharded local
stage (``repro.engine.BatchAnonymizer``) next to the serial one —
the timings panel is otherwise always measured serially, since pooling
would distort the strategy comparison. ``--dataset`` runs the timing
sweep over growing subsets of an ingested real dataset instead of
synthetic fleets of growing size.
"""

from __future__ import annotations

import sys
import time
from dataclasses import replace

from repro.api import MethodSpec, run as run_spec
from repro.core.modification import index_extent
from repro.core.signature import SignatureExtractor
from repro.datagen.generator import generate_fleet
from repro.experiments.config import (
    ExperimentConfig,
    load_experiment_input,
    parse_driver_args,
)
from repro.geo.geometry import BBox
from repro.index.hierarchical import HierarchicalGridIndex
from repro.index.linear import LinearSegmentIndex
from repro.index.rtree import RTreeIndex
from repro.index.uniform import UniformGridIndex

#: Strategy labels of the left panel, in the paper's order, plus an
#: STR R-tree bonus row (not in the paper; see DESIGN.md §4b).
SEARCH_METHODS = ("Linear", "UG", "HGt", "HGb", "HG+", "RT")

DEFAULT_SIZES = (25, 50, 100, 200)
SMOKE_SIZES = (10, 20)

#: Candidate sources of the global stage, benchmark baseline first.
CANDIDATE_SOURCES = ("restart", "incremental", "wave")

#: Hierarchical strategies crossed with the candidate sources in the
#: global-stage panel, keyed by the paper's labels.
HIERARCHICAL_STRATEGIES = (
    ("HGt", "top_down"),
    ("HGb", "bottom_up"),
    ("HG+", "bottom_up_down"),
)


def _dataset_for_size(config: ExperimentConfig, size: int):
    """The ``size``-trajectory dataset of one sweep step.

    Synthetic mode generates a fresh fleet of that size; real-data mode
    takes the first ``size`` trajectories of the ingested dataset (so
    the growth axis stays comparable across sizes).
    """
    if config.dataset:
        return load_experiment_input(config).dataset.subset(size)
    return generate_fleet(replace(config.fleet, n_objects=size)).dataset


def effective_sizes(
    config: ExperimentConfig, sizes: tuple[int, ...]
) -> tuple[int, ...]:
    """Clamp the size axis to what the dataset can actually provide.

    In real-data mode a requested size beyond the ingested dataset
    would silently repeat the full dataset and fake a flat scaling
    curve; clamp and deduplicate instead, so every labelled size is a
    genuine measurement. Synthetic mode generates any size, so it
    passes through.
    """
    if not config.dataset:
        return sizes
    available = len(load_experiment_input(config).dataset)
    return tuple(sorted({min(size, available) for size in sizes}))


def _build_indexes(dataset, bbox: BBox):
    # Paper setting: 512x512 for the uniform grid and for the finest
    # level of the hierarchical grid (levels=10 -> 2^9 = 512 per side).
    # UG uses the classic single-cell (midpoint) assignment the paper
    # compares against; see UniformGridIndex for the overlap variant.
    linear = LinearSegmentIndex()
    uniform = UniformGridIndex(bbox, granularity=512, assignment="midpoint")
    hierarchical = HierarchicalGridIndex(bbox, levels=10)
    rtree = RTreeIndex()
    for trajectory in dataset:
        for _, a, b in trajectory.segments():
            linear.insert(a.coord, b.coord, owner=trajectory.object_id)
            uniform.insert(a.coord, b.coord, owner=trajectory.object_id)
            hierarchical.insert(a.coord, b.coord, owner=trajectory.object_id)
            rtree.insert(a.coord, b.coord, owner=trajectory.object_id)
    return linear, uniform, hierarchical, rtree


def _query_points(dataset, signature_size: int, limit: int = 200):
    """kNN query workload: the dataset's signature locations (what the
    modification step actually searches for)."""
    index = SignatureExtractor(m=signature_size).extract(dataset)
    return sorted(index.candidate_set)[:limit]


def search_timings(
    config: ExperimentConfig,
    sizes: tuple[int, ...],
    k: int = 8,
) -> tuple[dict[str, list[float]], dict[str, list[int]]]:
    """Left panel: per strategy per dataset size, (seconds, work).

    Work = exact point-segment distance computations performed, the
    implementation-independent measure of each strategy's pruning
    power (wall-clock additionally reflects pure-Python constants).
    """
    timings: dict[str, list[float]] = {name: [] for name in SEARCH_METHODS}
    work: dict[str, list[int]] = {name: [] for name in SEARCH_METHODS}
    for size in sizes:
        dataset = _dataset_for_size(config, size)
        bbox = index_extent(dataset.bbox())
        linear, uniform, hierarchical, rtree = _build_indexes(dataset, bbox)
        queries = _query_points(dataset, config.signature_size)

        def time_batch(search) -> float:
            started = time.perf_counter()
            for q in queries:
                search(q)
            return time.perf_counter() - started

        timings["Linear"].append(time_batch(lambda q: linear.knn(q, k)))
        work["Linear"].append(len(linear) * len(queries))
        timings["UG"].append(time_batch(lambda q: uniform.knn(q, k)))
        work["UG"].append(-1)  # UG does not track per-query counters
        timings["RT"].append(time_batch(lambda q: rtree.knn(q, k)))
        work["RT"].append(-1)

        for label, strategy in (
            ("HGt", "top_down"),
            ("HGb", "bottom_up"),
            ("HG+", "bottom_up_down"),
        ):
            checked = 0

            def probe(q, _strategy=strategy):
                hierarchical.knn(q, k, strategy=_strategy)

            started = time.perf_counter()
            for q in queries:
                probe(q)
                checked += hierarchical.last_stats.segments_checked
            timings[label].append(time.perf_counter() - started)
            work[label].append(checked)
    return timings, work


def modification_timings(
    config: ExperimentConfig, sizes: tuple[int, ...], workers: int = 1
) -> dict[str, list[float]]:
    """Right panel: local vs global modification wall-clock (HG+).

    With ``workers > 1``, a third row times the batch engine's sharded
    local stage for comparison against the serial local row.
    """
    timings: dict[str, list[float]] = {"Local": [], "Global": []}
    if workers > 1:
        timings["Local-batch"] = []
    half = config.model_params(config.epsilon / 2)
    pureg = MethodSpec("pureg", half)
    purel = MethodSpec("purel", half)
    for size in sizes:
        dataset = _dataset_for_size(config, size)
        # RunResult.seconds times exactly the anonymize call, so the
        # serial and batch rows measure the same work.
        timings["Global"].append(run_spec(pureg, dataset).seconds)
        timings["Local"].append(run_spec(purel, dataset).seconds)
        if workers > 1:
            timings["Local-batch"].append(
                run_spec(
                    purel, dataset, engine="batch", workers=workers
                ).seconds
            )
    return timings


def global_stage_timings(
    config: ExperimentConfig, sizes: tuple[int, ...]
) -> dict[str, list[float]]:
    """Global-stage panel: candidate source x search strategy.

    Rows are ``"<source>/<strategy>"`` (e.g. ``"wave/HG+"``); each cell
    is the wall-clock of a full PureG run. For the same seed, wave and
    incremental rows are byte-identical and restart rows cost-identical
    (ties at its k boundary may resolve to a different equally cheap
    owner), keeping the comparison honest across every strategy at
    once.
    """
    half = config.model_params(config.epsilon / 2)
    timings: dict[str, list[float]] = {
        f"{source}/{label}": []
        for source in CANDIDATE_SOURCES
        for label, _ in HIERARCHICAL_STRATEGIES
    }
    for size in sizes:
        dataset = _dataset_for_size(config, size)
        for source in CANDIDATE_SOURCES:
            for label, strategy in HIERARCHICAL_STRATEGIES:
                spec = MethodSpec(
                    "pureg",
                    {
                        **half,
                        "search_strategy": strategy,
                        "candidate_source": source,
                    },
                )
                timings[f"{source}/{label}"].append(
                    run_spec(spec, dataset).seconds
                )
    return timings


def run(
    config: ExperimentConfig | None = None,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    workers: int = 1,
) -> dict[str, dict[str, list]]:
    config = config or ExperimentConfig.default()
    sizes = effective_sizes(config, sizes)
    search, work = search_timings(config, sizes)
    return {
        "search": search,
        "search_work": work,
        "modification": modification_timings(config, sizes, workers=workers),
        "global": global_stage_timings(config, sizes),
    }


def format_timings(
    results: dict[str, dict[str, list]], sizes: tuple[int, ...]
) -> str:
    lines = ["[kNN search time (s) vs dataset size]"]
    lines.append(f"{'method':<8s}" + "".join(f"{s:>10d}" for s in sizes))
    for name, values in results["search"].items():
        lines.append(f"{name:<8s}" + "".join(f"{v:10.4f}" for v in values))
    lines.append("")
    lines.append("[distance computations (pruning work) vs dataset size]")
    lines.append(f"{'method':<8s}" + "".join(f"{s:>10d}" for s in sizes))
    for name, values in results.get("search_work", {}).items():
        cells = "".join(
            "       n/a" if v < 0 else f"{v:10d}" for v in values
        )
        lines.append(f"{name:<8s}" + cells)
    lines.append("")
    lines.append("[modification time (s) vs dataset size, HG+]")
    lines.append(f"{'stage':<8s}" + "".join(f"{s:>10d}" for s in sizes))
    for name, values in results["modification"].items():
        lines.append(f"{name:<8s}" + "".join(f"{v:10.4f}" for v in values))
    total = [
        g + local
        for g, local in zip(
            results["modification"]["Global"],
            results["modification"]["Local"],
            strict=True,
        )
    ]
    share = [
        g / t if t > 0 else 0.0
        for g, t in zip(results["modification"]["Global"], total, strict=True)
    ]
    lines.append(
        f"{'G-share':<8s}" + "".join(f"{v:10.2%}" for v in share)
    )
    if "global" in results:
        lines.append("")
        lines.append(
            "[global stage (s): candidate source x strategy vs dataset size]"
        )
        lines.append(
            f"{'source':<16s}" + "".join(f"{s:>10d}" for s in sizes)
        )
        for name, values in results["global"].items():
            lines.append(f"{name:<16s}" + "".join(f"{v:10.4f}" for v in values))
        reference = results["global"].get("incremental/HG+")
        waved = results["global"].get("wave/HG+")
        if reference and waved:
            speedups = [
                r / w if w > 0 else float("inf")
                for r, w in zip(reference, waved, strict=True)
            ]
            lines.append(
                f"{'wave speedup':<16s}"
                + "".join(f"{v:9.2f}x" for v in speedups)
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    preset, config, workers = parse_driver_args(argv, "repro.experiments.fig5")
    sizes = effective_sizes(
        config, SMOKE_SIZES if preset == "smoke" else DEFAULT_SIZES
    )
    source = config.dataset or "synthetic"
    print(f"Figure 5 reproduction — preset={preset}, sizes={sizes}, "
          f"workers={workers}, dataset={source}")
    results = run(config, sizes=sizes, workers=workers)
    print(format_timings(results, sizes))


if __name__ == "__main__":
    main()
