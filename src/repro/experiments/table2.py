"""Table II: effectiveness of all methods (privacy / utility / recovery).

``run`` evaluates every method of the registry on one generated fleet
and returns ``{method: {metric: value-or-None}}``; ``main`` prints the
table in the paper's layout. Invoke with::

    python -m repro.experiments.table2 [smoke|default|large]
"""

from __future__ import annotations

import sys
import time

from repro.datagen.generator import generate_fleet
from repro.experiments.config import ExperimentConfig
from repro.experiments.evaluate import METRIC_COLUMNS, evaluate_method
from repro.experiments.methods import SYNTHETIC_METHODS, build_methods


def run(
    config: ExperimentConfig | None = None,
    methods: list[str] | None = None,
    verbose: bool = False,
) -> dict[str, dict[str, float | None]]:
    """Evaluate Table II. ``methods`` restricts to a subset of labels."""
    config = config or ExperimentConfig.default()
    fleet = generate_fleet(config.fleet)
    registry = build_methods(config)
    if methods is not None:
        unknown = set(methods) - set(registry)
        if unknown:
            raise ValueError(f"unknown methods: {sorted(unknown)}")
        registry = {name: registry[name] for name in methods}

    results: dict[str, dict[str, float | None]] = {}
    for name, anonymize in registry.items():
        started = time.perf_counter()
        anonymized = anonymize(fleet.dataset)
        evaluation = evaluate_method(
            fleet.dataset,
            anonymized,
            fleet,
            config,
            synthetic=name in SYNTHETIC_METHODS,
        )
        results[name] = evaluation.values
        if verbose:
            elapsed = time.perf_counter() - started
            print(f"  {name:<10s} done in {elapsed:6.1f}s", file=sys.stderr)
    return results


def format_table(results: dict[str, dict[str, float | None]]) -> str:
    """Render results in the paper's rows-are-metrics layout."""
    methods = list(results)
    header = f"{'Metric':<10s}" + "".join(f"{m:>10s}" for m in methods)
    lines = [header, "-" * len(header)]
    for metric in METRIC_COLUMNS:
        cells = []
        for method in methods:
            value = results[method].get(metric)
            cells.append("       -  " if value is None else f"{value:10.3f}")
        lines.append(f"{metric:<10s}" + "".join(cells))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    preset = argv[0] if argv else "default"
    config = {
        "smoke": ExperimentConfig.smoke,
        "default": ExperimentConfig.default,
        "large": ExperimentConfig.large,
    }[preset]()
    print(f"Table II reproduction — preset={preset}, "
          f"|D|={config.fleet.n_objects}, eps={config.epsilon}, "
          f"m={config.signature_size}")
    results = run(config, verbose=True)
    print(format_table(results))


if __name__ == "__main__":
    main()
