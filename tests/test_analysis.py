"""Tests for the static analyzer (repro.analysis).

Every rule gets a positive fixture (a seeded violation it must catch)
and a negative fixture (idiomatic code it must not flag), driven
through :func:`analyze_source`. Suppression, the baseline ratchet, the
JSON report schema, and the ``repro check`` exit-code contract
(0 clean / 1 findings / 2 internal error) are covered end to end.
"""

import json
import textwrap

import pytest

from repro.analysis import (
    AnalysisError,
    Baseline,
    BaselineEntry,
    Finding,
    all_rules,
    analyze_paths,
    analyze_source,
    rules_for,
)
from repro.cli import main


def check(source: str, codes=None, **kwargs):
    return analyze_source(textwrap.dedent(source), codes=codes, **kwargs)


def codes_of(report) -> list[str]:
    return [finding.code for finding in report.findings]


class TestRegistry:
    def test_all_five_rules_registered(self):
        assert [r.code for r in all_rules()] == [
            "DET001", "DET002", "DP001", "EPS001", "RACE001",
        ]

    def test_every_rule_documented(self):
        for rule in all_rules():
            assert rule.name
            assert rule.summary
            assert rule.rationale
            assert rule.example

    def test_rules_for_subset(self):
        assert [r.code for r in rules_for(["DP001"])] == ["DP001"]

    def test_rules_for_unknown_code_raises(self):
        with pytest.raises(KeyError):
            rules_for(["NOPE999"])


class TestDP001:
    def test_unledgered_class_draw_flagged(self):
        report = check(
            """
            class Stage:
                def apply(self, count, rng):
                    return self.mechanism.perturb_count(count, rng)
            """,
            codes=["DP001"],
        )
        assert codes_of(report) == ["DP001"]
        assert "class Stage" in report.findings[0].message

    def test_ledgered_class_draw_clean(self):
        report = check(
            """
            class Stage:
                def apply(self, ledger, count, rng):
                    ledger.record("stage/count", 1.0)
                    return self.mechanism.perturb_count(count, rng)
            """,
            codes=["DP001"],
        )
        assert report.clean

    def test_record_parallel_counts_as_ledgered(self):
        report = check(
            """
            class Stage:
                def apply(self, ledger, count, rng):
                    ledger.record_parallel("local", "stage", 1.0, scope=1)
                    return self.mechanism.perturb(count, rng)
            """,
            codes=["DP001"],
        )
        assert report.clean

    def test_module_level_qualified_draw_flagged(self):
        report = check(
            """
            from repro.core.laplace import laplace_noise

            def jitter(scale, rng):
                return laplace_noise(scale, rng)
            """,
            codes=["DP001"],
        )
        assert codes_of(report) == ["DP001"]
        assert "module scope" in report.findings[0].message

    def test_sanctioned_module_exempt(self):
        report = check(
            """
            class LaplaceMechanism:
                def perturb(self, value, rng):
                    return value + self.draw.laplace(self.scale, rng)
            """,
            codes=["DP001"],
            module="repro.core.laplace",
        )
        assert report.clean


class TestDET001:
    def test_stdlib_global_rng_flagged(self):
        report = check(
            """
            import random

            def shuffle(items):
                random.shuffle(items)
            """,
            codes=["DET001"],
        )
        assert codes_of(report) == ["DET001"]

    def test_numpy_legacy_rng_flagged_through_alias(self):
        report = check(
            """
            import numpy as np

            def noise(n):
                return np.random.normal(size=n)
            """,
            codes=["DET001"],
        )
        assert codes_of(report) == ["DET001"]
        assert "np.random.normal" in report.findings[0].message

    def test_seeded_constructors_clean(self):
        report = check(
            """
            import random

            import numpy as np

            def make(seed):
                return random.Random(seed), np.random.default_rng(seed)
            """,
            codes=["DET001"],
        )
        assert report.clean

    def test_instance_method_calls_clean(self):
        report = check(
            """
            def draw(rng):
                return rng.random()
            """,
            codes=["DET001"],
        )
        assert report.clean


class TestDET002:
    def test_wall_clock_flagged(self):
        report = check(
            """
            import time

            def stamp():
                return time.time()
            """,
            codes=["DET002"],
        )
        assert codes_of(report) == ["DET002"]

    def test_datetime_now_flagged_through_from_import(self):
        report = check(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            codes=["DET002"],
        )
        assert codes_of(report) == ["DET002"]

    def test_perf_counter_allowed(self):
        report = check(
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            codes=["DET002"],
        )
        assert report.clean

    def test_set_iteration_flagged(self):
        report = check(
            """
            def walk(a, b):
                for loc in {a, b}:
                    yield loc
            """,
            codes=["DET002"],
        )
        assert codes_of(report) == ["DET002"]

    def test_comprehension_over_set_call_flagged(self):
        report = check(
            """
            def dedupe(items):
                return [x for x in set(items)]
            """,
            codes=["DET002"],
        )
        assert codes_of(report) == ["DET002"]

    def test_sorted_set_iteration_clean(self):
        report = check(
            """
            def walk(items):
                for loc in sorted(set(items)):
                    yield loc
            """,
            codes=["DET002"],
        )
        assert report.clean


class TestEPS001:
    @pytest.mark.parametrize(
        "line",
        [
            "epsilon == 0",
            "eps != 0.0",
            "0 == self.epsilon_local",
        ],
    )
    def test_zero_comparison_flagged(self, line):
        report = check(f"def f(epsilon, eps, self): return ({line})",
                       codes=["EPS001"])
        assert codes_of(report) == ["EPS001"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(eps):\n    if eps:\n        return 1",
            "def f(eps):\n    return 1 if eps else 2",
            "def f(self):\n    if not self.epsilon_global:\n        return 0",
            "def f(eps, other):\n    return eps and other",
        ],
    )
    def test_truthiness_flagged(self, snippet):
        report = check(snippet, codes=["EPS001"])
        assert codes_of(report) == ["EPS001"]

    def test_is_none_check_clean(self):
        report = check(
            """
            def f(epsilon):
                if epsilon is not None:
                    return epsilon
            """,
            codes=["EPS001"],
        )
        assert report.clean

    def test_magnitude_comparison_clean(self):
        report = check("def f(epsilon): return epsilon > 0",
                       codes=["EPS001"])
        assert report.clean

    def test_non_epsilon_name_clean(self):
        report = check("def f(radius): return radius == 0",
                       codes=["EPS001"])
        assert report.clean


class TestRACE001:
    def test_unlocked_self_write_in_pool_worker_flagged(self):
        report = check(
            """
            class Engine:
                def run(self, jobs):
                    return parallel_map(self._work, jobs)

                def _work(self, job):
                    self.cache = job
                    return job
            """,
            codes=["RACE001"],
        )
        assert codes_of(report) == ["RACE001"]
        assert "self.cache" in report.findings[0].message

    def test_locked_write_clean(self):
        report = check(
            """
            class Engine:
                def run(self, jobs):
                    return parallel_map(self._work, jobs)

                def _work(self, job):
                    with self._lock:
                        self.cache = job
                    return job
            """,
            codes=["RACE001"],
        )
        assert report.clean

    def test_executor_submit_receiver_detected(self):
        report = check(
            """
            class Engine:
                def run(self, jobs):
                    return [self.pool.submit(self._work, j) for j in jobs]

                def _work(self, job):
                    self.stats.done += 1
                    return job
            """,
            codes=["RACE001"],
        )
        assert codes_of(report) == ["RACE001"]

    def test_transitive_callee_flagged(self):
        report = check(
            """
            class Engine:
                def run(self, jobs):
                    return parallel_map(self._work, jobs)

                def _work(self, job):
                    return self._finish(job)

                def _finish(self, job):
                    self.last = job
                    return job
            """,
            codes=["RACE001"],
        )
        assert codes_of(report) == ["RACE001"]
        assert "Engine._finish" in report.findings[0].message

    def test_unreachable_write_clean(self):
        report = check(
            """
            class Engine:
                def configure(self, option):
                    self.option = option
            """,
            codes=["RACE001"],
        )
        assert report.clean

    def test_conditional_worker_alias_discovered(self):
        # The publisher picks its pool worker conditionally
        # (``runner = _module_worker``) before submitting; discovery
        # must follow the bare-name alias to the module function.
        report = check(
            """
            SEEN = None

            def _module_worker(job):
                global SEEN
                SEEN = job
                return job

            class Engine:
                def run(self, jobs, parallel):
                    if parallel:
                        runner = _module_worker
                    else:
                        runner = _module_worker
                    return parallel_map_stream(runner, jobs)
            """,
            codes=["RACE001"],
        )
        assert codes_of(report) == ["RACE001"]
        assert "_module_worker" in report.findings[0].message

    def test_cross_module_global_write_flagged(self, tmp_path):
        (tmp_path / "counters.py").write_text(textwrap.dedent(
            """
            TOTAL = 0

            def bump(job):
                global TOTAL
                TOTAL += 1
                return job
            """
        ))
        (tmp_path / "driver.py").write_text(textwrap.dedent(
            """
            from counters import bump

            def run(jobs):
                return parallel_map(bump, jobs)
            """
        ))
        report = analyze_paths([tmp_path], root=tmp_path, codes=["RACE001"])
        assert codes_of(report) == ["RACE001"]
        assert report.findings[0].path == "counters.py"
        assert "TOTAL" in report.findings[0].message


class TestSuppression:
    VIOLATION = """
    import random

    def draw():
        return random.random()  # repro: noqa[DET001]
    """

    def test_coded_noqa_suppresses(self):
        report = check(self.VIOLATION, codes=["DET001"])
        assert report.clean
        assert [f.code for f in report.suppressed] == ["DET001"]

    def test_bare_noqa_suppresses_everything(self):
        report = check(
            """
            import random

            def draw():
                return random.random()  # repro: noqa
            """,
            codes=["DET001"],
        )
        assert report.clean
        assert len(report.suppressed) == 1

    def test_wrong_code_does_not_suppress(self):
        report = check(
            """
            import random

            def draw():
                return random.random()  # repro: noqa[DP001]
            """,
            codes=["DET001"],
        )
        assert codes_of(report) == ["DET001"]

    def test_code_match_case_insensitive(self):
        report = check(
            """
            import random

            def draw():
                return random.random()  # repro: noqa[det001]
            """,
            codes=["DET001"],
        )
        assert report.clean


class TestBaseline:
    VIOLATION = """
    import random

    def draw():
        return random.random()
    """

    def test_from_findings_absorbs_everything(self):
        first = check(self.VIOLATION, codes=["DET001"])
        baseline = Baseline.from_findings(first.findings)
        second = check(self.VIOLATION, codes=["DET001"], baseline=baseline)
        assert second.clean
        assert len(second.baselined) == 1
        assert not second.stale_baseline

    def test_survives_line_drift(self):
        baseline = Baseline.from_findings(
            check(self.VIOLATION, codes=["DET001"]).findings
        )
        shifted = "# a new leading comment\n\n" + textwrap.dedent(self.VIOLATION)
        report = analyze_source(shifted, codes=["DET001"], baseline=baseline)
        assert report.clean
        assert len(report.baselined) == 1

    def test_fixed_violation_marks_entry_stale(self):
        baseline = Baseline.from_findings(
            check(self.VIOLATION, codes=["DET001"]).findings
        )
        report = check("def draw(rng): return rng.random()",
                       codes=["DET001"], baseline=baseline)
        assert report.clean
        assert len(report.stale_baseline) == 1
        assert report.stale_baseline[0].code == "DET001"

    def test_count_caps_absorption(self):
        doubled = """
        import random

        def draw():
            return random.random()

        def draw_again():
            return random.random()
        """
        entry = BaselineEntry(
            code="DET001",
            path="<snippet>.py",
            snippet="return random.random()",
            count=1,
        )
        report = check(doubled, codes=["DET001"],
                       baseline=Baseline(entries=[entry]))
        # Two identical snippets, budget for one: the second stays active.
        assert len(report.baselined) == 1
        assert len(report.findings) == 1

    def test_save_load_round_trip(self, tmp_path):
        baseline = Baseline.from_findings(
            check(self.VIOLATION, codes=["DET001"]).findings,
            reason="legacy draw",
        )
        target = tmp_path / "baseline.json"
        baseline.save(target)
        assert Baseline.load(target) == baseline

    def test_load_rejects_unknown_version(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            Baseline.load(target)


class TestReportSchema:
    def test_json_shape(self):
        report = check(TestBaseline.VIOLATION, codes=["DET001"])
        payload = report.to_dict()
        assert set(payload) == {
            "version", "files", "codes", "findings", "suppressed",
            "baselined", "stale_baseline", "clean",
        }
        assert payload["version"] == 1
        assert payload["files"] == 1
        assert payload["codes"] == ["DET001"]
        assert payload["clean"] is False
        (finding,) = payload["findings"]
        assert set(finding) == {
            "code", "path", "line", "col", "message", "snippet",
        }
        assert Finding.from_dict(finding) == report.findings[0]

    def test_render_human_mentions_location_and_code(self):
        report = check(TestBaseline.VIOLATION, codes=["DET001"])
        text = report.render_human()
        assert "<snippet>.py:5:12: DET001" in text
        assert "1 finding(s)" in text

    def test_syntax_error_raises_analysis_error(self):
        with pytest.raises(AnalysisError):
            analyze_source("def broken(:\n")


class TestCheckCLI:
    """The `repro check` exit-code contract, end to end."""

    def clean_file(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text("def double(x):\n    return 2 * x\n")
        return path

    def dirty_file(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text(
            "import random\n\n\ndef draw():\n    return random.random()\n"
        )
        return path

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        code = main(["check", str(self.clean_file(tmp_path)),
                     "--baseline", "none"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        code = main(["check", str(self.dirty_file(tmp_path)),
                     "--baseline", "none"])
        assert code == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "random.random" in out

    def test_exit_two_on_syntax_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        code = main(["check", str(bad), "--baseline", "none"])
        assert code == 2
        assert "syntax error" in capsys.readouterr().err

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        code = main(["check", str(self.clean_file(tmp_path)),
                     "--baseline", "none", "--rules", "NOPE999"])
        assert code == 2
        assert "NOPE999" in capsys.readouterr().err

    def test_json_format_machine_readable(self, tmp_path, capsys):
        code = main(["check", str(self.dirty_file(tmp_path)),
                     "--baseline", "none", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["clean"] is False
        assert payload["findings"][0]["code"] == "DET001"

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DP001", "DET001", "DET002", "RACE001", "EPS001"):
            assert code in out

    def test_rules_flag_restricts(self, tmp_path, capsys):
        code = main(["check", str(self.dirty_file(tmp_path)),
                     "--baseline", "none", "--rules", "DP001"])
        assert code == 0  # the DET001 violation is outside the rule set
        capsys.readouterr()

    def test_update_baseline_then_clean_then_stale(self, tmp_path, capsys):
        dirty = self.dirty_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["check", str(dirty), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert "1 finding(s) grandfathered" in capsys.readouterr().out
        # Grandfathered: same tree now exits 0, finding is baselined.
        assert main(["check", str(dirty), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # Fix the violation: still 0, but the entry is reported stale.
        dirty.write_text("def draw(rng):\n    return rng.random()\n")
        assert main(["check", str(dirty), "--baseline", str(baseline)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out
