"""The string-keyed method registry: every anonymizer behind one door.

Each entry maps a ``kind`` (``"gl"``, ``"adatrace"``, ...) to a
:class:`MethodInfo` holding a factory whose *signature* is the public
parameter contract of the method — :func:`build` binds a
:class:`~repro.api.spec.MethodSpec`'s params against it, so unknown
or malformed parameters fail fast with the accepted names listed.

Built-in registrations cover the paper's models (GL / PureG / PureL,
plus the raw ``frequency`` pipeline the engine uses as its canonical
cross-process payload) and every Table II baseline. Third-party
packages can plug in via the ``repro.methods`` entry-point group:
each entry point is loaded on first registry miss (or listing) and
may either call :func:`register` itself at import time or simply *be*
a factory callable, which is then registered under the entry-point
name.

Factories import their implementation modules lazily, so importing
``repro.api`` stays cheap and the registry itself is a leaf above
:mod:`repro.api.spec` only.
"""

from __future__ import annotations

import inspect
import threading
import warnings
from dataclasses import dataclass
from typing import Any, Callable

from repro.api.spec import MethodSpec

#: Entry-point group scanned for third-party method plugins.
ENTRY_POINT_GROUP = "repro.methods"

#: Method families, for listings and engine routing: only the
#: ``frequency`` family supports the batch engine / report pipeline.
FAMILIES = ("frequency", "signature", "k-anonymity", "generative", "plugin")


@dataclass(frozen=True)
class MethodInfo:
    """Registry metadata for one anonymization method."""

    kind: str
    factory: Callable[..., Any]
    summary: str
    family: str
    #: Output is synthetic — no record-level pairing with the input
    #: (Table II skips temporal-linkage/recovery metrics for these).
    synthetic: bool = False
    #: ``"builtin"`` or ``"plugin:<entry point value>"``.
    source: str = "builtin"

    @property
    def signature(self) -> inspect.Signature:
        """The method's parameter contract."""
        return inspect.signature(self.factory)

    def default_params(self) -> dict[str, Any]:
        """Declared parameters and their defaults (no-default omitted)."""
        return {
            name: parameter.default
            for name, parameter in self.signature.parameters.items()
            if parameter.default is not inspect.Parameter.empty
        }


_REGISTRY: dict[str, MethodInfo] = {}
_PLUGINS_LOADED = False
#: Guards the one-shot plugin scan: registry lookups happen inside
#: batch-engine workers (``_anonymize_one`` rebuilds anonymizers from
#: specs), so concurrent first lookups must not race the scan.
_PLUGINS_LOCK = threading.Lock()


def register(
    kind: str,
    *,
    summary: str,
    family: str,
    synthetic: bool = False,
    source: str = "builtin",
    replace: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering ``factory`` as method ``kind``.

    The factory's keyword parameters (with defaults) are the method's
    public parameter contract; it returns a configured object exposing
    ``anonymize(dataset) -> TrajectoryDataset``. Registering an
    existing kind raises unless ``replace=True``.
    """
    key = kind.strip().lower()
    if not key or not key.replace("_", "").replace("-", "").isalnum():
        raise ValueError(f"method kind must be an identifier, got {kind!r}")
    if family not in FAMILIES:
        raise ValueError(f"unknown family {family!r}; choose from {FAMILIES}")

    def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
        if key in _REGISTRY and not replace:
            raise ValueError(f"method {key!r} is already registered")
        _REGISTRY[key] = MethodInfo(
            kind=key,
            factory=factory,
            summary=summary,
            family=family,
            synthetic=synthetic,
            source=source,
        )
        return factory

    return decorator


def _load_plugins() -> None:
    """Load ``repro.methods`` entry points, once, tolerating failures."""
    global _PLUGINS_LOADED
    if _PLUGINS_LOADED:
        return
    with _PLUGINS_LOCK:
        if _PLUGINS_LOADED:
            return
        # Mark first (as the unlocked version did): a failing scan is
        # not worth re-running on every registry miss.
        _PLUGINS_LOADED = True
        _load_plugins_locked()


def _load_plugins_locked() -> None:
    """The actual entry-point scan; callers hold ``_PLUGINS_LOCK``."""
    try:
        from importlib import metadata

        try:
            entry_points = metadata.entry_points(group=ENTRY_POINT_GROUP)
        except TypeError:  # pre-3.10 selectable API
            entry_points = metadata.entry_points().get(ENTRY_POINT_GROUP, ())
    except Exception:  # pragma: no cover - importlib.metadata missing
        return
    for entry_point in entry_points:
        try:
            loaded = entry_point.load()
        except Exception as exc:  # a broken plugin must not break the API
            warnings.warn(
                f"repro method plugin {entry_point.name!r} failed to load: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        if entry_point.name.lower() in _REGISTRY:
            continue  # the module registered itself at import time
        if callable(loaded):
            try:
                register(
                    entry_point.name,
                    summary=(inspect.getdoc(loaded) or "").split("\n")[0]
                    or f"plugin method {entry_point.name}",
                    family="plugin",
                    source=f"plugin:{entry_point.value}",
                )(loaded)
            except ValueError as exc:  # bad name/duplicate: skip, don't break
                warnings.warn(
                    f"repro method plugin {entry_point.name!r} rejected: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )


def method_names() -> tuple[str, ...]:
    """Every registered kind, in registration order (builtins first)."""
    _load_plugins()
    return tuple(_REGISTRY)


def method_info(kind: str) -> MethodInfo:
    """Metadata for ``kind``; raises listing the alternatives."""
    key = kind.strip().lower()
    if key not in _REGISTRY:
        _load_plugins()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown method {kind!r}; registered methods: "
            f"{', '.join(method_names())}"
        ) from None


def build(spec: MethodSpec | str):
    """Construct the anonymizer a spec describes.

    Accepts a :class:`MethodSpec` or a bare kind (default params).
    Parameters are validated against the factory signature before the
    factory runs, so a typo'd name fails with the accepted ones listed.
    """
    if isinstance(spec, str):
        spec = MethodSpec(spec)
    info = method_info(spec.kind)
    try:
        bound = info.signature.bind(**dict(spec.params))
    except TypeError as exc:
        accepted = ", ".join(info.signature.parameters) or "(none)"
        raise ValueError(
            f"invalid parameters for method {spec.kind!r}: {exc}; "
            f"accepted: {accepted}"
        ) from None
    return info.factory(*bound.args, **bound.kwargs)


# -- built-in methods -----------------------------------------------------------
#
# Factory signatures mirror the underlying constructors exactly; they
# are the declared public contract that tools/check_api.py snapshots
# and tests/test_api.py verifies against the classes.


@register(
    "frequency",
    summary="FrequencyAnonymizer with an explicit epsilon_global/epsilon_local"
    " split (the engine's canonical payload)",
    family="frequency",
)
def _frequency(
    epsilon_global: float | None = 0.5,
    epsilon_local: float | None = 0.5,
    signature_size: int = 10,
    index_backend: str = "hierarchical",
    search_strategy: str = "bottom_up_down",
    trajectory_selection: str = "index",
    candidate_source: str = "wave",
    levels: int = 10,
    granularity: int = 512,
    global_first: bool = True,
    seed: int | None = None,
):
    from repro.core.pipeline import FrequencyAnonymizer

    return FrequencyAnonymizer(
        epsilon_global=epsilon_global,
        epsilon_local=epsilon_local,
        signature_size=signature_size,
        index_backend=index_backend,
        search_strategy=search_strategy,
        trajectory_selection=trajectory_selection,
        candidate_source=candidate_source,
        levels=levels,
        granularity=granularity,
        global_first=global_first,
        seed=seed,
    )


@register(
    "gl",
    summary="GL: global + local frequency randomization, eps split evenly"
    " (the paper's full model)",
    family="frequency",
)
def _gl(
    epsilon: float = 1.0,
    signature_size: int = 10,
    index_backend: str = "hierarchical",
    search_strategy: str = "bottom_up_down",
    trajectory_selection: str = "index",
    candidate_source: str = "wave",
    levels: int = 10,
    granularity: int = 512,
    global_first: bool = True,
    seed: int | None = None,
):
    from repro.core.pipeline import GL

    return GL(
        epsilon=epsilon,
        signature_size=signature_size,
        index_backend=index_backend,
        search_strategy=search_strategy,
        trajectory_selection=trajectory_selection,
        candidate_source=candidate_source,
        levels=levels,
        granularity=granularity,
        global_first=global_first,
        seed=seed,
    )


@register(
    "pureg",
    summary="PureG: global TF randomization only (eps = eps_G)",
    family="frequency",
)
def _pureg(
    epsilon: float = 0.5,
    signature_size: int = 10,
    index_backend: str = "hierarchical",
    search_strategy: str = "bottom_up_down",
    trajectory_selection: str = "index",
    candidate_source: str = "wave",
    levels: int = 10,
    granularity: int = 512,
    seed: int | None = None,
):
    from repro.core.pipeline import PureG

    return PureG(
        epsilon=epsilon,
        signature_size=signature_size,
        index_backend=index_backend,
        search_strategy=search_strategy,
        trajectory_selection=trajectory_selection,
        candidate_source=candidate_source,
        levels=levels,
        granularity=granularity,
        seed=seed,
    )


@register(
    "purel",
    summary="PureL: local PF randomization only (eps = eps_L)",
    family="frequency",
)
def _purel(
    epsilon: float = 0.5,
    signature_size: int = 10,
    index_backend: str = "hierarchical",
    search_strategy: str = "bottom_up_down",
    trajectory_selection: str = "index",
    candidate_source: str = "wave",
    levels: int = 10,
    granularity: int = 512,
    seed: int | None = None,
):
    from repro.core.pipeline import PureL

    return PureL(
        epsilon=epsilon,
        signature_size=signature_size,
        index_backend=index_backend,
        search_strategy=search_strategy,
        trajectory_selection=trajectory_selection,
        candidate_source=candidate_source,
        levels=levels,
        granularity=granularity,
        seed=seed,
    )


@register(
    "sc",
    summary="SC: drop every signature location (signature-closure baseline)",
    family="signature",
)
def _sc(signature_size: int = 10):
    from repro.baselines.signature_closure import SignatureClosure

    return SignatureClosure(signature_size=signature_size)


@register(
    "rsc",
    summary="RSC-alpha: drop all points within a radius of any signature"
    " location",
    family="signature",
)
def _rsc(signature_size: int = 10, radius: float = 1000.0):
    from repro.baselines.signature_closure import RadiusSignatureClosure

    return RadiusSignatureClosure(signature_size=signature_size, radius=radius)


@register(
    "w4m",
    summary="W4M: (k, delta)-anonymity via trajectory clustering",
    family="k-anonymity",
)
def _w4m(
    k: int = 5,
    delta: float = 300.0,
    band: int = 32,
    prefilter_factor: int = 4,
):
    from repro.baselines.w4m import W4M

    return W4M(k=k, delta=delta, band=band, prefilter_factor=prefilter_factor)


@register(
    "glove",
    summary="GLOVE: k-anonymity via spatiotemporal generalization",
    family="k-anonymity",
)
def _glove(k: int = 5, cell_size: float = 500.0, time_window: float = 1800.0):
    from repro.baselines.glove import Glove

    return Glove(k=k, cell_size=cell_size, time_window=time_window)


@register(
    "klt",
    summary="KLT: k-anonymity + l-diversity + t-closeness generalization",
    family="k-anonymity",
)
def _klt(
    k: int = 5,
    l_diversity: int = 3,
    t_closeness: float = 0.1,
    n_categories: int = 8,
    cell_size: float = 500.0,
    time_window: float = 1800.0,
):
    from repro.baselines.klt import KLT

    return KLT(
        k=k,
        l_diversity=l_diversity,
        t_closeness=t_closeness,
        n_categories=n_categories,
        cell_size=cell_size,
        time_window=time_window,
    )


@register(
    "dpt",
    summary="DPT: DP synthesis via hierarchical-reference Markov models",
    family="generative",
    synthetic=True,
)
def _dpt(
    epsilon: float = 1.0,
    grid: int = 24,
    order: int = 1,
    sampling_interval: float = 186.0,
    seed: int | None = None,
):
    from repro.baselines.dpt import DPT

    return DPT(
        epsilon=epsilon,
        grid=grid,
        order=order,
        sampling_interval=sampling_interval,
        seed=seed,
    )


@register(
    "adatrace",
    summary="AdaTrace: utility-aware DP trajectory synthesis",
    family="generative",
    synthetic=True,
)
def _adatrace(
    epsilon: float = 1.0,
    top_grid: int = 6,
    refine_factor: int = 2,
    refine_threshold: float = 0.02,
    sampling_interval: float = 186.0,
    seed: int | None = None,
):
    from repro.baselines.adatrace import AdaTrace

    return AdaTrace(
        epsilon=epsilon,
        top_grid=top_grid,
        refine_factor=refine_factor,
        refine_threshold=refine_threshold,
        sampling_interval=sampling_interval,
        seed=seed,
    )
