"""Signature closure baselines: SC and RSC-α ([4] in the paper).

SC removes every occurrence of a trajectory's top-m signature locations
from that trajectory, keeping everything else untouched. RSC-α extends
the removal to every point within radius α of a signature location.
The paper uses these to show that *deleting* signatures preserves
utility but stays vulnerable to map-matching recovery.
"""

from __future__ import annotations

from repro.core.signature import SignatureExtractor
from repro.geo.geometry import point_distance
from repro.trajectory.model import Trajectory, TrajectoryDataset


class SignatureClosure:
    """SC: drop all top-m signature points of each trajectory."""

    def __init__(self, signature_size: int = 10) -> None:
        self.extractor = SignatureExtractor(m=signature_size)

    def anonymize(self, dataset: TrajectoryDataset) -> TrajectoryDataset:
        index = self.extractor.extract(dataset)
        anonymized = []
        for trajectory in dataset:
            drop = set(index.signature_locations(trajectory.object_id))
            points = [p for p in trajectory if p.loc not in drop]
            anonymized.append(Trajectory(trajectory.object_id, points))
        return TrajectoryDataset(anonymized)


class RadiusSignatureClosure:
    """RSC-α: additionally drop points within ``radius`` of a signature.

    ``radius`` is in metres (the paper sweeps α over 0.1-5, in km).
    """

    def __init__(self, signature_size: int = 10, radius: float = 1000.0) -> None:
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.extractor = SignatureExtractor(m=signature_size)
        self.radius = radius

    def anonymize(self, dataset: TrajectoryDataset) -> TrajectoryDataset:
        index = self.extractor.extract(dataset)
        anonymized = []
        for trajectory in dataset:
            centres = [
                entry.loc for entry in index.signatures[trajectory.object_id]
            ]
            banned = set(centres)
            points = [
                p
                for p in trajectory
                if p.loc not in banned
                and all(
                    point_distance(p.coord, centre) > self.radius
                    for centre in centres
                )
            ]
            anonymized.append(Trajectory(trajectory.object_id, points))
        return TrajectoryDataset(anonymized)
