"""Tests for all seven comparison baselines."""

import pytest

from repro.baselines.adatrace import AdaTrace
from repro.baselines.dpt import DPT
from repro.baselines.glove import Glove
from repro.baselines.klt import KLT, poi_category
from repro.baselines.signature_closure import (
    RadiusSignatureClosure,
    SignatureClosure,
)
from repro.baselines.w4m import W4M
from repro.core.signature import SignatureExtractor
from repro.datagen.generator import FleetConfig, generate_fleet
from repro.geo.geometry import point_distance
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(
        FleetConfig(n_objects=12, points_per_trajectory=60, rows=10, cols=10, seed=21)
    )


def traj(object_id, coords, t0=0.0):
    return Trajectory(
        object_id,
        [Point(float(x), float(y), t0 + 60.0 * i) for i, (x, y) in enumerate(coords)],
    )


class TestSignatureClosure:
    def test_removes_signature_locations(self, fleet):
        m = 3
        sc = SignatureClosure(signature_size=m)
        index = SignatureExtractor(m=m).extract(fleet.dataset)
        result = sc.anonymize(fleet.dataset)
        for trajectory in result:
            banned = set(index.signature_locations(trajectory.object_id))
            assert not banned & trajectory.distinct_locations()

    def test_preserves_non_signature_points(self, fleet):
        sc = SignatureClosure(signature_size=3)
        index = SignatureExtractor(m=3).extract(fleet.dataset)
        result = sc.anonymize(fleet.dataset)
        for original in fleet.dataset:
            banned = set(index.signature_locations(original.object_id))
            kept_expected = [p.coord for p in original if p.loc not in banned]
            kept_actual = [p.coord for p in result.by_id(original.object_id)]
            assert kept_actual == kept_expected

    def test_preserves_object_ids(self, fleet):
        result = SignatureClosure(signature_size=2).anonymize(fleet.dataset)
        assert [t.object_id for t in result] == [t.object_id for t in fleet.dataset]


class TestRadiusSignatureClosure:
    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            RadiusSignatureClosure(radius=-1.0)

    def test_zero_radius_equals_sc_or_less(self, fleet):
        rsc = RadiusSignatureClosure(signature_size=3, radius=0.0)
        sc = SignatureClosure(signature_size=3)
        r_rsc = rsc.anonymize(fleet.dataset)
        r_sc = sc.anonymize(fleet.dataset)
        for a, b in zip(r_rsc, r_sc, strict=True):
            assert len(a) == len(b)

    def test_larger_radius_removes_more(self, fleet):
        small = RadiusSignatureClosure(signature_size=3, radius=100.0)
        large = RadiusSignatureClosure(signature_size=3, radius=3000.0)
        kept_small = small.anonymize(fleet.dataset).total_points()
        kept_large = large.anonymize(fleet.dataset).total_points()
        assert kept_large < kept_small

    def test_no_point_within_radius_of_signature(self, fleet):
        radius = 500.0
        rsc = RadiusSignatureClosure(signature_size=3, radius=radius)
        index = SignatureExtractor(m=3).extract(fleet.dataset)
        result = rsc.anonymize(fleet.dataset)
        for trajectory in result:
            centres = [
                e.loc for e in index.signatures[trajectory.object_id]
            ]
            for p in trajectory:
                for centre in centres:
                    assert point_distance(p.coord, centre) > radius


class TestW4M:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            W4M(k=1)
        with pytest.raises(ValueError):
            W4M(delta=-5.0)

    def test_cluster_sizes_at_least_k(self, fleet):
        w4m = W4M(k=4, delta=400.0)
        clusters = w4m._clusters(fleet.dataset)
        assert all(len(c) >= 4 for c in clusters)
        covered = sorted(i for c in clusters for i in c)
        assert covered == list(range(len(fleet.dataset)))

    def test_members_within_delta_of_pivot(self, fleet):
        """(k, δ)-anonymity: every published sample co-locates with the
        cluster pivot within δ."""
        delta = 400.0
        w4m = W4M(k=4, delta=delta)
        result = w4m.anonymize(fleet.dataset)
        clusters = w4m._clusters(fleet.dataset)
        for members in clusters:
            pivot_original = fleet.dataset[members[0]]
            pivot_coords = [p.coord for p in pivot_original]
            for index in members:
                for p in result[index]:
                    nearest = min(
                        point_distance(p.coord, c) for c in pivot_coords
                    )
                    assert nearest <= delta + 1e-6

    def test_preserves_ids_and_suppresses_unmatchable(self, fleet):
        result = W4M(k=4, delta=400.0).anonymize(fleet.dataset)
        for original, published in zip(fleet.dataset, result, strict=True):
            assert original.object_id == published.object_id
            assert len(published) <= len(original)
        # W4M suppresses rather than publishing everything verbatim.
        assert result.total_points() < fleet.dataset.total_points()

    def test_kept_points_mostly_unchanged(self, fleet):
        """Points inside the cylinder are published verbatim — the
        residual that keeps W4M linkable in the paper."""
        result = W4M(k=4, delta=400.0).anonymize(fleet.dataset)
        unchanged = 0
        kept = 0
        for original, published in zip(fleet.dataset, result, strict=True):
            original_coords = {p.coord for p in original}
            for p in published:
                kept += 1
                if p.coord in original_coords:
                    unchanged += 1
        assert kept > 0
        assert unchanged / kept > 0.5

    def test_empty_dataset(self):
        assert len(W4M(k=2).anonymize(TrajectoryDataset())) == 0

    def test_small_dataset_single_cluster(self):
        ds = TrajectoryDataset([traj("a", [(0, 0), (10, 0)]), traj("b", [(5, 5), (15, 5)])])
        result = W4M(k=5, delta=100.0).anonymize(ds)
        assert len(result) == 2


class TestGlove:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Glove(k=1)
        with pytest.raises(ValueError):
            Glove(cell_size=0)

    def test_groups_reach_k(self, fleet):
        glove = Glove(k=4)
        groups = glove._groups(fleet.dataset)
        assert all(len(g) >= 4 or len(groups) == 1 for g in groups)

    def test_group_members_publish_identical_geometry(self, fleet):
        glove = Glove(k=4, cell_size=800.0)
        result = glove.anonymize(fleet.dataset)
        groups = glove._groups(fleet.dataset)
        for members in groups:
            shapes = {
                tuple(p.coord for p in result[i]) for i in members
            }
            assert len(shapes) == 1  # k-anonymous: identical published shape

    def test_points_snapped_to_cell_centres(self, fleet):
        cell = 800.0
        result = Glove(k=4, cell_size=cell).anonymize(fleet.dataset)
        for trajectory in result:
            for p in trajectory:
                assert (p.x / cell) % 1 == pytest.approx(0.5)
                assert (p.y / cell) % 1 == pytest.approx(0.5)

    def test_empty_dataset(self):
        assert len(Glove(k=2).anonymize(TrajectoryDataset())) == 0


class TestKLT:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            KLT(l_diversity=0)
        with pytest.raises(ValueError):
            KLT(t_closeness=1.5)

    def test_poi_category_deterministic_and_bounded(self):
        c1 = poi_category((100.0, 200.0), 8)
        c2 = poi_category((100.0, 200.0), 8)
        assert c1 == c2
        assert 0 <= c1 < 8

    def test_groups_satisfy_l_diversity(self, fleet):
        klt = KLT(k=3, l_diversity=2, t_closeness=0.5)
        groups = klt._groups(fleet.dataset)
        for group in groups:
            histogram = klt._category_histogram(fleet.dataset, group)
            assert len(histogram) >= 2 or len(groups) == 1

    def test_anonymize_runs(self, fleet):
        result = KLT(k=3, l_diversity=2, t_closeness=0.3).anonymize(fleet.dataset)
        assert len(result) == len(fleet.dataset)


class TestDPT:
    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            DPT(grid=1)

    def test_generates_synthetic_dataset(self, fleet):
        result = DPT(epsilon=1.0, grid=12, seed=0).anonymize(fleet.dataset)
        assert len(result) == len(fleet.dataset)
        # Synthetic: ids are fresh, not the original object ids.
        assert all(t.object_id.startswith("dpt") for t in result)

    def test_no_record_level_truthfulness(self, fleet):
        """DPT output should share almost no exact points with the input."""
        result = DPT(epsilon=1.0, grid=12, seed=1).anonymize(fleet.dataset)
        original_locs = set()
        for t in fleet.dataset:
            original_locs.update(t.distinct_locations())
        synthetic_locs = set()
        for t in result:
            synthetic_locs.update(t.distinct_locations())
        overlap = len(original_locs & synthetic_locs) / max(len(synthetic_locs), 1)
        assert overlap < 0.2

    def test_deterministic_with_seed(self, fleet):
        a = DPT(epsilon=1.0, grid=12, seed=5).anonymize(fleet.dataset)
        b = DPT(epsilon=1.0, grid=12, seed=5).anonymize(fleet.dataset)
        for ta, tb in zip(a, b, strict=True):
            assert [p.coord for p in ta] == [p.coord for p in tb]

    def test_points_at_cell_centres(self, fleet):
        result = DPT(epsilon=1.0, grid=12, seed=2).anonymize(fleet.dataset)
        bbox = fleet.dataset.bbox()
        w = bbox.width / 12
        sample = result[0][0]
        offset = (sample.x - bbox.min_x) / w % 1
        assert offset == pytest.approx(0.5, abs=1e-6)

    def test_empty_dataset(self):
        assert len(DPT(seed=0).anonymize(TrajectoryDataset())) == 0

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            DPT(order=3)

    def test_order2_runs_and_differs_from_order1(self, fleet):
        order1 = DPT(epsilon=2.0, grid=12, order=1, seed=6).anonymize(fleet.dataset)
        order2 = DPT(epsilon=2.0, grid=12, order=2, seed=6).anonymize(fleet.dataset)
        assert len(order2) == len(fleet.dataset)
        assert any(
            [p.coord for p in a] != [p.coord for p in b]
            for a, b in zip(order1, order2, strict=True)
        )

    def test_order2_respects_trigram_context(self):
        """Construct data where the successor depends on the previous
        TWO cells: order-2 synthesis must respect it, order-1 cannot.

        Pattern X cycles A->B->C, pattern Y cycles C->B->A. From B
        alone, both A and C are equally likely (order-1 confusion);
        given (A, B) the successor is always C.
        """
        bbox_step = 5000.0  # three well-separated grid cells on a line
        a, b, c = (0.0, 0.0), (bbox_step, 0.0), (2 * bbox_step, 0.0)

        def cycle(points, reps):
            seq = (points * reps)[: 3 * reps]
            return seq

        trajectories = []
        for i in range(6):
            coords = cycle([a, b, c], 10)
            trajectories.append(traj(f"x{i}", coords))
        for i in range(6):
            coords = cycle([c, b, a], 10)
            trajectories.append(traj(f"y{i}", coords))
        ds = TrajectoryDataset(trajectories)

        result = DPT(epsilon=50.0, grid=3, order=2, seed=1).anonymize(ds)
        # Map synthetic x-coordinates back to the three cells.
        violations = 0
        contexts = 0
        for t in result:
            cells = [round(p.x / bbox_step) for p in t]
            for i in range(len(cells) - 2):
                if cells[i] == 0 and cells[i + 1] == 1:  # context (A, B)
                    contexts += 1
                    if cells[i + 2] != 2:
                        violations += 1
        assert contexts > 0
        assert violations / contexts < 0.2


class TestAdaTrace:
    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            AdaTrace(top_grid=1)

    def test_generates_synthetic_dataset(self, fleet):
        result = AdaTrace(epsilon=1.0, seed=0).anonymize(fleet.dataset)
        assert len(result) == len(fleet.dataset)
        assert all(t.object_id.startswith("ada") for t in result)
        assert all(len(t) >= 2 for t in result)

    def test_deterministic_with_seed(self, fleet):
        a = AdaTrace(epsilon=1.0, seed=3).anonymize(fleet.dataset)
        b = AdaTrace(epsilon=1.0, seed=3).anonymize(fleet.dataset)
        for ta, tb in zip(a, b, strict=True):
            assert [p.coord for p in ta] == [p.coord for p in tb]

    def test_trips_end_at_sampled_destination(self, fleet):
        """The utility-aware synthesizer pins the trip endpoint."""
        ada = AdaTrace(epsilon=5.0, seed=4)
        result = ada.anonymize(fleet.dataset)
        bbox = fleet.dataset.bbox()
        # Endpoints should be cell centres of the adaptive grid, i.e.
        # every trajectory ends somewhere inside the data extent.
        for t in result:
            assert bbox.expand(1.0).contains(t[len(t) - 1].coord)

    def test_empty_dataset(self):
        assert len(AdaTrace(seed=0).anonymize(TrajectoryDataset())) == 0
