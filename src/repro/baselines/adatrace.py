"""AdaTrace: utility-aware, attack-resilient DP trace synthesis [25, 26].

AdaTrace extracts four noisy features from the input dataset —

1. a *density-adaptive grid* (coarse cells refined where noisy density
   is high),
2. a Markov *mobility model* over grid cells,
3. a *trip distribution* over (start, end) cell pairs, and
4. a *length distribution* per trip —

and synthesizes trajectories by sampling a trip, a length, and a
mobility-model walk from start toward destination. The budget is split
evenly across the four features. Its utility-aware synthesizer is why
it beats DPT on INF/TE in the paper's Table II: trips respect the
empirical origin-destination structure instead of free-running a
prefix tree.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from typing import TYPE_CHECKING

from repro.core.accounting import CompositionLedger
from repro.core.laplace import LaplaceMechanism
from repro.geo.geometry import BBox, point_distance
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.api.spec import MethodSpec
    from repro.core.pipeline import AnonymizationReport

Cell = tuple[int, int, int]  # (refined flag handled via third coordinate)


class AdaTrace:
    """Four-feature DP synthesizer."""

    def __init__(
        self,
        epsilon: float = 1.0,
        top_grid: int = 6,
        refine_factor: int = 2,
        refine_threshold: float = 0.02,
        sampling_interval: float = 186.0,
        seed: int | None = None,
    ) -> None:
        if top_grid < 2:
            raise ValueError("top grid must be at least 2")
        self.epsilon = epsilon
        self.top_grid = top_grid
        self.refine_factor = refine_factor
        self.refine_threshold = refine_threshold
        self.sampling_interval = sampling_interval
        self.seed = seed
        self._mechanism = LaplaceMechanism(epsilon / 4.0)

    def config(self) -> dict:
        """Constructor kwargs reproducing this configuration."""
        return {
            "epsilon": self.epsilon,
            "top_grid": self.top_grid,
            "refine_factor": self.refine_factor,
            "refine_threshold": self.refine_threshold,
            "sampling_interval": self.sampling_interval,
            "seed": self.seed,
        }

    def spec(self) -> "MethodSpec":
        """This configuration as a declarative, serializable spec."""
        from repro.api.spec import MethodSpec

        return MethodSpec("adatrace", self.config())

    # -- adaptive grid -------------------------------------------------------------

    def _top_cell(self, x: float, y: float, bbox: BBox) -> tuple[int, int]:
        cx = int((x - bbox.min_x) / max(bbox.width, 1e-9) * self.top_grid)
        cy = int((y - bbox.min_y) / max(bbox.height, 1e-9) * self.top_grid)
        return (
            min(max(cx, 0), self.top_grid - 1),
            min(max(cy, 0), self.top_grid - 1),
        )

    def _build_grid(
        self, dataset: TrajectoryDataset, bbox: BBox, rng: random.Random
    ) -> set[tuple[int, int]]:
        """Noisy density scan: returns the set of *refined* top cells."""
        density: Counter = Counter()
        total = 0
        for trajectory in dataset:
            for p in trajectory:
                density[self._top_cell(p.x, p.y, bbox)] += 1
                total += 1
        refined: set[tuple[int, int]] = set()
        for cell in sorted(density):
            noisy = self._mechanism.perturb_count(density[cell], rng, lower=0)
            if total > 0 and noisy / total >= self.refine_threshold:
                refined.add(cell)
        return refined

    def _cell_of(
        self,
        x: float,
        y: float,
        bbox: BBox,
        refined: set[tuple[int, int]],
    ) -> Cell:
        top = self._top_cell(x, y, bbox)
        if top not in refined:
            return (top[0], top[1], 0)
        # Sub-cell index within the refined top cell.
        w = bbox.width / self.top_grid
        h = bbox.height / self.top_grid
        sub_x = int(((x - bbox.min_x) - top[0] * w) / max(w, 1e-9) * self.refine_factor)
        sub_y = int(((y - bbox.min_y) - top[1] * h) / max(h, 1e-9) * self.refine_factor)
        sub_x = min(max(sub_x, 0), self.refine_factor - 1)
        sub_y = min(max(sub_y, 0), self.refine_factor - 1)
        return (top[0], top[1], 1 + sub_x * self.refine_factor + sub_y)

    def _cell_centre(self, cell: Cell, bbox: BBox) -> tuple[float, float]:
        w = bbox.width / self.top_grid
        h = bbox.height / self.top_grid
        base_x = bbox.min_x + cell[0] * w
        base_y = bbox.min_y + cell[1] * h
        if cell[2] == 0:
            return (base_x + w / 2, base_y + h / 2)
        sub = cell[2] - 1
        sub_x, sub_y = divmod(sub, self.refine_factor)
        sw = w / self.refine_factor
        sh = h / self.refine_factor
        return (base_x + (sub_x + 0.5) * sw, base_y + (sub_y + 0.5) * sh)

    # -- model building ----------------------------------------------------------------

    def _noisy_counter(self, counts: Counter, rng: random.Random) -> Counter:
        noisy = Counter()
        for key in sorted(counts):
            value = self._mechanism.perturb_count(counts[key], rng, lower=0)
            if value > 0:
                noisy[key] = value
        return noisy

    @staticmethod
    def _sample(counter: Counter, rng: random.Random):
        total = sum(counter.values())
        roll = rng.uniform(0.0, total)
        cumulative = 0.0
        for key in sorted(counter):
            cumulative += counter[key]
            if roll <= cumulative:
                return key
        return max(counter)

    def anonymize(self, dataset: TrajectoryDataset) -> TrajectoryDataset:
        result, _ = self.anonymize_with_report(dataset)
        return result

    def anonymize_with_report(
        self, dataset: TrajectoryDataset
    ) -> "tuple[TrajectoryDataset, AnonymizationReport]":
        """Synthesize and return ``(dataset, report)`` together.

        The report's :class:`CompositionLedger` records each of the
        four features' Laplace draws next to where they happen, so
        AdaTrace's even four-way budget split composes through the
        same audit trail as the frequency pipeline's.
        """
        from repro.core.pipeline import AnonymizationReport

        ledger = CompositionLedger()
        report = AnonymizationReport(
            epsilon_total=self.epsilon, accounting=ledger, spec=self.spec()
        )
        result = self._synthesize_dataset(dataset, ledger)
        report.budget_ledger = [
            (draw.label, draw.epsilon) for draw in ledger.draws
        ]
        return result, report

    def _synthesize_dataset(
        self, dataset: TrajectoryDataset, ledger: CompositionLedger
    ) -> TrajectoryDataset:
        if len(dataset) == 0:
            return dataset.copy()
        rng = random.Random(self.seed)
        bbox = dataset.bbox()
        refined = self._build_grid(dataset, bbox, rng)
        ledger.record("adatrace/grid_density", self.epsilon / 4.0)

        trips: Counter = Counter()
        lengths: Counter = Counter()
        mobility: dict[Cell, Counter] = defaultdict(Counter)
        for trajectory in dataset:
            if len(trajectory) == 0:
                continue
            cells: list[Cell] = []
            for p in trajectory:
                cell = self._cell_of(p.x, p.y, bbox, refined)
                if not cells or cells[-1] != cell:
                    cells.append(cell)
            trips[(cells[0], cells[-1])] += 1
            lengths[len(cells) // 8] += 1
            for a, b in zip(cells, cells[1:], strict=False):
                mobility[a][b] += 1

        noisy_trips = self._noisy_counter(trips, rng)
        ledger.record("adatrace/trip_distribution", self.epsilon / 4.0)
        noisy_lengths = self._noisy_counter(lengths, rng)
        ledger.record("adatrace/trip_lengths", self.epsilon / 4.0)
        noisy_mobility = {
            cell: self._noisy_counter(counter, rng)
            for cell, counter in sorted(mobility.items())
        }
        noisy_mobility = {c: k for c, k in noisy_mobility.items() if k}
        ledger.record("adatrace/mobility_model", self.epsilon / 4.0)

        synthetic = [
            self._synthesize(
                f"ada{index:05d}",
                noisy_trips,
                noisy_lengths,
                noisy_mobility,
                bbox,
                rng,
            )
            for index in range(len(dataset))
        ]
        return TrajectoryDataset(synthetic)

    # -- synthesis ------------------------------------------------------------------------

    def _synthesize(
        self,
        object_id: str,
        trips: Counter,
        lengths: Counter,
        mobility: dict[Cell, Counter],
        bbox: BBox,
        rng: random.Random,
    ) -> Trajectory:
        if not trips:
            return Trajectory(object_id, [])
        start, end = self._sample(trips, rng)
        bin_index = self._sample(lengths, rng) if lengths else 1
        target = max(2, bin_index * 8 + rng.randrange(8))
        destination = self._cell_centre(end, bbox)

        cells = [start]
        current = start
        while len(cells) < target and current != end:
            options = mobility.get(current)
            if not options:
                break
            # Utility-aware bias: prefer transitions that reduce the
            # remaining distance to the sampled destination.
            weighted = Counter()
            for nxt, count in options.items():
                gap = point_distance(self._cell_centre(nxt, bbox), destination)
                weighted[nxt] = count * (1.0 + 1.0 / (1.0 + gap / 1000.0))
            current = self._sample(weighted, rng)
            cells.append(current)
        if cells[-1] != end or len(cells) < 2:
            # Same-cell trips still publish a (dwelling) two-point trace.
            cells.append(end)

        t = 0.0
        points = []
        for cell in cells:
            x, y = self._cell_centre(cell, bbox)
            points.append(Point(x, y, t))
            t += self.sampling_interval
        return Trajectory(object_id, points)
