"""Experiment harness regenerating every table and figure of the paper.

* :mod:`repro.experiments.table2` — Table II (effectiveness of all 14
  methods across privacy / utility / recovery metrics);
* :mod:`repro.experiments.fig4` — Figure 4 (impact of the privacy
  budget ε on PureG / PureL / GL);
* :mod:`repro.experiments.fig5` — Figure 5 (efficiency of the index
  search strategies, and local vs global modification cost).

Each module exposes ``run(config)`` returning plain dictionaries and a
``main()`` that prints the paper-style rows; ``python -m
repro.experiments.table2`` (etc.) runs them from the shell.
"""

from repro.experiments.config import ExperimentConfig

__all__ = ["ExperimentConfig"]
