"""Command-line interface.

Subcommands::

    repro generate   synthesize a fleet and write it as CSV
    repro ingest     preprocess a raw dataset into a cached artifact
    repro methods    list every registered anonymization method
    repro anonymize  apply any registered method to a dataset
    repro publish    publish a chunked dataset as one ε-DP release
    repro attack     run the linkage attack between two datasets
    repro evaluate   compute utility metrics between two datasets
    repro experiment regenerate a table/figure of the paper
    repro check      run the project's static-analysis rules
    repro bench      benchmark history: import, compare, report
    repro serve      run the anonymization service daemon

Dataset arguments accept a planar CSV path, a preprocessed-artifact
directory, or an ingested registry name (see ``docs/data.md``).

``anonymize`` is a thin shell over :func:`repro.api.run`: pick a
method with ``--model`` (the paper's GL/PureG/PureL) or ``--method``
(any registry kind, including every baseline and third-party
plugins), tune it with the shared flags plus repeatable
``--param name=value`` overrides.

Example session::

    repro generate --objects 50 --points 150 -o fleet.csv
    repro anonymize -i fleet.csv -o private.csv --model gl --epsilon 1.0
    repro anonymize -i fleet.csv -o synthetic.csv --method adatrace
    repro attack -i fleet.csv -a private.csv --kind spatial
    repro evaluate -i fleet.csv -a private.csv
"""

from __future__ import annotations

import argparse
import json
import sys
import tarfile

from repro.api import MethodSpec, method_info, method_names, run
from repro.attacks.linkage import SIGNATURE_KINDS, LinkageAttack
from repro.datagen.generator import FleetConfig, generate_fleet
from repro.metrics.privacy import mutual_information
from repro.metrics.utility import (
    diameter_error,
    frequent_pattern_f1,
    information_loss,
    trip_error,
)
from repro.data.registry import DatasetRegistry, load_dataset
from repro.trajectory.io import write_csv

MODELS = ("gl", "pureg", "purel")


def _add_method_args(parser: argparse.ArgumentParser) -> None:
    """The shared method-selection flags of ``anonymize``/``publish``.

    One definition so the two subcommands (both feeding
    :func:`_build_spec`) can never drift apart.
    """
    parser.add_argument("--model", choices=MODELS, default="gl")
    parser.add_argument(
        "--method",
        default=None,
        metavar="NAME",
        help="any registered method kind (see `repro methods`); "
        "overrides --model",
    )
    parser.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="NAME=VALUE",
        help="extra method parameter (repeatable); values are parsed "
        "as JSON, falling back to plain strings",
    )
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--signature-size", type=int, default=10)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--index",
        choices=("linear", "uniform", "hierarchical"),
        default="hierarchical",
    )
    parser.add_argument(
        "--strategy",
        choices=("top_down", "bottom_up", "bottom_up_down"),
        default="bottom_up_down",
    )


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    """The shared batch-engine flags of ``anonymize``/``publish``."""
    parser.add_argument(
        "--engine",
        choices=("serial", "batch"),
        default="serial",
        help="'batch' shards the local stage across a worker pool "
        "(output is byte-identical to serial for the same seed)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="pool size for --engine batch; 0 = one per CPU core",
    )
    parser.add_argument(
        "--executor",
        choices=("process", "thread", "serial"),
        default="process",
        help="worker pool kind for --engine batch",
    )
    parser.add_argument(
        "--global-workers",
        type=int,
        default=1,
        metavar="N",
        help="thread-pool size for the global stage's wave planning "
        "with --engine batch; 0 = one per CPU core, 1 = in-process "
        "(output is byte-identical for any value)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Frequency-based DP randomization for spatial trajectories",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="synthesize a taxi fleet")
    generate.add_argument("--objects", type=int, default=50)
    generate.add_argument("--points", type=int, default=150)
    generate.add_argument("--rows", type=int, default=16)
    generate.add_argument("--cols", type=int, default=16)
    generate.add_argument("--hotspots", type=int, default=12)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("-o", "--output", required=True)

    ingest = sub.add_parser(
        "ingest",
        help="preprocess a raw dataset (T-Drive or planar CSV) into a "
        "cached artifact",
    )
    ingest.add_argument(
        "-i", "--source", default=None,
        help="raw source: a T-Drive file/directory or a planar CSV "
        "(not needed with --export/--import)",
    )
    ingest.add_argument(
        "--name", default=None,
        help="registry name of the dataset (accepts name@version with "
        "--export)",
    )
    ingest.add_argument(
        "--export",
        default=None,
        metavar="TAR",
        help="pack the named artifact into TAR (a .tar.gz with a "
        "sha256 checksum in its meta.json) instead of ingesting",
    )
    ingest.add_argument(
        "--import",
        dest="import_archive",
        default=None,
        metavar="TAR",
        help="install an exported artifact tarball into the registry "
        "(checksum-verified) instead of ingesting",
    )
    ingest.add_argument(
        "--root",
        default=None,
        help="registry root (default: $REPRO_DATA_ROOT or "
        "~/.cache/repro/datasets)",
    )
    ingest.add_argument(
        "--format", choices=("auto", "planar", "tdrive"), default="auto"
    )
    ingest.add_argument(
        "--origin",
        nargs=2,
        type=float,
        metavar=("LAT", "LON"),
        help="projection origin for T-Drive sources (default: mean "
        "coordinate, computed in an extra pass)",
    )
    ingest.add_argument(
        "--gap", type=float, default=1800.0, metavar="SECONDS",
        help="split trajectories into trips at gaps exceeding this",
    )
    ingest.add_argument(
        "--min-points", type=int, default=2, metavar="N",
        help="drop trips shorter than N points",
    )
    ingest.add_argument(
        "--bbox",
        nargs=4,
        type=float,
        metavar=("MIN_X", "MIN_Y", "MAX_X", "MAX_Y"),
        help="keep only samples inside this planar box (metres)",
    )
    ingest.add_argument(
        "--resample-dt", type=float, default=None, metavar="SECONDS",
        help="resample trips to a fixed interval",
    )
    ingest.add_argument(
        "--snap", type=float, default=None, metavar="METRES",
        help="snap coordinates to a lattice so repeat visits collapse",
    )
    ingest.add_argument(
        "--force", action="store_true",
        help="re-ingest even when a matching artifact is cached",
    )

    methods = sub.add_parser(
        "methods", help="list every registered anonymization method"
    )
    methods.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list each method's parameters and defaults",
    )

    anonymize = sub.add_parser("anonymize", help="anonymize a dataset")
    anonymize.add_argument(
        "-i", "--input", required=True,
        help="planar CSV, artifact directory, or ingested dataset name",
    )
    anonymize.add_argument("-o", "--output", required=True)
    _add_method_args(anonymize)
    _add_engine_args(anonymize)

    publish = sub.add_parser(
        "publish",
        help="publish a chunked dataset as one ε-DP release (shared "
        "TF estimate + composition ledger)",
    )
    publish.add_argument(
        "-i", "--input", required=True,
        help="planar CSV, artifact directory, or ingested dataset name",
    )
    publish.add_argument(
        "-o", "--output", required=True,
        help="merged anonymized CSV (written chunk by chunk)",
    )
    publish.add_argument(
        "--report",
        default=None,
        metavar="JSON",
        help="merged publish report with the composition ledger "
        "(default: <output>.report.json)",
    )
    publish.add_argument(
        "--chunk-size", type=int, default=500, metavar="N",
        help="trajectories per chunk (bounds peak memory)",
    )
    publish.add_argument(
        "--split",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fraction of ε spent on the shared TF estimate (pass 1); "
        "the rest funds the per-chunk local stage (default: the "
        "method's own split)",
    )
    publish.add_argument(
        "--publish-workers",
        type=int,
        default=1,
        metavar="N",
        help="realise this many spilled chunks at once in pass 2 "
        "(0 = one per core; output is byte-identical for any value)",
    )
    publish.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="where pass 1 stages parsed chunks (default: a private "
        "tempdir, cleaned up when the publish finishes)",
    )
    _add_method_args(publish)
    _add_engine_args(publish)

    attack = sub.add_parser("attack", help="linkage attack between datasets")
    attack.add_argument("-i", "--original", required=True)
    attack.add_argument("-a", "--anonymized", required=True)
    attack.add_argument("--kind", choices=SIGNATURE_KINDS + ("all",), default="all")
    attack.add_argument("--cell", type=float, default=250.0)

    evaluate = sub.add_parser("evaluate", help="utility metrics between datasets")
    evaluate.add_argument("-i", "--original", required=True)
    evaluate.add_argument("-a", "--anonymized", required=True)

    experiment = sub.add_parser("experiment", help="regenerate a paper artifact")
    experiment.add_argument(
        "target", choices=("table2", "fig4", "fig5", "publish")
    )
    experiment.add_argument(
        "--preset", choices=("smoke", "default", "large"), default="default"
    )
    experiment.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="chunk size for the publish experiment (default: quarter "
        "of the dataset)",
    )
    experiment.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan the sweep across N worker processes (1 = serial)",
    )
    experiment.add_argument(
        "--dataset",
        default=None,
        metavar="REF",
        help="evaluate on an ingested real dataset (name or path) "
        "instead of the synthetic fleet",
    )

    check = sub.add_parser(
        "check",
        help="run the privacy/determinism/concurrency static analyzer "
        "(see docs/analysis.md)",
    )
    check.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/repro, "
        "falling back to the installed repro package)",
    )
    check.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="report format (json emits the machine-readable schema; "
        "sarif emits a SARIF 2.1.0 log for code-scanning upload)",
    )
    check.add_argument(
        "--baseline",
        default=None,
        metavar="JSON",
        help="grandfathered-findings file (default: "
        "tools/analysis_baseline.json when present; 'none' disables)",
    )
    check.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather every current finding",
    )
    check.add_argument(
        "--rules",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    check.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )

    bench = sub.add_parser(
        "bench",
        help="benchmark history: import snapshots, compare against the "
        "baseline window, report shift classifications (see "
        "docs/benchmarks.md)",
    )
    bench.add_argument(
        "action",
        choices=("record", "compare", "report"),
        help="record: append a snapshot to the history; compare: gate "
        "the newest record of one bench/scale; report: classify every "
        "bench/scale partition",
    )
    bench.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        metavar="JSONL",
        help="the append-only record store (default: BENCH_history.jsonl)",
    )
    bench.add_argument(
        "--snapshot",
        default=None,
        metavar="JSON",
        help="flat BENCH_*.json snapshot to import (record only)",
    )
    bench.add_argument(
        "--source",
        default="snapshot-import",
        metavar="LABEL",
        help="provenance label stored with an imported record",
    )
    bench.add_argument(
        "--bench",
        dest="bench_name",
        default="engine",
        metavar="NAME",
        help="bench name to compare (default: engine)",
    )
    bench.add_argument(
        "--scale",
        default=None,
        metavar="KEY",
        help="scale key (paper-500x300-m10) or family (paper/smoke); "
        "required only when the bench has records at several scales",
    )
    bench.add_argument(
        "--window",
        type=int,
        default=5,
        metavar="N",
        help="baseline window: the last N same-scale records",
    )
    bench.add_argument(
        "--minor",
        type=float,
        default=0.05,
        metavar="FRACTION",
        help="relative shift that counts as a minor change (warns)",
    )
    bench.add_argument(
        "--significant",
        type=float,
        default=0.15,
        metavar="FRACTION",
        help="relative shift that counts as significant (fails)",
    )
    bench.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json emits the machine-readable schema)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the anonymization service daemon (see docs/serve.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8088,
        help="0 binds an ephemeral port (printed on the serving line)",
    )
    serve.add_argument(
        "--budget-root",
        default="serve-budgets",
        metavar="DIR",
        help="directory of the per-tenant epsilon account files",
    )
    serve.add_argument(
        "--spool",
        default="serve-spool",
        metavar="DIR",
        help="directory job results are spooled to before streaming",
    )
    serve.add_argument(
        "--tenant",
        action="append",
        default=[],
        metavar="NAME=EPS",
        help="declare a tenant budget at boot (repeatable); an "
        "existing account's budget must match",
    )
    serve.add_argument(
        "--registry",
        default=None,
        metavar="DIR",
        help="dataset registry root for name-based dataset refs",
    )
    serve.add_argument(
        "--job-workers",
        type=int,
        default=2,
        metavar="N",
        help="background job-runner pool width",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="batch-engine pool size per warm engine; 0 = one per core",
    )
    serve.add_argument(
        "--executor",
        choices=("process", "thread", "serial"),
        default="process",
        help="batch-engine worker pool kind",
    )
    serve.add_argument(
        "--global-workers",
        type=int,
        default=1,
        metavar="N",
        help="batch-engine global-stage thread pool; 1 = in-process",
    )
    serve.add_argument(
        "--publish-workers",
        type=int,
        default=1,
        metavar="N",
        help="per-chunk realization processes for publish jobs; "
        "0 = one per core (output is byte-identical for any value)",
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    fleet = generate_fleet(
        FleetConfig(
            n_objects=args.objects,
            points_per_trajectory=args.points,
            rows=args.rows,
            cols=args.cols,
            n_hotspots=args.hotspots,
            seed=args.seed,
        )
    )
    write_csv(fleet.dataset, args.output)
    stats = fleet.dataset.stats()
    print(
        f"wrote {int(stats['trajectories'])} trajectories "
        f"({int(stats['total_points'])} points) to {args.output}"
    )
    return 0


def _parse_param(override: str) -> tuple[str, object]:
    """``name=value`` → (name, value); values parse as JSON or string."""
    name, separator, raw = override.partition("=")
    if not separator or not name:
        raise ValueError(
            f"--param expects NAME=VALUE, got {override!r}"
        )
    try:
        value = json.loads(raw)
    except ValueError:
        value = raw
    return name, value


def _build_spec(args: argparse.Namespace) -> MethodSpec:
    """The :class:`MethodSpec` an ``anonymize`` invocation describes.

    ``--method`` (any registry kind) overrides ``--model``. Shared
    flags (``--epsilon``/``--seed``/...) flow into the spec only when
    the chosen method declares the matching parameter; ``--param``
    overrides win last and may name any declared parameter.
    """
    kind = args.method or args.model
    info = method_info(kind)  # raises listing alternatives
    accepted = set(info.signature.parameters)
    flags = {
        "epsilon": args.epsilon,
        "signature_size": args.signature_size,
        "seed": args.seed,
        "index_backend": args.index,
        "search_strategy": args.strategy,
    }
    params = {name: value for name, value in flags.items() if name in accepted}
    for override in args.param or ():
        name, value = _parse_param(override)
        params[name] = value
    return MethodSpec(kind, params)


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.data.preprocess import PreprocessConfig

    registry = DatasetRegistry(args.root)
    if args.export and args.import_archive:
        print(
            "repro ingest: --export and --import are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.export:
        if not args.name:
            print(
                "repro ingest: --export requires --name", file=sys.stderr
            )
            return 2
        try:
            dest = registry.export_artifact(args.name, args.export)
        except KeyError as exc:
            print(f"repro ingest: {exc.args[0]}", file=sys.stderr)
            return 2
        print(f"exported {args.name} -> {dest}")
        return 0
    if args.import_archive:
        try:
            result = registry.import_artifact(
                args.import_archive, force=args.force
            )
        except (ValueError, FileNotFoundError, tarfile.TarError) as exc:
            print(f"repro ingest: {exc}", file=sys.stderr)
            return 2
        verb = "imported" if result.fresh else "already installed"
        print(f"{verb} {result.name}@{result.version}")
        print(f"  artifact: {result.path}")
        return 0
    if not args.source or not args.name:
        print(
            "repro ingest: -i/--source and --name are required when "
            "not using --export/--import",
            file=sys.stderr,
        )
        return 2

    config = PreprocessConfig(
        gap_threshold_s=args.gap,
        min_points=args.min_points,
        bbox=tuple(args.bbox) if args.bbox else None,
        resample_dt=args.resample_dt,
        snap=args.snap,
    )
    result = registry.ingest(
        args.name,
        args.source,
        config,
        format=args.format,
        origin=tuple(args.origin) if args.origin else None,
        force=args.force,
    )
    if result.fresh:
        print(f"ingested {args.source} as {args.name}@{result.version}")
        print(f"  {result.stats.summary()}")
    else:
        print(
            f"cached artifact {args.name}@{result.version} is up to date "
            f"(use --force to re-ingest)"
        )
    print(f"  artifact: {result.path}")
    return 0


def _cmd_methods(args: argparse.Namespace) -> int:
    names = method_names()
    width = max(len(name) for name in names)
    family_width = max(len(method_info(name).family) for name in names)
    for name in names:
        info = method_info(name)
        marker = "synthetic" if info.synthetic else ""
        print(
            f"{name:<{width}s}  {info.family:<{family_width}s}  "
            f"{marker:<9s}  {info.summary}"
        )
        if args.verbose:
            for parameter, default in info.default_params().items():
                print(f"{'':<{width}s}    --param {parameter}={default!r}")
    return 0


def _cmd_anonymize(args: argparse.Namespace) -> int:
    try:
        spec = _build_spec(args)
    except (ValueError, TypeError) as exc:
        print(f"repro anonymize: {exc}", file=sys.stderr)
        return 2
    dataset = load_dataset(args.input)
    try:
        result = run(
            spec,
            dataset,
            engine=args.engine,
            workers=args.workers,
            executor=args.executor,
            global_workers=args.global_workers,
        )
    except (ValueError, TypeError) as exc:
        print(f"repro anonymize: {exc}", file=sys.stderr)
        return 2
    write_csv(result.dataset, args.output)
    report = result.report
    if report is not None:
        print(
            f"anonymized {len(result.dataset)} trajectories with "
            f"{spec.kind.upper()} (eps = {report.epsilon_total:g}) "
            f"-> {args.output}"
        )
        for label, epsilon in report.budget_ledger:
            print(f"  budget: {epsilon:g} on {label}")
        print(f"  utility loss: {report.utility_loss / 1000.0:.2f} km")
    else:
        print(
            f"anonymized {len(result.dataset)} trajectories with "
            f"{spec.kind.upper()} -> {args.output}"
        )
    print(f"  method: {spec.kind} (config digest {spec.digest}, "
          f"{result.seconds:.2f}s, engine {result.engine})")
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    import csv
    import io
    import os

    from repro.api import publish as api_publish
    from repro.trajectory.io import CSV_HEADER

    try:
        spec = _build_spec(args)
    except (ValueError, TypeError) as exc:
        print(f"repro publish: {exc}", file=sys.stderr)
        return 2
    report_path = args.report or f"{args.output}.report.json"
    # Stream chunks into a staging file and move it into place only
    # after the publish succeeds, so a rejected invocation (wrong
    # method family, bad --split, corrupted spill) never clobbers a
    # previous good output with a partial one.
    staging = f"{args.output}.tmp"
    try:
        with open(staging, "wb") as handle:
            # Chunks arrive as worker-encoded CSV row bytes (the
            # byte_sink fast path), so the file is binary; the header
            # still goes through the csv writer so the two cannot
            # disagree on dialect.
            header = io.StringIO(newline="")
            csv.writer(header).writerow(CSV_HEADER)
            handle.write(header.getvalue().encode("utf-8"))
            report = api_publish(
                spec,
                args.input,
                chunk_size=args.chunk_size,
                split=args.split,
                engine=args.engine,
                workers=args.workers,
                executor=args.executor,
                global_workers=args.global_workers,
                publish_workers=args.publish_workers,
                spill_dir=args.spill_dir,
                byte_sink=lambda rows, _report: handle.write(rows),
            )
        # Report first, output last: if the report cannot be written
        # there is no release on disk claiming an audit trail it does
        # not have, and the previous output stays untouched.
        with open(report_path, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        os.replace(staging, args.output)
    except (ValueError, TypeError, KeyError, OSError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"repro publish: {message}", file=sys.stderr)
        return 2
    finally:
        # Never leave the staging file behind — not on clean rejects
        # above, not on unexpected errors surfacing as tracebacks.
        try:
            os.unlink(staging)
        except OSError:
            pass
    print(
        f"published {report.trajectories} trajectories in "
        f"{report.chunk_count} chunk(s) with {spec.kind.upper()} "
        f"(end-to-end eps = {report.epsilon_total:g}) -> {args.output}"
    )
    # Sequential draws print individually; parallel groups collapse to
    # one line each (their max is what composes, and a chunked publish
    # would otherwise print one line per chunk).
    for draw in report.accounting.sequential_draws():
        print(
            f"  ledger: {draw.epsilon:g} on {draw.label} "
            f"[{draw.scope}, sequential]"
        )
    for group, draws in report.accounting.groups().items():
        print(
            f"  ledger: {max(d.epsilon for d in draws):g} on {group} "
            f"[parallel over {len(draws)} chunk(s)]"
        )
    print(f"  utility loss: {report.utility_loss / 1000.0:.2f} km")
    print(f"  report: {report_path} ({report.seconds:.2f}s)")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    original = load_dataset(args.original)
    anonymized = load_dataset(args.anonymized)
    attack = LinkageAttack(cell_size=args.cell)
    kinds = SIGNATURE_KINDS if args.kind == "all" else (args.kind,)
    for kind in kinds:
        result = attack.link(original, anonymized, kind=kind)
        print(f"LA_{kind:<15s} {result.accuracy:.3f} "
              f"({result.correct}/{result.total} linked)")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    original = load_dataset(args.original)
    anonymized = load_dataset(args.anonymized)
    print(f"MI   {mutual_information(original, anonymized):.3f}")
    print(f"INF  {information_loss(original, anonymized, sample_stride=2):.3f}")
    print(f"DE   {diameter_error(original, anonymized):.3f}")
    print(f"TE   {trip_error(original, anonymized):.3f}")
    print(f"FFP  {frequent_pattern_f1(original, anonymized):.3f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.target == "table2":
        from repro.experiments.table2 import main as experiment_main
    elif args.target == "fig4":
        from repro.experiments.fig4 import main as experiment_main
    elif args.target == "publish":
        from repro.experiments.publish import main as experiment_main
    else:
        from repro.experiments.fig5 import main as experiment_main
    argv = [args.preset, str(args.workers)]
    if args.dataset:
        argv.extend(["--dataset", args.dataset])
    if args.target == "publish" and args.chunk_size is not None:
        argv.extend(["--chunk-size", str(args.chunk_size)])
    experiment_main(argv)
    return 0


def _default_check_paths() -> list[str]:
    """What ``repro check`` analyzes with no path arguments: the source
    tree when run from a checkout, the installed package otherwise."""
    import pathlib

    source_tree = pathlib.Path("src/repro")
    if source_tree.is_dir():
        return [str(source_tree)]
    import repro

    return [str(pathlib.Path(repro.__file__).parent)]


def _cmd_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import AnalysisError, Baseline, all_rules, analyze_paths

    if args.list_rules:
        for registered in all_rules():
            print(f"{registered.code}  {registered.name}: {registered.summary}")
        return 0
    codes = None
    if args.rules:
        codes = [code.strip() for code in args.rules.split(",") if code.strip()]
    default_baseline = Path("tools/analysis_baseline.json")
    if args.baseline and args.baseline.lower() == "none":
        baseline_path = None
    elif args.baseline:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = default_baseline if default_baseline.is_file() else None
    paths = args.paths or _default_check_paths()
    try:
        if args.update_baseline:
            # Grandfather what exists today: analyze without a baseline
            # and write one absorbing every finding.
            report = analyze_paths(paths, codes=codes)
            target = baseline_path or default_baseline
            Baseline.from_findings(
                report.findings, reason="grandfathered by --update-baseline"
            ).save(target)
            print(
                f"baseline updated: {target} "
                f"({len(report.findings)} finding(s) grandfathered)"
            )
            return 0
        report = analyze_paths(paths, baseline=baseline_path, codes=codes)
    except (AnalysisError, KeyError, ValueError, OSError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"repro check: {message}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    elif args.format == "sarif":
        print(json.dumps(report.to_sarif(), indent=2))
    else:
        print(report.render_human())
    return report.exit_code()


def _cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench record|compare|report`` — exit 0/1/2 like ``check``.

    0: stable or better (minor shifts print as warnings), 1: significant
    degradation of any tracked key, 2: the invocation itself failed
    (missing/corrupt history, cross-scale comparison, bad snapshot).
    """
    from pathlib import Path

    from repro.bench import (
        BenchHistory,
        BenchRecord,
        HistoryError,
        RecordError,
        Thresholds,
    )

    history = BenchHistory(args.history)
    try:
        thresholds = Thresholds(
            minor=args.minor, significant=args.significant
        )
        if args.action == "record":
            if not args.snapshot:
                print(
                    "repro bench record: --snapshot is required "
                    "(the flat BENCH_*.json to import)",
                    file=sys.stderr,
                )
                return 2
            payload = json.loads(Path(args.snapshot).read_text())
            record = BenchRecord.from_snapshot(
                payload, provenance={"source": args.source}
            )
            history.append(record)
            print(
                f"recorded bench {record.bench} @ {record.scale.key} "
                f"({len(record.tracked_keys())} tracked key(s)) "
                f"-> {history.path}"
            )
            return 0
        if args.action == "compare":
            comparisons = [
                history.compare_latest(
                    args.bench_name,
                    scale=args.scale,
                    window=args.window,
                    thresholds=thresholds,
                )
            ]
        else:  # report
            comparisons = history.compare_all(
                window=args.window, thresholds=thresholds
            )
            if not comparisons:
                print(
                    f"repro bench report: {history.path} is empty",
                    file=sys.stderr,
                )
                return 2
    except (
        HistoryError,
        RecordError,
        ValueError,
        OSError,
        json.JSONDecodeError,
    ) as exc:
        print(f"repro bench {args.action}: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(
            json.dumps(
                {
                    "version": 1,
                    "clean": all(c.clean for c in comparisons),
                    "comparisons": [c.to_dict() for c in comparisons],
                },
                indent=2,
            )
        )
    else:
        for comparison in comparisons:
            print(comparison.render_human())
    return max(comparison.exit_code() for comparison in comparisons)


def _parse_tenant(spec: str) -> tuple[str, float]:
    """``NAME=EPS`` → ``(name, budget)`` with a helpful error."""
    name, sep, raw = spec.partition("=")
    if not sep or not name:
        raise ValueError(
            f"--tenant expects NAME=EPS (a tenant name and its epsilon "
            f"budget), got {spec!r}"
        )
    try:
        budget = float(raw)
    except ValueError:
        raise ValueError(
            f"--tenant {name}: budget {raw!r} is not a number"
        ) from None
    return name, budget


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve`` — boot the daemon, block until interrupted.

    Prints one machine-parsable ``serving on http://host:port`` line
    once the listener is bound (how callers learn an ephemeral port),
    then serves until SIGINT, which drains in-flight jobs and closes
    the warm engines before exiting.
    """
    from repro.serve import ServeConfig, Daemon

    try:
        tenants = tuple(_parse_tenant(spec) for spec in args.tenant)
    except ValueError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    config = ServeConfig(
        host=args.host,
        port=args.port,
        budget_root=args.budget_root,
        spool=args.spool,
        job_workers=args.job_workers,
        engine_workers=args.workers,
        engine_executor=args.executor,
        global_workers=args.global_workers,
        publish_workers=args.publish_workers,
        tenants=tenants,
        registry_root=args.registry,
    )
    try:
        daemon = Daemon(config)
    except (ValueError, OSError) as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    for tenant, jobs in sorted(daemon.recovered.items()):
        print(
            f"recovered {len(jobs)} orphaned reservation(s) for "
            f"tenant {tenant!r} (charged in full)",
            file=sys.stderr,
        )
    host, port = daemon.start()
    print(f"serving on http://{host}:{port}", flush=True)
    try:
        # serve_forever runs on the daemon's own thread; this one
        # blocks until SIGINT or a POST /v1/shutdown completes.
        daemon.wait()
    except KeyboardInterrupt:
        print("shutting down (draining in-flight jobs)...", flush=True)
    finally:
        daemon.shutdown(drain=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "ingest": _cmd_ingest,
        "methods": _cmd_methods,
        "anonymize": _cmd_anonymize,
        "publish": _cmd_publish,
        "attack": _cmd_attack,
        "evaluate": _cmd_evaluate,
        "experiment": _cmd_experiment,
        "check": _cmd_check,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like
        # well-behaved CLI tools do.
        import os

        os.close(sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
