"""Dependency-free order statistics for benchmark baselines.

The baseline window over a :class:`~repro.bench.history.BenchHistory`
is a handful of floats per tracked key — small enough that sorting on
every call is cheaper than any clever structure, and keeping numpy out
means the regression gate (``tools/check_bench.py``) can run in the
leanest CI job without the engine's dependencies.

``percentile`` follows the linear-interpolation convention (numpy's
default, Excel's ``PERCENTILE.INC``): ``q=0`` is the minimum, ``q=100``
the maximum, everything between interpolates linearly between the two
nearest order statistics. Empty input yields ``None`` rather than
raising, so callers can treat "no baseline yet" as data, not as an
error path.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

__all__ = ["iqr", "median", "percentile", "summarize"]


def percentile(values: Iterable[float], q: float) -> float | None:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    ``q`` must lie in ``[0, 100]``. Returns ``None`` for empty input.
    The result is always within ``[min(values), max(values)]``, is
    non-decreasing in ``q``, and does not depend on the input order.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    ordered = sorted(float(v) for v in values)
    if not ordered:
        return None
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * (q / 100.0)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    fraction = position - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def median(values: Iterable[float]) -> float | None:
    """The 50th percentile (``None`` for empty input)."""
    return percentile(values, 50.0)


def iqr(values: Iterable[float]) -> float | None:
    """Interquartile range ``p75 - p25`` (``None`` for empty input)."""
    materialized = list(values)
    upper = percentile(materialized, 75.0)
    lower = percentile(materialized, 25.0)
    if upper is None or lower is None:
        return None
    return upper - lower


def summarize(values: Iterable[float]) -> dict[str, float | int | None]:
    """The full baseline summary used by shift classification reports.

    ``{"count", "min", "p25", "median", "p75", "max", "iqr"}`` — every
    statistic ``None`` when the window is empty.
    """
    materialized = [float(v) for v in values]
    if not materialized:
        return {
            "count": 0,
            "min": None,
            "p25": None,
            "median": None,
            "p75": None,
            "max": None,
            "iqr": None,
        }
    return {
        "count": len(materialized),
        "min": min(materialized),
        "p25": percentile(materialized, 25.0),
        "median": percentile(materialized, 50.0),
        "p75": percentile(materialized, 75.0),
        "max": max(materialized),
        "iqr": iqr(materialized),
    }
