"""The whole-dataset streaming publisher.

``BatchAnonymizer.anonymize_stream`` over ``chunked()`` readers treats
every chunk as its own release: each chunk draws its own noisy TF over
its own candidate set, so the published stream is k independent DP
releases with no shared target and no budget story for the dataset as
a whole.  :class:`StreamPublisher` closes that gap with a **two-pass**
protocol that publishes one consistent ε-DP release of the entire
(possibly larger-than-memory) dataset:

* **Pass 1 — estimate.**  Stream the chunks once, accumulating the
  dataset-wide TF distribution, the dataset size ``N``, and the union
  candidate set P (chunk-local signature extraction).  Draw **one**
  noisy TF over P with the global mechanism's ε_G — the only
  whole-dataset mechanism invocation.
* **Pass 2 — realise.**  Apportion each location's shared TF delta
  across the chunks (largest-remainder, capped by per-chunk capacity,
  so per-chunk deltas sum *exactly* to the shared delta), re-stream
  the chunks, and anonymize each one via the existing wave pipeline
  with its apportioned target injected (``tf_target``) — pure
  modification, no fresh TF draw.  The local PF stage runs per chunk
  as usual.

Accounting (:mod:`repro.core.accounting`): the shared TF draw is one
*sequential* draw over the whole dataset; the per-chunk local PF draws
cover **disjoint** trajectory sets and compose in *parallel*, so the
end-to-end budget is ε_G + max(ε_L) = ε_G + ε_L — exactly the declared
split, independent of the number of chunks.  The merged
:class:`PublishReport` carries the full :class:`CompositionLedger`.

Determinism: the publisher reserves one call index and derives one
``base_seed`` shared by every chunk (per-trajectory local streams are
keyed by object id, so chunks never collide).  A single-chunk publish
is therefore **byte-identical** to ``anonymize`` on the same seeded
configuration.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.core.accounting import WHOLE_DATASET, CompositionLedger, apportion
from repro.core.global_mechanism import TFPerturbation
from repro.core.modification import ModificationReport
from repro.core.pipeline import (
    AnonymizationReport,
    FrequencyAnonymizer,
    derive_seed,
)
from repro.engine.batch import BatchAnonymizer
from repro.trajectory.model import LocationKey, TrajectoryDataset

if TYPE_CHECKING:  # engine sits below repro.api; runtime imports are lazy
    from repro.api.spec import MethodSpec

#: Chunk sink: receives each anonymized chunk as soon as it is ready
#: (write it out, ship it, …) so the publisher never holds the stream.
ChunkSink = Callable[[TrajectoryDataset, AnonymizationReport], None]

#: A re-iterable chunk source: each call starts a fresh iteration over
#: the same chunks (the publisher streams the data twice).
ChunkSource = Callable[[], Iterable[TrajectoryDataset]]

#: Label of the shared whole-dataset TF draw in the ledger.
SHARED_TF_LABEL = "global TF randomization"
#: Parallel group of the per-chunk local PF draws.
LOCAL_GROUP = "local PF randomization"


def chunk_source(
    ref, chunk_size: int, registry=None
) -> ChunkSource:
    """A re-iterable chunk source over any dataset reference.

    ``ref`` is anything :func:`repro.data.registry.stream_dataset`
    accepts (planar CSV path, artifact directory, or registry
    ``name[@version]``); each call re-opens the source, so both passes
    stream it with bounded memory.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    from repro.data.registry import stream_dataset
    from repro.data.stream import chunked

    def factory() -> Iterator[TrajectoryDataset]:
        return chunked(stream_dataset(ref, registry), chunk_size)

    return factory


@dataclass(slots=True)
class SharedTFEstimate:
    """Outcome of pass 1: the one whole-dataset noisy TF draw."""

    #: The shared perturbation over the union candidate set P, or
    #: ``None`` when the global mechanism is disabled (PureL-style
    #: publishing needs no TF target — parallel local releases only).
    perturbation: TFPerturbation | None
    #: Trajectories seen across all chunks.
    n_total: int
    #: Per-chunk trajectory counts, in stream order.
    chunk_sizes: list[int]
    #: Per-chunk *nonzero* TF restricted to P, in stream order —
    #: sparse, so memory stays O(occupied locations), not O(k·|P|).
    chunk_tf: list[dict[LocationKey, int]]
    #: The reserved per-call noise-stream index of this publish.
    call_index: int
    #: The noise base every chunk of pass 2 shares.
    base_seed: int

    @property
    def chunk_count(self) -> int:
        return len(self.chunk_sizes)


@dataclass(slots=True)
class PublishReport:
    """Everything observable about one published stream."""

    #: End-to-end ε composed from the ledger (== the declared split).
    epsilon_total: float
    #: The composition ledger behind :attr:`epsilon_total`.
    accounting: CompositionLedger
    #: Chunks published.
    chunk_count: int
    #: Trajectories published across all chunks.
    trajectories: int
    #: |P| — locations of the shared TF target (0 when global is off).
    tf_locations: int
    #: Sum of the per-chunk modification costs.
    utility_loss: float
    #: Per-chunk summaries, in stream order.
    chunks: list[dict] = field(default_factory=list)
    #: Provenance: the configuration that produced this stream.
    spec: "MethodSpec | None" = None
    #: Wall-clock seconds (both passes).
    seconds: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable merged report (the artifact's audit trail)."""
        return {
            "method": (
                None
                if self.spec is None
                else {**self.spec.to_dict(), "digest": self.spec.digest}
            ),
            "epsilon_total": self.epsilon_total,
            "accounting": self.accounting.to_dict(),
            "chunk_count": self.chunk_count,
            "trajectories": self.trajectories,
            "tf_locations": self.tf_locations,
            "utility_loss_m": self.utility_loss,
            "chunks": list(self.chunks),
            "seconds": self.seconds,
        }


class StreamPublisher:
    """Two-pass whole-dataset publisher over a chunked stream.

    Parameters
    ----------
    engine:
        A :class:`~repro.engine.batch.BatchAnonymizer` (pass 2 then
        shards each chunk's local stage and reuses the engine's shared
        wave-planning pool across chunks) or a bare
        :class:`~repro.core.pipeline.FrequencyAnonymizer` (chunks run
        serially in-process).  The wrapped pipeline's
        ``epsilon_global`` / ``epsilon_local`` *are* the budget split:
        ε_G buys the one shared TF estimate of pass 1, ε_L the
        parallel per-chunk local randomization of pass 2.
    """

    def __init__(self, engine: BatchAnonymizer | FrequencyAnonymizer) -> None:
        if isinstance(engine, BatchAnonymizer):
            self.engine = engine
            self.anonymizer = engine.anonymizer
        elif isinstance(engine, FrequencyAnonymizer):
            self.engine = engine
            self.anonymizer = engine
        else:
            raise TypeError(
                f"StreamPublisher needs a FrequencyAnonymizer or "
                f"BatchAnonymizer, got {type(engine).__name__}"
            )
        if self.anonymizer._global is not None and not self.anonymizer.global_first:
            # The shared TF is estimated over the *raw* stream; with
            # local-first ordering the pipeline would perturb the TF of
            # the locally-modified data instead, so the two would
            # silently diverge (and single-chunk byte-identity fail).
            raise ValueError(
                "StreamPublisher requires global_first=True when the "
                "global mechanism is enabled: the shared TF estimate is "
                "drawn over the raw stream"
            )

    # -- pass 1 -----------------------------------------------------------------

    def estimate(self, chunks: Iterable[TrajectoryDataset]) -> SharedTFEstimate:
        """Stream the chunks once; draw the shared noisy TF over P.

        The union candidate set P comes from chunk-local signature
        extraction; the TF values over P are the exact dataset-wide
        counts, so a single-chunk stream reproduces precisely the
        ``(tf, rng)`` pair the plain pipeline would perturb — the
        byte-identity anchor.
        """
        anonymizer = self.anonymizer
        global_tf: Counter = Counter()
        candidate_set: set[LocationKey] = set()
        chunk_tfs: list[Counter] = []
        sizes: list[int] = []
        needs_tf = anonymizer._global is not None
        for chunk in chunks:
            if len(chunk) == 0:
                continue
            sizes.append(len(chunk))
            if not needs_tf:
                # Without a global mechanism there is no shared target
                # to estimate; only the chunk sizes matter, so skip
                # the full counting scan of the stream.
                continue
            tf = chunk.trajectory_frequencies()
            chunk_tfs.append(tf)
            global_tf.update(tf)
            index = anonymizer.extractor.extract(chunk, tf=tf)
            candidate_set.update(index.candidate_set)
        if not sizes:
            raise ValueError("cannot publish an empty stream (no chunks)")
        n_total = sum(sizes)

        call_index = anonymizer.reserve_call_index()
        base_seed = anonymizer.base_seed_for(call_index)

        perturbation = None
        if anonymizer._global is not None:
            shared_tf = {loc: global_tf[loc] for loc in candidate_set}
            rng = random.Random(derive_seed(base_seed, "global"))
            perturbation = anonymizer._global.perturb(shared_tf, n_total, rng)
        restricted = [
            {loc: count for loc, count in tf.items() if loc in candidate_set}
            for tf in chunk_tfs
        ]
        return SharedTFEstimate(
            perturbation=perturbation,
            n_total=n_total,
            chunk_sizes=sizes,
            chunk_tf=restricted,
            call_index=call_index,
            base_seed=base_seed,
        )

    def chunk_targets(self, estimate: SharedTFEstimate) -> list[TFPerturbation] | None:
        """Apportion the shared TF delta into one target per chunk.

        For every location of P the shared delta splits across chunks
        proportionally to capacity — TF decreases weighted by how many
        of the chunk's trajectories contain the location (you cannot
        delete what is not there), increases by how many do *not*
        (an insertion targets a trajectory without the location) —
        with largest-remainder rounding, so the per-chunk deltas sum
        exactly to the shared delta and every per-chunk target stays
        inside ``[0, |chunk|]``.  A single chunk receives the shared
        perturbation verbatim.
        """
        shared = estimate.perturbation
        if shared is None:
            return None
        k = estimate.chunk_count
        deltas: list[dict[LocationKey, int]] = [{} for _ in range(k)]
        for loc in sorted(shared.original):
            d = shared.perturbed[loc] - shared.original[loc]
            if d == 0:
                continue
            origs = [estimate.chunk_tf[i].get(loc, 0) for i in range(k)]
            if d > 0:
                caps = [estimate.chunk_sizes[i] - origs[i] for i in range(k)]
                shares = apportion(d, caps, caps)
            else:
                shares = [-s for s in apportion(-d, origs, origs)]
            for i, share in enumerate(shares):
                if share:
                    deltas[i][loc] = share
        targets = []
        for i in range(k):
            # Sparse: the chunk's own nonzero TF plus any location its
            # delta share touches — never the full candidate set per
            # chunk (a single chunk still receives all of P, because
            # every candidate location has a nonzero dataset TF).
            original = dict(estimate.chunk_tf[i])
            perturbed = dict(original)
            for loc, share in deltas[i].items():
                perturbed[loc] = perturbed.get(loc, 0) + share
                original.setdefault(loc, 0)
            targets.append(
                TFPerturbation(
                    original=original,
                    perturbed=perturbed,
                    epsilon=shared.epsilon,
                )
            )
        return targets

    # -- pass 2 -----------------------------------------------------------------

    def publish(
        self, chunks: ChunkSource, sink: ChunkSink | None = None
    ) -> PublishReport:
        """Publish the whole stream; return the merged report.

        ``chunks`` is called twice — once per pass — and must replay
        the same chunking both times (sizes are verified; a drifting
        source aborts rather than publishing against a stale target).
        Each anonymized chunk is handed to ``sink`` as soon as it is
        ready, so the output can stream to disk without ever holding
        the dataset.
        """
        started = time.perf_counter()
        anonymizer = self.anonymizer
        estimate = self.estimate(iter(chunks()))
        targets = self.chunk_targets(estimate)

        ledger = CompositionLedger()
        if estimate.perturbation is not None:
            ledger.record(
                SHARED_TF_LABEL, anonymizer.epsilon_global, scope=WHOLE_DATASET
            )
        totals = ModificationReport()
        summaries: list[dict] = []
        trajectories = 0
        index = 0
        for chunk in chunks():
            if len(chunk) == 0:
                continue
            if index >= estimate.chunk_count or len(chunk) != estimate.chunk_sizes[index]:
                raise ValueError(
                    f"chunk source changed between passes: pass 1 saw "
                    f"{estimate.chunk_count} chunk(s) of sizes "
                    f"{estimate.chunk_sizes}, pass 2 diverged at chunk "
                    f"{index}"
                )
            scope = f"chunk:{index}"
            result, report = self.engine.anonymize_with_report(
                chunk,
                tf_target=None if targets is None else targets[index],
                base_seed=estimate.base_seed,
                scope=scope,
            )
            if anonymizer._local is not None:
                ledger.record_parallel(
                    LOCAL_GROUP,
                    "local PF randomization",
                    anonymizer.epsilon_local,
                    scope=scope,
                )
            trajectories += len(result)
            chunk_mods = ModificationReport()
            for part in (report.global_report, report.local_report):
                if part is not None:
                    chunk_mods.merge(part)
            totals.merge(chunk_mods)
            summaries.append(
                {
                    "scope": scope,
                    "trajectories": len(result),
                    "utility_loss_m": chunk_mods.utility_loss,
                    "insertions": chunk_mods.insertions,
                    "deletions": chunk_mods.deletions,
                    "unrealised": chunk_mods.unrealised,
                }
            )
            if sink is not None:
                sink(result, report)
            index += 1
        if index != estimate.chunk_count:
            raise ValueError(
                f"chunk source changed between passes: pass 1 saw "
                f"{estimate.chunk_count} chunk(s), pass 2 only {index}"
            )

        return PublishReport(
            epsilon_total=ledger.epsilon_total,
            accounting=ledger,
            chunk_count=estimate.chunk_count,
            trajectories=trajectories,
            tf_locations=(
                0
                if estimate.perturbation is None
                else len(estimate.perturbation.original)
            ),
            utility_loss=totals.utility_loss,
            chunks=summaries,
            spec=anonymizer.spec(),
            seconds=time.perf_counter() - started,
        )

    def publish_collected(
        self, chunks: ChunkSource
    ) -> tuple[TrajectoryDataset, PublishReport]:
        """:meth:`publish`, materialising the output (tests, small data)."""
        published: list = []
        report = self.publish(
            chunks, sink=lambda dataset, _report: published.extend(dataset)
        )
        return TrajectoryDataset(published), report
