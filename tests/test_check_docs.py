"""Tests for the docs↔CLI consistency checker (tools/check_docs.py)."""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_docs"] = module
    spec.loader.exec_module(module)
    return module


class TestSpec:
    def test_covers_every_subcommand(self, check_docs):
        spec = check_docs.build_spec()
        assert set(spec) == {
            "generate", "ingest", "methods", "anonymize", "publish",
            "attack", "evaluate", "experiment", "check", "bench",
            "serve",
        }
        assert "--tenant" in spec["serve"]["options"]
        assert "--budget-root" in spec["serve"]["options"]
        assert "--engine" in spec["anonymize"]["options"]
        assert "--method" in spec["anonymize"]["options"]
        assert "--param" in spec["anonymize"]["options"]
        assert "--dataset" in spec["experiment"]["options"]
        assert "--split" in spec["publish"]["options"]
        assert "--chunk-size" in spec["publish"]["options"]


class TestCheckCommand:
    def test_valid_command_passes(self, check_docs):
        spec = check_docs.build_spec()
        tokens = ["repro", "anonymize", "-i", "a.csv", "-o", "b.csv",
                  "--model", "gl"]
        assert check_docs.check_command(tokens, spec) == []

    def test_stale_flag_reported(self, check_docs):
        spec = check_docs.build_spec()
        tokens = ["repro", "anonymize", "--no-such-flag"]
        problems = check_docs.check_command(tokens, spec)
        assert any("--no-such-flag" in p for p in problems)

    def test_unknown_subcommand_reported(self, check_docs):
        spec = check_docs.build_spec()
        assert check_docs.check_command(["repro", "frobnicate"], spec)

    def test_bad_positional_choice_reported(self, check_docs):
        spec = check_docs.build_spec()
        problems = check_docs.check_command(
            ["repro", "experiment", "table9"], spec
        )
        assert any("table9" in p for p in problems)

    def test_long_flag_value_not_mistaken_for_positional(self, check_docs):
        spec = check_docs.build_spec()
        # 'smoke' is --preset's value, not the choice-constrained target.
        tokens = ["repro", "experiment", "--preset", "smoke", "fig4"]
        assert check_docs.check_command(tokens, spec) == []

    def test_multi_value_flag_arity_respected(self, check_docs):
        spec = check_docs.build_spec()
        tokens = ["repro", "ingest", "-i", "raw", "--name", "d",
                  "--origin", "39.9", "116.4", "--bbox", "0", "0", "1", "1"]
        assert check_docs.check_command(tokens, spec) == []

    def test_equals_form_consumes_no_extra_token(self, check_docs):
        spec = check_docs.build_spec()
        tokens = ["repro", "experiment", "--preset=smoke", "fig4"]
        assert check_docs.check_command(tokens, spec) == []


class TestIterDocCommands:
    def test_only_fenced_blocks_scanned(self, check_docs, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "prose repro anonymize --stale\n"
            "```bash\n"
            "$ repro generate --objects 5 -o out.csv\n"
            "repro evaluate -i a.csv \\\n"
            "  -a b.csv\n"
            "```\n"
        )
        commands = list(check_docs.iter_doc_commands(doc))
        assert [tokens[1] for _, tokens in commands] == ["generate", "evaluate"]
        # The continuation line merged into one invocation.
        assert commands[1][1] == ["repro", "evaluate", "-i", "a.csv",
                                  "-a", "b.csv"]

    def test_repo_docs_are_clean(self, check_docs, capsys):
        assert check_docs.main([]) == 0
        assert "stale" not in capsys.readouterr().err

    def test_main_flags_stale_docs(self, check_docs, tmp_path, capsys):
        doc = tmp_path / "stale.md"
        doc.write_text("```\nrepro anonymize --bogus\n```\n")
        assert check_docs.main([str(doc)]) == 1
        assert "--bogus" in capsys.readouterr().err
