"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.trajectory.io import read_csv


@pytest.fixture
def fleet_csv(tmp_path):
    path = tmp_path / "fleet.csv"
    code = main(
        [
            "generate",
            "--objects", "8",
            "--points", "60",
            "--rows", "10",
            "--cols", "10",
            "--seed", "3",
            "-o", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_csv(self, fleet_csv):
        dataset = read_csv(fleet_csv)
        assert len(dataset) == 8
        assert all(len(t) == 60 for t in dataset)

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        for target in (a, b):
            main(["generate", "--objects", "3", "--points", "30",
                  "--rows", "8", "--cols", "8", "--seed", "5", "-o", str(target)])
        assert a.read_text() == b.read_text()


class TestAnonymize:
    @pytest.mark.parametrize("model", ("gl", "pureg", "purel"))
    def test_models(self, fleet_csv, tmp_path, model, capsys):
        out = tmp_path / f"{model}.csv"
        code = main(
            [
                "anonymize",
                "-i", str(fleet_csv),
                "-o", str(out),
                "--model", model,
                "--epsilon", "1.0",
                "--signature-size", "3",
                "--seed", "1",
            ]
        )
        assert code == 0
        result = read_csv(out)
        assert len(result) == 8
        captured = capsys.readouterr().out
        assert "budget" in captured

    def test_custom_backend(self, fleet_csv, tmp_path):
        out = tmp_path / "out.csv"
        code = main(
            [
                "anonymize",
                "-i", str(fleet_csv),
                "-o", str(out),
                "--model", "purel",
                "--signature-size", "3",
                "--index", "uniform",
                "--seed", "2",
            ]
        )
        assert code == 0


class TestMethodsCommand:
    def test_lists_registry(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for kind in ("gl", "pureg", "purel", "sc", "rsc", "w4m", "glove",
                     "klt", "dpt", "adatrace"):
            assert kind in out
        assert "synthetic" in out

    def test_verbose_lists_params(self, capsys):
        assert main(["methods", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "--param epsilon=" in out
        assert "--param radius=" in out


class TestAnonymizeMethod:
    def test_method_baseline_end_to_end(self, fleet_csv, tmp_path, capsys):
        out = tmp_path / "ada.csv"
        code = main(
            [
                "anonymize", "-i", str(fleet_csv), "-o", str(out),
                "--method", "adatrace", "--epsilon", "1.0", "--seed", "1",
            ]
        )
        assert code == 0
        assert len(read_csv(out)) > 0
        captured = capsys.readouterr().out
        assert "ADATRACE" in captured
        assert "config digest" in captured

    def test_method_with_param_overrides(self, fleet_csv, tmp_path, capsys):
        out = tmp_path / "rsc.csv"
        code = main(
            [
                "anonymize", "-i", str(fleet_csv), "-o", str(out),
                "--method", "rsc",
                "--signature-size", "3",
                "--param", "radius=250.0",
            ]
        )
        assert code == 0
        assert "rsc" in capsys.readouterr().out

    def test_method_overrides_model(self, fleet_csv, tmp_path, capsys):
        out = tmp_path / "p.csv"
        code = main(
            [
                "anonymize", "-i", str(fleet_csv), "-o", str(out),
                "--model", "gl", "--method", "purel",
                "--signature-size", "3", "--seed", "2",
            ]
        )
        assert code == 0
        assert "PUREL" in capsys.readouterr().out

    def test_method_batch_engine(self, fleet_csv, tmp_path, capsys):
        out = tmp_path / "b.csv"
        code = main(
            [
                "anonymize", "-i", str(fleet_csv), "-o", str(out),
                "--method", "gl", "--signature-size", "3", "--seed", "4",
                "--engine", "batch", "--workers", "2", "--executor", "thread",
            ]
        )
        assert code == 0
        assert "engine batch" in capsys.readouterr().out

    def test_unknown_method_fails_cleanly(self, fleet_csv, tmp_path, capsys):
        code = main(
            [
                "anonymize", "-i", str(fleet_csv),
                "-o", str(tmp_path / "x.csv"), "--method", "nope",
            ]
        )
        assert code == 2
        assert "registered methods" in capsys.readouterr().err

    def test_bad_param_fails_cleanly(self, fleet_csv, tmp_path, capsys):
        code = main(
            [
                "anonymize", "-i", str(fleet_csv),
                "-o", str(tmp_path / "x.csv"),
                "--method", "sc", "--param", "bogus=1",
            ]
        )
        assert code == 2
        assert "accepted" in capsys.readouterr().err

    def test_non_plain_param_value_fails_cleanly(self, fleet_csv, tmp_path, capsys):
        """A JSON-object --param value is rejected with exit 2, not a
        traceback (MethodSpec only accepts plain scalar/sequence data)."""
        code = main(
            [
                "anonymize", "-i", str(fleet_csv),
                "-o", str(tmp_path / "x.csv"),
                "--method", "sc", "--param", 'signature_size={"a": 1}',
            ]
        )
        assert code == 2
        assert "plain data" in capsys.readouterr().err

    def test_batch_engine_rejected_for_baseline(self, fleet_csv, tmp_path, capsys):
        code = main(
            [
                "anonymize", "-i", str(fleet_csv),
                "-o", str(tmp_path / "x.csv"),
                "--method", "sc", "--engine", "batch",
            ]
        )
        assert code == 2
        assert "frequency-family" in capsys.readouterr().err


class TestAttackAndEvaluate:
    def test_attack_self(self, fleet_csv, capsys):
        code = main(
            ["attack", "-i", str(fleet_csv), "-a", str(fleet_csv), "--kind", "spatial"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "LA_spatial" in out
        # Self-attack must link perfectly.
        assert "1.000" in out

    def test_attack_all_kinds(self, fleet_csv, capsys):
        code = main(["attack", "-i", str(fleet_csv), "-a", str(fleet_csv)])
        assert code == 0
        out = capsys.readouterr().out
        for kind in ("spatial", "temporal", "spatiotemporal", "sequential"):
            assert f"LA_{kind}" in out

    def test_evaluate_identity(self, fleet_csv, capsys):
        code = main(["evaluate", "-i", str(fleet_csv), "-a", str(fleet_csv)])
        assert code == 0
        out = capsys.readouterr().out
        assert "INF  0.000" in out
        assert "FFP  1.000" in out

    def test_round_trip_anonymize_then_attack(self, fleet_csv, tmp_path, capsys):
        out = tmp_path / "private.csv"
        main(
            [
                "anonymize", "-i", str(fleet_csv), "-o", str(out),
                "--model", "gl", "--signature-size", "3", "--seed", "4",
            ]
        )
        capsys.readouterr()
        code = main(
            ["attack", "-i", str(fleet_csv), "-a", str(out), "--kind", "spatial"]
        )
        assert code == 0
        assert "LA_spatial" in capsys.readouterr().out


class TestExperimentCommand:
    def test_fig5_smoke(self, capsys):
        code = main(["experiment", "fig5", "--preset", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Linear" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table9"])
