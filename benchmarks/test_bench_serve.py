"""Benchmark for the serving daemon: HTTP request latency.

What's measured is the *service* overhead — HTTP round-trips, job
queueing, budget admission, result spooling and streaming — on top of
a deliberately small anonymization job, so the tracked key
(``serve.request_p50_s``) moves when the daemon's plumbing regresses
rather than when the engine does (the engine has its own bench
partition). One warm-up request absorbs first-use costs (engine
build, account file creation) before the timed sequence.

The timed unit is one complete tenant interaction: submit the job,
poll it to completion, stream the result CSV. ``request_p50_s`` is
the median over the sequence — the steady-state latency a tenant
sees, robust to the odd scheduler hiccup on shared CI runners.

The measurement lands in a session-scoped
``BenchRecord(bench="serve")`` (see ``conftest``), its own partition
of ``BENCH_history.jsonl``.
"""

import json
import statistics
import time
import urllib.request

import pytest

from repro.datagen.generator import FleetConfig, generate_fleet
from repro.serve import Daemon, ServeConfig
from repro.trajectory.io import write_csv

#: Requests in the timed sequence (odd: the median is one sample).
REQUESTS = 9
SPEC = {"kind": "gl", "params": {"epsilon": 0.5, "seed": 11}}


@pytest.fixture(scope="module")
def serve_dataset(tmp_path_factory):
    fleet = generate_fleet(
        FleetConfig(
            n_objects=10, points_per_trajectory=40, rows=8, cols=8, seed=3
        )
    )
    path = tmp_path_factory.mktemp("serve-bench") / "fleet.csv"
    write_csv(fleet.dataset, path)
    return path


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-bench-daemon")
    config = ServeConfig(
        port=0,
        budget_root=root / "budgets",
        spool=root / "spool",
        # Budget for the warm-up plus every timed request, with slack.
        tenants=(("bench", (REQUESTS + 2) * 0.5),),
        engine_workers=1,
        engine_executor="thread",
        job_workers=1,
    )
    with Daemon(config) as daemon:
        yield daemon


def _one_request(base: str, dataset: str) -> None:
    """Submit, poll to done, stream the result — one tenant round trip."""
    request = urllib.request.Request(
        base + "/v1/jobs",
        data=json.dumps(
            {"tenant": "bench", "dataset": dataset, "spec": SPEC}
        ).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        job = json.loads(response.read())
    assert response.status == 202
    while True:
        with urllib.request.urlopen(
            f"{base}/v1/jobs/{job['id']}", timeout=60
        ) as response:
            state = json.loads(response.read())
        if state["state"] in ("done", "failed"):
            break
        time.sleep(0.005)
    assert state["state"] == "done", state.get("error")
    with urllib.request.urlopen(
        f"{base}/v1/jobs/{job['id']}/result", timeout=60
    ) as response:
        body = response.read()
    assert body.startswith(b"object_id,t,x,y")


def test_request_latency_p50(daemon, serve_dataset, serve_bench_records):
    host, port = daemon.address
    base = f"http://{host}:{port}"
    dataset = str(serve_dataset)
    _one_request(base, dataset)  # warm-up: engine build, account load
    samples = []
    for _ in range(REQUESTS):
        started = time.perf_counter()
        _one_request(base, dataset)
        samples.append(time.perf_counter() - started)
    p50 = statistics.median(samples)
    serve_bench_records.setdefault("serve", {})["request_p50_s"] = p50
    assert p50 > 0.0
