"""The paper's primary contribution: frequency-based DP randomization.

* :mod:`repro.core.laplace` — zero- and non-zero-mean Laplace mechanism
  with budget accounting (Definitions 1-3, Theorems 1-2);
* :mod:`repro.core.signature` — PF/TF signature extraction (Section III-B1);
* :mod:`repro.core.global_mechanism` — Algorithm 1;
* :mod:`repro.core.local_mechanism` — Algorithm 2;
* :mod:`repro.core.edits` / :mod:`repro.core.modification` — trajectory
  edit operations with utility-loss costs and the intra-/inter-trajectory
  modification optimisers (Section IV);
* :mod:`repro.core.pipeline` — the published anonymizers PureG, PureL, GL.
"""

from repro.core.laplace import LaplaceMechanism, PrivacyAccountant, laplace_noise
from repro.core.signature import SignatureExtractor, SignatureIndex
from repro.core.global_mechanism import GlobalTFMechanism
from repro.core.local_mechanism import LocalPFMechanism
from repro.core.pipeline import GL, FrequencyAnonymizer, PureG, PureL

__all__ = [
    "FrequencyAnonymizer",
    "GL",
    "GlobalTFMechanism",
    "LaplaceMechanism",
    "LocalPFMechanism",
    "PrivacyAccountant",
    "PureG",
    "PureL",
    "SignatureExtractor",
    "SignatureIndex",
    "laplace_noise",
]
