"""End-to-end integration tests: the paper's headline orderings.

These run the actual experiment pipeline (generation → anonymization →
attacks → metrics) at smoke scale and assert the *relative* results the
paper's story depends on. They are the regression net for the whole
system: if a mechanism, an attack, or a metric drifts, one of these
orderings breaks.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.table2 import run as run_table2


@pytest.fixture(scope="module")
def results():
    """One shared Table II run over the methods the assertions need."""
    config = ExperimentConfig.smoke()
    return run_table2(
        config,
        methods=[
            "SC", "RSC-0.1", "RSC-5", "W4M", "GLOVE", "DPT",
            "PureG", "PureL", "GL",
        ],
    )


class TestPrivacyOrderings:
    def test_gl_strongest_of_ours_on_spatial_linkage(self, results):
        """Paper: LA_s(GL) < LA_s(PureL) < LA_s(PureG)."""
        assert results["GL"]["LAs"] <= results["PureL"]["LAs"]
        assert results["PureL"]["LAs"] <= results["PureG"]["LAs"]

    def test_pureg_barely_protects(self, results):
        assert results["PureG"]["LAs"] >= 0.7

    def test_generative_model_best_privacy(self, results):
        assert results["DPT"]["LAs"] <= results["SC"]["LAs"]
        assert results["DPT"]["LAs"] <= results["GL"]["LAs"]

    def test_rsc_radius_strengthens_privacy(self, results):
        assert results["RSC-5"]["LAs"] <= results["RSC-0.1"]["LAs"]

    def test_glove_strong_linkage_protection(self, results):
        assert results["GLOVE"]["LAs"] <= results["SC"]["LAs"]


class TestUtilityOrderings:
    def test_dpt_worst_information_loss(self, results):
        for method in ("SC", "W4M", "PureG", "PureL", "GL"):
            assert results["DPT"]["INF"] >= results[method]["INF"]

    def test_our_models_preserve_patterns(self, results):
        for model in ("PureG", "PureL", "GL"):
            assert results[model]["FFP"] >= 0.6

    def test_our_models_preserve_diameters(self, results):
        """Paper: DE < 1.5 % for the frequency-based models."""
        for model in ("PureG", "PureL", "GL"):
            assert results[model]["DE"] <= 0.1

    def test_rsc_radius_costs_utility(self, results):
        assert results["RSC-5"]["INF"] >= results["RSC-0.1"]["INF"]
        assert results["RSC-5"]["FFP"] <= results["RSC-0.1"]["FFP"]

    def test_generative_pattern_loss(self, results):
        assert results["DPT"]["FFP"] <= results["GL"]["FFP"]


class TestRecoveryOrderings:
    def test_sc_remains_recoverable(self, results):
        """The paper's motivation: deleting signatures does not stop
        map-matching recovery."""
        assert results["SC"]["F-score"] >= 0.5

    def test_rsc_radius_blocks_recovery(self, results):
        assert results["RSC-5"]["Recall"] <= results["RSC-0.1"]["Recall"]

    def test_generalization_blocks_recovery(self, results):
        assert results["GLOVE"]["F-score"] <= results["SC"]["F-score"]

    def test_synthetic_methods_skip_recovery(self, results):
        assert results["DPT"]["Precision"] is None
        assert results["DPT"]["LAt"] is None


class TestBudgetMonotonicity:
    """Privacy degrades / utility improves as ε grows (Figure 4)."""

    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.experiments.fig4 import run as run_fig4

        config = ExperimentConfig.smoke()
        return run_fig4(config, epsilons=(0.2, 5.0))

    def test_pureg_utility_improves_with_epsilon(self, sweep):
        low, high = sweep["TE"]["PureG"]
        assert high <= low + 0.05

    def test_pureg_linkage_grows_with_epsilon(self, sweep):
        low, high = sweep["LAs"]["PureG"]
        assert high >= low - 0.05

    def test_gl_rmf_falls_with_epsilon(self, sweep):
        low, high = sweep["RMF"]["GL"]
        assert high <= low + 0.05
