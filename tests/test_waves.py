"""Wave-parallel global stage: planner/executor correctness.

The load-bearing property: for any dataset, TF perturbation, and index
backend, ``candidate_source="wave"`` must produce output **byte
identical** to the serial per-location reference
(``candidate_source="incremental"``) — point sequences, timestamps, and
report tallies. Hypothesis drives datasets onto a small integer lattice
so exact distance ties (the classic wave-reordering hazard) are common.
"""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.edits import EditableTrajectory
from repro.core.global_mechanism import TFPerturbation
from repro.core.modification import (
    InterTrajectoryModifier,
    index_extent,
    make_index_factory,
)
from repro.core.waves import WavePlanner, WaveStats, _CreatedGeometry
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset

BACKENDS = ("linear", "uniform", "hierarchical", "rtree")


def lattice_fleet(rng: random.Random, n_objects: int, n_points: int):
    """Trajectories on an integer lattice: distance ties abound."""
    trajectories = []
    for i in range(n_objects):
        points = [
            Point(float(rng.randrange(8)), float(rng.randrange(8)), float(t))
            for t in range(rng.randint(2, n_points))
        ]
        trajectories.append(Trajectory(f"t{i}", points))
    return TrajectoryDataset(trajectories)


def random_perturbation(rng: random.Random, dataset) -> TFPerturbation:
    """A TF perturbation over the dataset's own locations."""
    tf = dataset.trajectory_frequencies()
    original = {}
    perturbed = {}
    for loc in sorted(tf):
        if rng.random() < 0.6:
            original[loc] = tf[loc]
            perturbed[loc] = max(0, tf[loc] + rng.randint(-3, 3))
    if not original:
        loc = sorted(tf)[0]
        original[loc] = tf[loc]
        perturbed[loc] = tf[loc] + 1
    elif all(perturbed[loc] == original[loc] for loc in original):
        # All drawn deltas cancelled to zero (hypothesis found this:
        # seed 944); force one real change so the planner has work and
        # the stats assertions below stay meaningful.
        loc = sorted(original)[0]
        perturbed[loc] = original[loc] + 1
    return TFPerturbation(original=original, perturbed=perturbed, epsilon=1.0)


def snapshot(dataset) -> list:
    return [
        (t.object_id, [(p.x, p.y, p.t) for p in t]) for t in dataset
    ]


def apply_source(dataset, perturbation, backend, source, **kwargs):
    modifier = InterTrajectoryModifier(
        make_index_factory(backend, levels=5, granularity=16),
        candidate_source=source,
    )
    copy = TrajectoryDataset([t.copy() for t in dataset])
    out, report = modifier.apply(copy, perturbation, **kwargs)
    return modifier, out, report


def report_key(report):
    return (
        report.utility_loss,
        report.insertions,
        report.deletions,
        report.unrealised,
    )


class TestWaveByteIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_identical_to_serial_reference(self, backend, seed):
        rng = random.Random(seed)
        dataset = lattice_fleet(rng, rng.randint(2, 8), 8)
        perturbation = random_perturbation(rng, dataset)
        _, serial_out, serial_report = apply_source(
            dataset, perturbation, backend, "incremental"
        )
        modifier, wave_out, wave_report = apply_source(
            dataset, perturbation, backend, "wave"
        )
        assert snapshot(wave_out) == snapshot(serial_out)
        assert report_key(wave_report) == report_key(serial_report)
        stats = modifier.last_wave_stats
        assert stats is not None and stats.operations > 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_threaded_wave_map_identical(self, seed):
        """Fanning the read-only simulations over threads must not
        change a byte (the global_workers contract)."""
        from concurrent.futures import ThreadPoolExecutor

        rng = random.Random(seed)
        dataset = lattice_fleet(rng, rng.randint(3, 8), 8)
        perturbation = random_perturbation(rng, dataset)
        _, serial_out, serial_report = apply_source(
            dataset, perturbation, "hierarchical", "incremental"
        )
        with ThreadPoolExecutor(max_workers=4) as pool:
            _, wave_out, wave_report = apply_source(
                dataset,
                perturbation,
                "hierarchical",
                "wave",
                wave_map=lambda fn, jobs: list(pool.map(fn, jobs)),
            )
        assert snapshot(wave_out) == snapshot(serial_out)
        assert report_key(wave_report) == report_key(serial_report)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fleet_scale_identity(self, backend):
        """One generator-produced fleet per backend, beyond the tiny
        lattice examples."""
        from repro.core.signature import SignatureExtractor
        from repro.datagen.generator import FleetConfig, generate_fleet
        from repro.core.global_mechanism import GlobalTFMechanism

        fleet = generate_fleet(
            FleetConfig(
                n_objects=20, points_per_trajectory=60, rows=12, cols=12,
                n_hotspots=8, seed=5,
            )
        )
        index = SignatureExtractor(m=4).extract(fleet.dataset)
        perturbation = GlobalTFMechanism(0.5).perturb(
            index.tf, len(fleet.dataset), random.Random(2)
        )
        _, serial_out, serial_report = apply_source(
            fleet.dataset, perturbation, backend, "incremental"
        )
        _, wave_out, wave_report = apply_source(
            fleet.dataset, perturbation, backend, "wave"
        )
        assert snapshot(wave_out) == snapshot(serial_out)
        assert report_key(wave_report) == report_key(serial_report)


class TestWaveMachinery:
    def test_empty_dataset(self):
        modifier = InterTrajectoryModifier(candidate_source="wave")
        perturbation = TFPerturbation(
            original={(0.0, 0.0): 1}, perturbed={(0.0, 0.0): 2}, epsilon=1.0
        )
        out, report = modifier.apply(TrajectoryDataset([]), perturbation)
        assert len(out) == 0
        assert report.insertions == 0

    def test_rejects_unknown_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            WavePlanner(None, {}, chunk_size=0)

    def test_rejects_unknown_kind(self):
        planner = WavePlanner(None, {})
        with pytest.raises(ValueError, match="kind"):
            planner.plan_wave("sideways", [])

    def test_chunk_size_one_still_identical(self):
        rng = random.Random(9)
        dataset = lattice_fleet(rng, 6, 8)
        perturbation = random_perturbation(rng, dataset)
        _, serial_out, _ = apply_source(
            dataset, perturbation, "hierarchical", "incremental"
        )
        # Drive the planner/executor manually with chunk_size=1.
        from repro.core import waves

        factory = make_index_factory("hierarchical", levels=5)
        copy = TrajectoryDataset([t.copy() for t in dataset])
        shared = factory(index_extent(copy.bbox()))
        editables = {
            t.object_id: EditableTrajectory(t, shared) for t in copy
        }
        from repro.core.modification import ModificationReport

        planner = waves.WavePlanner(shared, editables, chunk_size=1)
        executor = waves.WaveExecutor(shared, editables)
        report = ModificationReport()
        for kind, pending in perturbation.schedule():
            while pending:
                wave, pending = planner.plan_wave(kind, pending)
                executor.apply_wave(kind, wave, report)
        out = TrajectoryDataset(
            editables[t.object_id].to_trajectory() for t in copy
        )
        assert snapshot(out) == snapshot(serial_out)

    def test_stats_shape(self):
        stats = WaveStats()
        assert stats.mean_wave_size == 1.0
        stats.waves = 4
        stats.operations = 12
        assert stats.mean_wave_size == pytest.approx(3.0)

    def test_created_geometry_prefilter_and_exact(self):
        geometry = _CreatedGeometry()
        assert not geometry.intrudes((0.0, 0.0), 10.0)
        geometry.extend([((5.0, 0.0), (5.0, 10.0))])
        assert geometry.intrudes((4.0, 5.0), 1.0)  # distance exactly 1
        assert geometry.intrudes((0.0, 0.0), 5.0)  # boundary inclusive
        assert not geometry.intrudes((0.0, 0.0), 4.9)
        assert not geometry.intrudes((0.0, 0.0), -math.inf)
        assert geometry.intrudes((100.0, 100.0), math.inf)

    def test_adjacent_locations(self):
        index = make_index_factory("linear")(None)
        trajectory = Trajectory(
            "a",
            [
                Point(0.0, 0.0, 0.0),
                Point(1.0, 0.0, 1.0),
                Point(1.0, 0.0, 2.0),
                Point(2.0, 0.0, 3.0),
                Point(3.0, 0.0, 4.0),
                Point(1.0, 0.0, 5.0),
            ],
        )
        editable = EditableTrajectory(trajectory, index)
        # Runs of (1, 0): positions 1-2 (flanked by (0,0) and (2,0))
        # and position 5 (flanked by (3,0), tail side open).
        assert editable.adjacent_locations((1.0, 0.0)) == {
            (0.0, 0.0),
            (2.0, 0.0),
            (3.0, 0.0),
        }
        assert editable.adjacent_locations((9.0, 9.0)) == set()
