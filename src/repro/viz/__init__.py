"""Dependency-free SVG rendering of networks, trajectories, datasets."""

from repro.viz.svg import SvgCanvas, render_comparison, render_fleet

__all__ = ["SvgCanvas", "render_comparison", "render_fleet"]
