"""Project-specific static analysis: privacy, determinism, concurrency.

The repo's three load-bearing runtime invariants — every noise draw is
recorded in the composition ledger, every stage is byte-deterministic
under a seed, shared engine state is only mutated under locks — are
enforced here *statically*, as lint rules with stable codes, so
violations fail CI before any hypothesis test has to catch them:

======== =====================================================
DP001    noise drawn outside sanctioned mechanism modules by a
         scope that never records to the composition ledger
DET001   global-state RNG call (``random.*`` / legacy
         ``np.random.*``) instead of a threaded seeded generator
DET002   wall-clock reads and direct set iteration on committed
         output paths
RACE001  unlocked ``self.*``/global writes reachable from
         thread-pool entry points (call-graph approximation)
EPS001   epsilon compared with ``== 0``/truthiness instead of
         ``is None``
======== =====================================================

Run via ``repro check`` (or ``tools/check_static.py`` in CI).
Suppress a finding inline with ``# repro: noqa[CODE]``; grandfather it
with a justified entry in ``tools/analysis_baseline.json``. The rule
catalogue with examples lives in ``docs/analysis.md``.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, all_rules, rule, rules_for
from repro.analysis.runner import (
    AnalysisError,
    AnalysisReport,
    analyze_paths,
    analyze_project,
    analyze_source,
    load_project,
)

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "load_project",
    "rule",
    "rules_for",
]
