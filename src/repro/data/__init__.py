"""Real-dataset workloads: streaming ingestion, preprocessing, registry.

The synthetic generator (:mod:`repro.datagen`) covers the paper's
controlled experiments; this package covers the *real-data* path the
roadmap's millions-of-users workload needs:

* :mod:`repro.data.stream` — lazy, memory-bounded readers for raw
  T-Drive files (``taxi_id,datetime,longitude,latitude``) and planar
  ``object_id,t,x,y`` CSVs, plus projection and chunking helpers;
* :mod:`repro.data.preprocess` — the raw-to-clean pipeline (timestamp
  sorting/dedup, gap-splitting into trips, bbox and min-length
  filtering, optional resampling), streaming end to end;
* :mod:`repro.data.registry` — named dataset sources with cached,
  versioned preprocessed artifacts on disk.

Formats, artifact schema, and every preprocessing knob are documented
in ``docs/data.md``.
"""

from repro.data.preprocess import IngestStats, PreprocessConfig, preprocess_stream
from repro.data.registry import (
    DatasetRegistry,
    IngestResult,
    is_artifact,
    load_dataset,
    stream_dataset,
)
from repro.data.stream import (
    RawRecord,
    chunked,
    stream_tdrive_records,
    stream_trajectories,
)

__all__ = [
    "DatasetRegistry",
    "IngestResult",
    "IngestStats",
    "PreprocessConfig",
    "RawRecord",
    "chunked",
    "is_artifact",
    "load_dataset",
    "preprocess_stream",
    "stream_dataset",
    "stream_tdrive_records",
    "stream_trajectories",
]
