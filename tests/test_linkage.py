"""Tests for the re-identification (linkage) attack."""

import pytest

from repro.attacks.linkage import (
    LinkageAttack,
    SIGNATURE_KINDS,
    cosine_similarity,
)
from repro.datagen.generator import FleetConfig, generate_fleet
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(
        FleetConfig(n_objects=20, points_per_trajectory=100, rows=12, cols=12, seed=31)
    )


class TestCosineSimilarity:
    def test_identical(self):
        v = {"a": 2.0, "b": 1.0}
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0

    def test_scale_invariant(self):
        a = {"x": 1.0, "y": 2.0}
        b = {"x": 10.0, "y": 20.0}
        assert cosine_similarity(a, b) == pytest.approx(1.0)


class TestConfiguration:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LinkageAttack(cell_size=0)
        with pytest.raises(ValueError):
            LinkageAttack(top_k=0)

    def test_rejects_unknown_kind(self, fleet):
        attack = LinkageAttack()
        with pytest.raises(ValueError):
            attack.link(fleet.dataset, fleet.dataset, kind="biometric")

    def test_rejects_mismatched_sizes(self, fleet):
        attack = LinkageAttack()
        smaller = TrajectoryDataset([fleet.dataset[0].copy()])
        with pytest.raises(ValueError):
            attack.link(fleet.dataset, smaller)


class TestSelfLinking:
    """Linking a dataset against itself must be (nearly) perfect —
    the paper's premise that signatures identify individuals."""

    @pytest.mark.parametrize("kind", SIGNATURE_KINDS)
    def test_self_link_high_accuracy(self, fleet, kind):
        attack = LinkageAttack(cell_size=250.0, top_k=10)
        result = attack.link(fleet.dataset, fleet.dataset, kind=kind)
        assert result.total == len(fleet.dataset)
        if kind == "temporal":
            # Temporal profiles are weak identifiers on taxi-like data.
            assert result.accuracy >= 0.2
        else:
            assert result.accuracy >= 0.9

    def test_assignment_structure(self, fleet):
        attack = LinkageAttack()
        result = attack.link(fleet.dataset, fleet.dataset, kind="spatial")
        assert set(result.assignment) == {
            t.object_id for t in fleet.dataset
        }


class TestLinkingUnderAnonymization:
    def test_shuffled_points_still_link_spatially(self, fleet):
        """Spatial signature ignores order: permuting points changes nothing."""
        shuffled = TrajectoryDataset(
            Trajectory(t.object_id, list(reversed(t.points)))
            for t in fleet.dataset
        )
        attack = LinkageAttack()
        assert attack.linking_accuracy(fleet.dataset, shuffled, "spatial") >= 0.9

    def test_constant_translation_defeats_spatial_linkage(self, fleet):
        moved = TrajectoryDataset(
            Trajectory(
                t.object_id,
                [Point(p.x + 50_000.0, p.y + 50_000.0, p.t) for p in t],
            )
            for t in fleet.dataset
        )
        attack = LinkageAttack()
        accuracy = attack.linking_accuracy(fleet.dataset, moved, "spatial")
        assert accuracy <= 0.3

    def test_signature_removal_lowers_accuracy(self, fleet):
        """Dropping signature points must reduce spatial linkability."""
        from repro.baselines.signature_closure import SignatureClosure

        anonymized = SignatureClosure(signature_size=5).anonymize(fleet.dataset)
        attack = LinkageAttack()
        before = attack.linking_accuracy(fleet.dataset, fleet.dataset, "spatial")
        after = attack.linking_accuracy(fleet.dataset, anonymized, "spatial")
        assert after < before

    def test_gl_lowers_accuracy_more_than_pureg(self, fleet):
        """Paper's headline: GL protects better than PureG on LA_s."""
        from repro.core.pipeline import GL, PureG

        attack = LinkageAttack()
        pureg = PureG(epsilon=0.5, signature_size=5, seed=1).anonymize(fleet.dataset)
        gl = GL(epsilon=1.0, signature_size=5, seed=1).anonymize(fleet.dataset)
        la_pureg = attack.linking_accuracy(fleet.dataset, pureg, "spatial")
        la_gl = attack.linking_accuracy(fleet.dataset, gl, "spatial")
        assert la_gl <= la_pureg


class TestProfiles:
    def test_spatial_profile_top_k(self, fleet):
        attack = LinkageAttack(top_k=5)
        profile = attack.spatial_profile(fleet.dataset[0])
        assert len(profile) <= 5

    def test_temporal_profile_hours(self, fleet):
        attack = LinkageAttack()
        profile = attack.temporal_profile(fleet.dataset[0])
        assert all(0 <= hour < 24 for hour in profile)

    def test_sequential_profile_bigrams(self, fleet):
        attack = LinkageAttack()
        profile = attack.sequential_profile(fleet.dataset[0])
        for key in profile:
            assert len(key) == 2  # (cell, cell) bigram

    def test_empty_trajectory_profiles(self):
        attack = LinkageAttack()
        empty = Trajectory("x")
        assert attack.spatial_profile(empty) == {}
        assert attack.temporal_profile(empty) == {}
        assert attack.spatiotemporal_profile(empty) == {}
        assert attack.sequential_profile(empty) == {}
