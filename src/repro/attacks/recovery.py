"""The recovery attack: reconstructing original paths from anonymized data.

Section V-B3 of the paper: an attacker applies HMM map matching to the
*published* (anonymized) trajectories, hoping to recover the road paths
the original trajectories followed. The attack succeeds to the extent
the recovered routes coincide with the ground-truth routes.

:class:`RecoveryAttack` runs the matcher over a dataset and returns the
recovered edge sequences; scoring against ground truth lives in
:mod:`repro.metrics.recovery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.hmm import HmmMapMatcher, MatchResult
from repro.datagen.road_network import RoadNetwork
from repro.trajectory.model import TrajectoryDataset


@dataclass(slots=True)
class RecoveryOutput:
    """Recovered routes for a dataset (positional, like the attack input)."""

    results: list[MatchResult] = field(default_factory=list)

    def edge_sequences(self) -> list[list[tuple[int, int]]]:
        return [result.edge_keys for result in self.results]


class RecoveryAttack:
    """Map-matching-based trajectory recovery."""

    def __init__(
        self,
        network: RoadNetwork,
        sigma: float = 50.0,
        beta: float = 200.0,
        candidate_radius: float = 250.0,
        max_candidates: int = 5,
        max_points_per_trajectory: int | None = None,
    ) -> None:
        self.matcher = HmmMapMatcher(
            network,
            sigma=sigma,
            beta=beta,
            candidate_radius=candidate_radius,
            max_candidates=max_candidates,
        )
        self.max_points_per_trajectory = max_points_per_trajectory

    def run(self, dataset: TrajectoryDataset) -> RecoveryOutput:
        """Match every trajectory of ``dataset`` against the network.

        ``max_points_per_trajectory`` (when set) truncates long
        trajectories before matching, a standard efficiency measure that
        leaves the *rate* metrics unbiased.
        """
        output = RecoveryOutput()
        for trajectory in dataset:
            probe = trajectory
            if (
                self.max_points_per_trajectory is not None
                and len(trajectory) > self.max_points_per_trajectory
            ):
                probe = type(trajectory)(
                    trajectory.object_id,
                    trajectory.points[: self.max_points_per_trajectory],
                )
            output.results.append(self.matcher.match(probe))
        return output
