"""Tests for the numpy-vectorised geometry kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.geometry import point_segment_distance
from repro.geo.vectorized import SegmentArray

finite = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False)
coord = st.tuples(finite, finite)


class TestConstruction:
    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            SegmentArray(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_rejects_wrong_dims(self):
        with pytest.raises(ValueError):
            SegmentArray(np.zeros((3, 3)), np.zeros((3, 3)))

    def test_from_pairs(self):
        array = SegmentArray.from_pairs([((0, 0), (1, 1)), ((2, 2), (3, 3))])
        assert len(array) == 2

    def test_from_pairs_empty(self):
        assert len(SegmentArray.from_pairs([])) == 0

    def test_from_polyline(self):
        array = SegmentArray.from_polyline([(0, 0), (1, 0), (2, 0)])
        assert len(array) == 2

    def test_from_polyline_too_short(self):
        assert len(SegmentArray.from_polyline([(0, 0)])) == 0


class TestDistances:
    def test_known_values(self):
        array = SegmentArray.from_pairs(
            [((0, 0), (10, 0)), ((0, 5), (10, 5)), ((20, 20), (30, 30))]
        )
        distances = array.distances_to((5.0, 3.0))
        assert distances[0] == pytest.approx(3.0)
        assert distances[1] == pytest.approx(2.0)

    def test_degenerate_segment(self):
        array = SegmentArray.from_pairs([((5, 5), (5, 5))])
        assert array.distances_to((8.0, 9.0))[0] == pytest.approx(5.0)

    def test_min_distance_empty_is_inf(self):
        assert SegmentArray.from_pairs([]).min_distance_to((0, 0)) == float("inf")

    @settings(max_examples=60, deadline=None)
    @given(
        pairs=st.lists(st.tuples(coord, coord), min_size=1, max_size=20),
        q=coord,
    )
    def test_matches_scalar_implementation(self, pairs, q):
        array = SegmentArray.from_pairs(pairs)
        vectorised = array.distances_to(q)
        for i, (a, b) in enumerate(pairs):
            scalar = point_segment_distance(q, a, b)
            assert vectorised[i] == pytest.approx(scalar, abs=1e-6)


class TestKnn:
    def test_orders_by_distance(self):
        array = SegmentArray.from_pairs(
            [((100, 0), (200, 0)), ((0, 1), (10, 1)), ((0, 50), (10, 50))]
        )
        result = array.knn((0.0, 0.0), 2)
        assert [i for i, _ in result] == [1, 2]

    def test_k_exceeds_population(self):
        array = SegmentArray.from_pairs([((0, 0), (1, 1))])
        assert len(array.knn((0, 0), 10)) == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SegmentArray.from_pairs([((0, 0), (1, 1))]).knn((0, 0), 0)

    def test_empty(self):
        assert SegmentArray.from_pairs([]).knn((0, 0), 3) == []

    @settings(max_examples=40, deadline=None)
    @given(
        pairs=st.lists(st.tuples(coord, coord), min_size=1, max_size=25),
        q=coord,
        k=st.integers(1, 6),
    )
    def test_knn_matches_sorted_distances(self, pairs, q, k):
        array = SegmentArray.from_pairs(pairs)
        result = array.knn(q, k)
        all_distances = sorted(array.distances_to(q))
        assert [round(d, 6) for _, d in result] == [
            round(d, 6) for d in all_distances[: len(result)]
        ]
