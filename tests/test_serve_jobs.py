"""Tests for the daemon's background half: EngineCache + JobRunner."""

import threading
import time

import pytest

from repro.api.spec import MethodSpec
from repro.datagen.generator import FleetConfig, generate_fleet
from repro.engine.batch import BatchAnonymizer
from repro.serve.budget import (
    BudgetExceededError,
    BudgetStore,
    UnknownTenantError,
)
from repro.serve.engines import EngineCache
from repro.serve.jobs import JobRunner, epsilon_of
from repro.trajectory.io import write_csv


@pytest.fixture(scope="module")
def dataset_csv(tmp_path_factory):
    fleet = generate_fleet(
        FleetConfig(
            n_objects=8, points_per_trajectory=30, rows=8, cols=8, seed=3
        )
    )
    path = tmp_path_factory.mktemp("data") / "fleet.csv"
    write_csv(fleet.dataset, path)
    return path


@pytest.fixture
def store(tmp_path):
    store = BudgetStore(tmp_path / "budgets")
    store.declare("acme", 8.0)
    return store


@pytest.fixture
def engines():
    cache = EngineCache(workers=1, executor="thread")
    yield cache
    cache.close()


@pytest.fixture
def runner(store, engines, tmp_path):
    runner = JobRunner(store, engines, tmp_path / "spool", workers=1)
    yield runner
    runner.close()


GL_SPEC = {"kind": "gl", "params": {"epsilon": 1.0, "seed": 7}}


def wait_done(runner, job, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = job.to_dict()["state"]
        if state in ("done", "failed"):
            return state
        time.sleep(0.02)
    raise AssertionError(f"job {job.id} still {job.to_dict()['state']}")


class TestRace001Visibility:
    def test_runner_worker_is_a_discovered_pool_entry_point(self):
        """`repro check` must police the daemon's worker callable: the
        `parallel_map_stream(self._execute, ...)` submission in
        `JobRunner._run_pump` has to register `_execute` as a RACE001
        entry point, so any future unlocked shared write inside the
        job-execution path is flagged rather than silently racy."""
        from pathlib import Path

        import repro.serve.jobs as jobs_module
        from repro.analysis.callgraph import (
            UnlockedSharedWrite,
            _FunctionTable,
        )
        from repro.analysis.runner import load_project

        project = load_project([Path(jobs_module.__file__)])
        rule = UnlockedSharedWrite()
        entries = rule._entry_points(project, _FunctionTable(project))
        assert "repro.serve.jobs.JobRunner._execute" in {
            key.label() for key in entries
        }


class TestEngineCache:
    def test_same_spec_reuses_the_warm_engine(self, engines):
        spec = MethodSpec("gl", {"epsilon": 1.0, "seed": 7})
        first = engines.get(spec)
        assert isinstance(first, BatchAnonymizer)
        assert engines.get(MethodSpec("gl", {"epsilon": 1.0, "seed": 7})) is (
            first
        )
        assert len(engines) == 1
        assert engines.get(MethodSpec("gl", {"epsilon": 2.0})) is not first
        assert len(engines) == 2

    def test_close_is_idempotent_and_terminal(self, engines):
        engines.get(MethodSpec("gl", {"epsilon": 1.0}))
        engines.close()
        engines.close()
        assert len(engines) == 0
        with pytest.raises(RuntimeError, match="closed"):
            engines.get(MethodSpec("gl", {"epsilon": 1.0}))


class TestEpsilonOf:
    def test_frequency_method_exposes_epsilon(self):
        spec = MethodSpec("gl", {"epsilon": 1.25})
        assert epsilon_of(spec, spec.build()) == pytest.approx(1.25)

    def test_method_without_epsilon_costs_nothing(self):
        class Free:
            """A non-DP baseline: no epsilon attribute, none in params."""

        assert epsilon_of(MethodSpec("gl"), Free()) == 0.0


class TestJobRunner:
    def test_job_runs_to_done_and_charges_the_ledger(
        self, runner, store, dataset_csv
    ):
        job = runner.submit("acme", GL_SPEC, str(dataset_csv))
        assert job.to_dict()["eps_total"] == pytest.approx(1.0)
        assert wait_done(runner, job) == "done"
        snapshot = job.to_dict()
        assert snapshot["eps_charged"] == pytest.approx(1.0)
        assert snapshot["trajectories"] == 8
        assert job.result_path.is_file()
        assert job.result_path.read_text().startswith("object_id,t,x,y")
        account = store.account("acme")
        assert account.committed == {job.id: pytest.approx(1.0)}
        assert account.pending == {}

    def test_unknown_tenant_refused_before_queuing(self, runner, dataset_csv):
        with pytest.raises(UnknownTenantError):
            runner.submit("ghost", GL_SPEC, str(dataset_csv))
        assert runner.jobs() == []

    def test_over_budget_refused_before_queuing(
        self, runner, store, dataset_csv
    ):
        store.declare("tiny", 0.1)
        with pytest.raises(BudgetExceededError):
            runner.submit("tiny", GL_SPEC, str(dataset_csv))
        assert runner.jobs() == []
        assert store.account("tiny").reserved == 0

    def test_bad_spec_refused_before_reserving(
        self, runner, store, dataset_csv
    ):
        with pytest.raises((ValueError, KeyError, TypeError)):
            runner.submit(
                "acme", {"kind": "gl", "params": {"epsilon": -1}},
                str(dataset_csv),
            )
        assert store.account("acme").reserved == 0

    def test_missing_dataset_refused_before_reserving(self, runner, store):
        with pytest.raises(FileNotFoundError):
            runner.submit("acme", GL_SPEC, "/nowhere/fleet.csv")
        assert store.account("acme").reserved == 0

    def test_failed_job_releases_its_reservation(
        self, store, engines, tmp_path, dataset_csv, monkeypatch
    ):
        def explode(spec):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(engines, "get", explode)
        runner = JobRunner(store, engines, tmp_path / "spool", workers=1)
        try:
            job = runner.submit("acme", GL_SPEC, str(dataset_csv))
            assert wait_done(runner, job) == "failed"
            assert "engine exploded" in job.to_dict()["error"]
            account = store.account("acme")
            assert account.pending == {}
            assert account.released == {job.id: job.to_dict()["error"]}
            assert account.remaining == pytest.approx(8.0)
        finally:
            runner.close()

    def test_close_drains_in_flight_jobs(
        self, store, engines, tmp_path, dataset_csv
    ):
        runner = JobRunner(store, engines, tmp_path / "spool", workers=1)
        jobs = [
            runner.submit("acme", GL_SPEC, str(dataset_csv)) for _ in range(3)
        ]
        runner.close(drain=True)
        assert [job.to_dict()["state"] for job in jobs] == ["done"] * 3

    def test_close_without_drain_fails_queued_jobs(
        self, store, engines, tmp_path, dataset_csv, monkeypatch
    ):
        gate = threading.Event()
        real_get = engines.get

        def gated(spec):
            engine = real_get(spec)
            gate.wait(30)
            return engine

        monkeypatch.setattr(engines, "get", gated)
        runner = JobRunner(store, engines, tmp_path / "spool", workers=1)
        first = runner.submit("acme", GL_SPEC, str(dataset_csv))
        second = runner.submit("acme", GL_SPEC, str(dataset_csv))
        closer = threading.Thread(
            target=runner.close, kwargs={"drain": False}
        )
        closer.start()
        gate.set()
        closer.join(timeout=30)
        assert not closer.is_alive()
        # The in-flight job finished; the queued one was abandoned and
        # its reservation returned.
        assert first.to_dict()["state"] == "done"
        assert second.to_dict()["state"] == "failed"
        account = store.account("acme")
        assert second.id in account.released
        assert account.pending == {}

    def test_submit_after_close_refused(self, store, engines, tmp_path):
        runner = JobRunner(store, engines, tmp_path / "spool", workers=1)
        runner.close()
        with pytest.raises(RuntimeError, match="shutting down"):
            runner.submit("acme", GL_SPEC, "whatever.csv")

    def test_jobs_listing_is_ordered(self, runner, dataset_csv):
        submitted = [
            runner.submit("acme", GL_SPEC, str(dataset_csv)) for _ in range(2)
        ]
        assert [job.id for job in runner.jobs()] == [
            job.id for job in submitted
        ]
        assert runner.get(submitted[0].id) is submitted[0]
        assert runner.get("job-999999") is None
