"""Shared segment-index protocol and bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

from repro.geo.geometry import Coord, point_segment_distance


@dataclass(frozen=True, slots=True)
class IndexedSegment:
    """A segment registered in an index.

    ``owner`` carries the id of the trajectory the segment belongs to,
    which the inter-trajectory modifier uses to aggregate segment-level
    results to trajectory-level candidates.
    """

    sid: int
    a: Coord
    b: Coord
    owner: str | None = None

    def distance_to(self, q: Coord) -> float:
        return point_segment_distance(q, self.a, self.b)


@runtime_checkable
class SegmentIndex(Protocol):
    """The interface every spatial index in this package implements."""

    def insert(self, a: Coord, b: Coord, owner: str | None = None) -> int:
        """Register a segment; returns its id."""
        ...

    def remove(self, sid: int) -> None:
        """Unregister a segment by id."""
        ...

    def segment(self, sid: int) -> IndexedSegment:
        """Look up a registered segment."""
        ...

    def knn(self, q: Coord, k: int) -> list[tuple[int, float]]:
        """The ``k`` nearest segments to ``q`` as (sid, distance) pairs."""
        ...

    def iter_nearest(self, q: Coord) -> Iterator[tuple[int, float]]:
        """Lazily yield every segment in ascending distance from ``q``.

        The incremental counterpart of :meth:`knn`: consumers that do
        not know ``k`` up front (e.g. "first Δl distinct eligible
        owners") pull candidates one at a time instead of restarting
        the search with a growing ``k``. Ties are yielded in ascending
        sid order, matching :meth:`knn` output. The iterator snapshots
        or walks live structures — mutating the index invalidates it.

        Implementors without a native incremental search can delegate
        to :func:`repro.index.search.iter_nearest_via_knn`.
        """
        ...

    def knn_batch(self, qs: Sequence[Coord], k: int) -> list[list[tuple[int, float]]]:
        """:meth:`knn` for a batch of queries, one result list per query.

        Answers every query against the *same* index snapshot, which
        lets grid backends share per-cell vectorised segment batches
        across the whole query set instead of rebuilding them per call.
        Each per-query result is exactly what :meth:`knn` returns.

        Implementors can delegate to
        :func:`repro.index.search.knn_batch_via_knn`.
        """
        ...

    def iter_nearest_batch(
        self, qs: Sequence[Coord]
    ) -> list[Iterator[tuple[int, float]]]:
        """:meth:`iter_nearest` for a batch of queries.

        Returns one lazy iterator per query; all of them walk the same
        index snapshot, so per-cell segment batches computed for one
        query are reused by the others — the right surface for
        consumers that need unbounded per-query frontiers over one
        snapshot (the wave planner itself answers its simulations with
        :meth:`knn_batch` plus a growing-``k`` rescan). Mutating the
        index invalidates every returned iterator.

        Implementors can delegate to
        :func:`repro.index.search.iter_nearest_batch_via_single`.
        """
        ...

    def __len__(self) -> int:
        ...


def bulk_insert(
    index: SegmentIndex,
    pairs: Sequence[tuple[Coord, Coord]],
    owner: str | None = None,
) -> list[int]:
    """Insert a batch of segments, returning their sids in input order.

    Dispatches to the index's native ``insert_many`` when present (the
    hierarchical grid vectorises best-fit placement over the whole
    batch), else falls back to per-segment ``insert``. Allocation
    order — hence sid assignment — matches the equivalent insert loop
    exactly, so the two paths are interchangeable byte for byte.
    """
    native = getattr(index, "insert_many", None)
    if native is not None:
        return native(pairs, owner=owner)
    return [index.insert(a, b, owner=owner) for a, b in pairs]


class SegmentRegistry:
    """Id allocation and storage shared by the concrete indexes."""

    def __init__(self) -> None:
        self._segments: dict[int, IndexedSegment] = {}
        self._next_id = 0

    def allocate(self, a: Coord, b: Coord, owner: str | None) -> IndexedSegment:
        segment = IndexedSegment(self._next_id, a, b, owner)
        self._segments[segment.sid] = segment
        self._next_id += 1
        return segment

    def release(self, sid: int) -> IndexedSegment:
        try:
            return self._segments.pop(sid)
        except KeyError:
            raise KeyError(f"segment {sid} is not in the index") from None

    def get(self, sid: int) -> IndexedSegment:
        try:
            return self._segments[sid]
        except KeyError:
            raise KeyError(f"segment {sid} is not in the index") from None

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[IndexedSegment]:
        return iter(self._segments.values())

    def bulk_load(
        self, segments: Iterable[tuple[Coord, Coord, str | None]]
    ) -> list[IndexedSegment]:
        return [self.allocate(a, b, owner) for a, b, owner in segments]
