"""Shared fixtures for the benchmark suite.

All benches run at the smoke scale so the full suite finishes in
minutes (``REPRO_BENCH_SCALE=paper`` switches the engine bench to the
paper's 500x300 fleet); the experiment modules under
``repro.experiments`` regenerate the paper's tables/figures at the
larger presets.

Benches that time hot paths record their measurements through the
``bench_records`` fixture; at session end the records are written to
``BENCH_engine.json`` (next to the invocation directory) so the perf
trajectory is machine-readable and tracked across PRs — the CI
bench-smoke job uploads it as an artifact.
"""

import json
import platform
from pathlib import Path

import pytest

from repro.datagen.generator import generate_fleet
from repro.experiments.config import ExperimentConfig

#: The committed paper-scale perf record (REPRO_BENCH_SCALE=paper).
BENCH_RESULTS_FILENAME = "BENCH_engine.json"
#: Output of any lower-scale run (CI bench-smoke, local pytest).
BENCH_SMOKE_RESULTS_FILENAME = "BENCH_engine.smoke.json"

_RECORDS: dict = {}


@pytest.fixture(scope="session")
def config():
    return ExperimentConfig.smoke()


@pytest.fixture(scope="session")
def fleet(config):
    return generate_fleet(config.fleet)


@pytest.fixture(scope="session")
def bench_records():
    """Session-wide sink for machine-readable bench measurements.

    Keys are dotted metric names (``"inter_modification.wave_s"``);
    values are floats (seconds) or small JSON-serialisable payloads.
    """
    return _RECORDS


def pytest_sessionfinish(session, exitstatus):
    if not _RECORDS:
        return
    speedups = {}
    inter = _RECORDS.get("inter_modification", {})
    restart = inter.get("restart_s")
    incremental = inter.get("incremental_s")
    wave = inter.get("wave_s")
    if restart and incremental:
        speedups["incremental_over_restart"] = restart / incremental
    if incremental and wave:
        speedups["wave_over_incremental"] = incremental / wave
    if restart and wave:
        speedups["wave_over_restart"] = restart / wave
    publisher = _RECORDS.get("stream_publisher", {})
    per_chunk = publisher.get("per_chunk_s")
    shared = publisher.get("shared_tf_s")
    if per_chunk and shared:
        # >1 means whole-dataset publishing is cheaper than the
        # independent per-chunk stream it replaces (it usually costs a
        # little more: the extra pass buys the shared target + ledger).
        speedups["publish_shared_tf_over_per_chunk"] = per_chunk / shared
    payload = {
        "bench": "engine",
        "python": platform.python_version(),
        **_RECORDS,
        "speedups": speedups,
    }
    # Paper-scale runs refresh the committed record; any other scale
    # writes the sibling smoke file, so casual/CI runs never clobber
    # the record yet always produce fresh numbers for the CI artifact.
    # Anchored to the pytest root (the repo), not the invocation cwd.
    filename = (
        BENCH_RESULTS_FILENAME
        if _RECORDS.get("scale", {}).get("paper_scale")
        else BENCH_SMOKE_RESULTS_FILENAME
    )
    path = Path(session.config.rootpath) / filename
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    if reporter is not None:
        reporter.write_line(f"bench results written to {path}")
