"""Protocol-compliance tests: every backend honours SegmentIndex.

Parametrized over all four implementations so a new backend gets the
full behavioural contract for free.
"""

import random

import pytest

from repro.geo.geometry import BBox
from repro.index import (
    HierarchicalGridIndex,
    LinearSegmentIndex,
    RTreeIndex,
    SegmentIndex,
    UniformGridIndex,
)
from repro.index.search import linear_knn

BOX = BBox(0.0, 0.0, 1000.0, 1000.0)

BACKENDS = {
    "linear": lambda: LinearSegmentIndex(),
    "uniform-overlap": lambda: UniformGridIndex(BOX, granularity=32),
    "uniform-midpoint": lambda: UniformGridIndex(
        BOX, granularity=32, assignment="midpoint"
    ),
    "hierarchical": lambda: HierarchicalGridIndex(BOX, levels=6),
    "rtree": lambda: RTreeIndex(leaf_capacity=4),
}


@pytest.fixture(params=sorted(BACKENDS), ids=sorted(BACKENDS))
def index(request):
    return BACKENDS[request.param]()


def fill(index, n=60, seed=5):
    rng = random.Random(seed)
    segments = []
    for _ in range(n):
        x = rng.uniform(0, 1000)
        y = rng.uniform(0, 1000)
        a = (x, y)
        b = (x + rng.uniform(-60, 60), y + rng.uniform(-60, 60))
        sid = index.insert(a, b, owner=f"o{rng.randrange(5)}")
        segments.append(index.segment(sid))
    return segments


class TestProtocolCompliance:
    def test_satisfies_runtime_protocol(self, index):
        assert isinstance(index, SegmentIndex)

    def test_len_tracks_inserts_and_removes(self, index):
        assert len(index) == 0
        sid = index.insert((1, 1), (2, 2))
        assert len(index) == 1
        index.remove(sid)
        assert len(index) == 0

    def test_segment_lookup(self, index):
        sid = index.insert((1, 1), (2, 2), owner="me")
        segment = index.segment(sid)
        assert segment.sid == sid
        assert segment.owner == "me"
        assert segment.a == (1, 1)
        assert segment.b == (2, 2)

    def test_lookup_after_remove_raises(self, index):
        sid = index.insert((1, 1), (2, 2))
        index.remove(sid)
        with pytest.raises(KeyError):
            index.segment(sid)

    def test_double_remove_raises(self, index):
        sid = index.insert((1, 1), (2, 2))
        index.remove(sid)
        with pytest.raises(KeyError):
            index.remove(sid)

    def test_ids_never_reused(self, index):
        sids = set()
        for i in range(10):
            sid = index.insert((float(i), 0.0), (float(i), 1.0))
            assert sid not in sids
            sids.add(sid)
            if i % 2 == 0:
                index.remove(sid)

    def test_knn_on_empty(self, index):
        assert index.knn((5, 5), 3) == []

    def test_knn_matches_linear_reference(self, index):
        segments = fill(index)
        for q in [(0, 0), (500, 500), (999, 999)]:
            got = [round(d, 6) for _, d in index.knn(q, 5)]
            want = [round(d, 6) for _, d in linear_knn(segments, q, 5)]
            assert got == want

    def test_knn_after_churn(self, index):
        rng = random.Random(11)
        fill(index, n=40, seed=7)
        # Remove half of what kNN finds near the centre, twice.
        for _ in range(2):
            for sid, _ in index.knn((500, 500), 10):
                index.remove(sid)
        live = []
        for sid, _ in index.knn((500, 500), 10_000):
            live.append(index.segment(sid))
        got = [round(d, 6) for _, d in index.knn((500, 500), 4)]
        want = [round(d, 6) for _, d in linear_knn(live, (500, 500), 4)]
        assert got == want

    def test_owner_optional(self, index):
        sid = index.insert((0, 0), (1, 1))
        assert index.segment(sid).owner is None
