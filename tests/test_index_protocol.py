"""Protocol-compliance tests: every backend honours SegmentIndex.

Parametrized over all four implementations so a new backend gets the
full behavioural contract for free.
"""

import random

import pytest

from repro.geo.geometry import BBox
from repro.index import (
    HierarchicalGridIndex,
    LinearSegmentIndex,
    RTreeIndex,
    SegmentIndex,
    UniformGridIndex,
)
from repro.index.search import linear_knn

BOX = BBox(0.0, 0.0, 1000.0, 1000.0)

BACKENDS = {
    "linear": lambda: LinearSegmentIndex(),
    "uniform-overlap": lambda: UniformGridIndex(BOX, granularity=32),
    "uniform-midpoint": lambda: UniformGridIndex(
        BOX, granularity=32, assignment="midpoint"
    ),
    "hierarchical": lambda: HierarchicalGridIndex(BOX, levels=6),
    "rtree": lambda: RTreeIndex(leaf_capacity=4),
}


@pytest.fixture(params=sorted(BACKENDS), ids=sorted(BACKENDS))
def index(request):
    return BACKENDS[request.param]()


def fill(index, n=60, seed=5):
    rng = random.Random(seed)
    segments = []
    for _ in range(n):
        x = rng.uniform(0, 1000)
        y = rng.uniform(0, 1000)
        a = (x, y)
        b = (x + rng.uniform(-60, 60), y + rng.uniform(-60, 60))
        sid = index.insert(a, b, owner=f"o{rng.randrange(5)}")
        segments.append(index.segment(sid))
    return segments


class TestProtocolCompliance:
    def test_satisfies_runtime_protocol(self, index):
        assert isinstance(index, SegmentIndex)

    def test_len_tracks_inserts_and_removes(self, index):
        assert len(index) == 0
        sid = index.insert((1, 1), (2, 2))
        assert len(index) == 1
        index.remove(sid)
        assert len(index) == 0

    def test_segment_lookup(self, index):
        sid = index.insert((1, 1), (2, 2), owner="me")
        segment = index.segment(sid)
        assert segment.sid == sid
        assert segment.owner == "me"
        assert segment.a == (1, 1)
        assert segment.b == (2, 2)

    def test_lookup_after_remove_raises(self, index):
        sid = index.insert((1, 1), (2, 2))
        index.remove(sid)
        with pytest.raises(KeyError):
            index.segment(sid)

    def test_double_remove_raises(self, index):
        sid = index.insert((1, 1), (2, 2))
        index.remove(sid)
        with pytest.raises(KeyError):
            index.remove(sid)

    def test_ids_never_reused(self, index):
        sids = set()
        for i in range(10):
            sid = index.insert((float(i), 0.0), (float(i), 1.0))
            assert sid not in sids
            sids.add(sid)
            if i % 2 == 0:
                index.remove(sid)

    def test_knn_on_empty(self, index):
        assert index.knn((5, 5), 3) == []

    def test_knn_matches_linear_reference(self, index):
        segments = fill(index)
        for q in [(0, 0), (500, 500), (999, 999)]:
            got = [round(d, 6) for _, d in index.knn(q, 5)]
            want = [round(d, 6) for _, d in linear_knn(segments, q, 5)]
            assert got == want

    def test_knn_after_churn(self, index):
        fill(index, n=40, seed=7)
        # Remove half of what kNN finds near the centre, twice.
        for _ in range(2):
            for sid, _ in index.knn((500, 500), 10):
                index.remove(sid)
        live = []
        for sid, _ in index.knn((500, 500), 10_000):
            live.append(index.segment(sid))
        got = [round(d, 6) for _, d in index.knn((500, 500), 4)]
        want = [round(d, 6) for _, d in linear_knn(live, (500, 500), 4)]
        assert got == want

    def test_owner_optional(self, index):
        sid = index.insert((0, 0), (1, 1))
        assert index.segment(sid).owner is None


class TestBatchedQueries:
    """knn_batch / iter_nearest_batch agree with their per-query
    counterparts on every backend (the wave planner's contract)."""

    def test_knn_batch_matches_knn(self, index):
        fill(index)
        queries = [(0.0, 0.0), (500.0, 500.0), (999.0, 999.0), (250.0, 750.0)]
        assert index.knn_batch(queries, 5) == [
            index.knn(q, 5) for q in queries
        ]

    def test_knn_batch_empty(self, index):
        assert index.knn_batch([(1.0, 2.0)], 3) == [[]]
        assert index.knn_batch([], 3) == []

    def test_iter_nearest_batch_matches_single(self, index):
        fill(index)
        queries = [(0.0, 0.0), (500.0, 500.0), (999.0, 999.0)]
        expected = [list(index.iter_nearest(q)) for q in queries]
        got = [list(it) for it in index.iter_nearest_batch(queries)]
        assert got == expected

    def test_batches_see_mutations_between_calls(self, index):
        fill(index, n=20)
        before = index.knn_batch([(500.0, 500.0)], 3)[0]
        index.remove(before[0][0])
        after = index.knn_batch([(500.0, 500.0)], 3)[0]
        assert before[0][0] not in [sid for sid, _ in after]
        assert after == [index.knn((500.0, 500.0), 3)[i] for i in range(3)]


class TestBulkInsert:
    def test_bulk_insert_matches_loop(self, index):
        from repro.index.base import bulk_insert

        rng = random.Random(3)
        pairs = []
        for _ in range(40):
            x, y = rng.uniform(-50, 1050), rng.uniform(-50, 1050)
            pairs.append(
                ((x, y), (x + rng.uniform(-40, 40), y + rng.uniform(-40, 40)))
            )
        sids = bulk_insert(index, pairs, owner="bulk")
        assert sids == sorted(sids)  # allocation order preserved
        for sid, (a, b) in zip(sids, pairs, strict=True):
            segment = index.segment(sid)
            assert (segment.a, segment.b, segment.owner) == (a, b, "bulk")
        # Searches over a bulk-loaded index match the linear reference
        # (includes out-of-bbox segments routed through overflow).
        segments = [index.segment(sid) for sid in sids]
        for q in [(0.0, 0.0), (500.0, 500.0), (1049.0, -49.0)]:
            got = [round(d, 6) for _, d in index.knn(q, 6)]
            want = [round(d, 6) for _, d in linear_knn(segments, q, 6)]
            assert got == want
