"""Shift classification: is a new record a regression or a win?

Each tracked key of a candidate :class:`~repro.bench.record.BenchRecord`
is compared against the median of a sliding baseline window of earlier
same-scale records and classified into one of five
:class:`ShiftClass` buckets, symmetric around stability:

====================== =============================================
SIGNIFICANT_IMPROVEMENT  better by ≥ the significant threshold
MINOR_IMPROVEMENT        better by ≥ the minor threshold
STABLE                   within the minor band either way
MINOR_DEGRADATION        worse by ≥ the minor threshold
SIGNIFICANT_DEGRADATION  worse by ≥ the significant threshold (gates)
====================== =============================================

Direction matters per key: wall-clock metrics (``*_s``) are
lower-is-better, derived ratios (``speedups.*``) higher-is-better.
The classification is an exact mirror under a direction flip — a key
that classifies as an improvement under lower-is-better classifies as
the corresponding degradation when the direction is flipped on the
same numbers (property-tested in ``tests/test_bench_shift.py``).

Thresholds are relative (default: 5% minor, 15% significant) and
deliberately configurable per invocation — tuning guidance lives in
``docs/benchmarks.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.bench.record import BenchRecord
from repro.bench.stats import summarize

__all__ = [
    "BenchComparison",
    "CrossScaleError",
    "Direction",
    "KeyShift",
    "ShiftClass",
    "Thresholds",
    "classify_shift",
    "compare_records",
    "direction_for",
]


class CrossScaleError(ValueError):
    """Records from different (bench, scale) partitions were compared.

    Timings from different input scales are not comparable — the smoke
    fleet shows ``wave_over_incremental < 1`` where paper scale shows
    ``1.4x`` — so the comparison refuses rather than classify noise.
    """


class ShiftClass(str, enum.Enum):
    SIGNIFICANT_IMPROVEMENT = "significant_improvement"
    MINOR_IMPROVEMENT = "minor_improvement"
    STABLE = "stable"
    MINOR_DEGRADATION = "minor_degradation"
    SIGNIFICANT_DEGRADATION = "significant_degradation"

    @property
    def is_degradation(self) -> bool:
        return self in (
            ShiftClass.MINOR_DEGRADATION,
            ShiftClass.SIGNIFICANT_DEGRADATION,
        )

    @property
    def is_improvement(self) -> bool:
        return self in (
            ShiftClass.MINOR_IMPROVEMENT,
            ShiftClass.SIGNIFICANT_IMPROVEMENT,
        )


class Direction(str, enum.Enum):
    LOWER_IS_BETTER = "lower_is_better"
    HIGHER_IS_BETTER = "higher_is_better"

    def flipped(self) -> "Direction":
        if self is Direction.LOWER_IS_BETTER:
            return Direction.HIGHER_IS_BETTER
        return Direction.LOWER_IS_BETTER


def direction_for(dotted_key: str) -> Direction | None:
    """The per-key direction metadata, ``None`` for untracked keys.

    Seconds metrics (``<group>.<name>_s``) are lower-is-better; every
    derived ``speedups.<name>`` ratio is higher-is-better. Anything
    else (auxiliary counters like ``stream_publisher.chunks``) carries
    no direction and never gates.
    """
    if dotted_key.startswith("speedups."):
        return Direction.HIGHER_IS_BETTER
    if dotted_key.endswith("_s"):
        return Direction.LOWER_IS_BETTER
    return None


@dataclass(frozen=True)
class Thresholds:
    """Relative shift thresholds (fractions of the baseline median)."""

    minor: float = 0.05
    significant: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 < self.minor <= self.significant:
            raise ValueError(
                f"thresholds must satisfy 0 < minor <= significant, got "
                f"minor={self.minor!r} significant={self.significant!r}"
            )


DEFAULT_THRESHOLDS = Thresholds()


def classify_shift(
    candidate: float,
    baseline_median: float,
    direction: Direction,
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
) -> ShiftClass:
    """Classify one value against its baseline median.

    The signed relative change is normalized so positive always means
    "worse" under the given direction; the buckets are symmetric, so
    flipping the direction maps improvements to the mirror-image
    degradations exactly (boundaries included).
    """
    if baseline_median <= 0:
        raise ValueError(
            f"baseline median must be positive, got {baseline_median!r}"
        )
    if candidate < 0:
        raise ValueError(f"candidate must be non-negative, got {candidate!r}")
    change = (candidate - baseline_median) / baseline_median
    if direction is Direction.HIGHER_IS_BETTER:
        change = -change
    if change >= thresholds.significant:
        return ShiftClass.SIGNIFICANT_DEGRADATION
    if change >= thresholds.minor:
        return ShiftClass.MINOR_DEGRADATION
    if change <= -thresholds.significant:
        return ShiftClass.SIGNIFICANT_IMPROVEMENT
    if change <= -thresholds.minor:
        return ShiftClass.MINOR_IMPROVEMENT
    return ShiftClass.STABLE


@dataclass(frozen=True)
class KeyShift:
    """One tracked key's classification against its baseline window."""

    key: str
    direction: Direction
    candidate: float
    baseline: dict
    shift: ShiftClass
    #: Signed relative change, positive = degradation.
    change: float

    def render(self) -> str:
        percent = self.change * 100 + 0.0  # -0.0 -> +0.0 for display
        return (
            f"{self.key}: {self.shift.value} "
            f"({self.candidate:g} vs median {self.baseline['median']:g} "
            f"over {self.baseline['count']} run(s), "
            f"{percent:+.1f}% "
            f"{'worse' if self.change > 0 else 'better or equal'}, "
            f"{self.direction.value})"
        )

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "direction": self.direction.value,
            "candidate": self.candidate,
            "baseline": dict(self.baseline),
            "shift": self.shift.value,
            "change": self.change,
        }


@dataclass(frozen=True)
class BenchComparison:
    """A candidate record classified against its baseline window."""

    bench: str
    scale_key: str
    window: int
    shifts: tuple[KeyShift, ...]
    #: Tracked keys of the candidate with no baseline value yet.
    new_keys: tuple[str, ...] = ()
    #: Tracked keys present in the window but absent from the candidate.
    missing_keys: tuple[str, ...] = ()

    @property
    def significant_degradations(self) -> tuple[KeyShift, ...]:
        return tuple(
            s for s in self.shifts
            if s.shift is ShiftClass.SIGNIFICANT_DEGRADATION
        )

    @property
    def minor_degradations(self) -> tuple[KeyShift, ...]:
        return tuple(
            s for s in self.shifts
            if s.shift is ShiftClass.MINOR_DEGRADATION
        )

    @property
    def clean(self) -> bool:
        """No significant degradation (minor shifts only warn)."""
        return not self.significant_degradations

    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def render_human(self) -> str:
        lines = [
            f"bench {self.bench} @ {self.scale_key}: "
            f"{len(self.shifts)} tracked key(s) against a window of "
            f"{self.window} run(s)"
        ]
        lines.extend(f"  {shift.render()}" for shift in self.shifts)
        for key in self.new_keys:
            lines.append(f"  {key}: no baseline yet (new key)")
        for key in self.missing_keys:
            lines.append(f"  {key}: in baseline but absent from candidate")
        verdict = (
            "significant degradation"
            if self.significant_degradations
            else "minor degradation (warning)"
            if self.minor_degradations
            else "stable or better"
        )
        lines.append(f"  => {verdict}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "bench": self.bench,
            "scale": self.scale_key,
            "window": self.window,
            "clean": self.clean,
            "shifts": [shift.to_dict() for shift in self.shifts],
            "new_keys": list(self.new_keys),
            "missing_keys": list(self.missing_keys),
        }


def compare_records(
    candidate: BenchRecord,
    baselines: Sequence[BenchRecord],
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
    window: int | None = None,
) -> BenchComparison:
    """Classify ``candidate`` against the last ``window`` baselines.

    Every baseline must come from the same ``(bench, scale)`` partition
    as the candidate — anything else raises :class:`CrossScaleError`
    rather than producing a scale-poisoned verdict.
    """
    for baseline in baselines:
        if (
            baseline.bench != candidate.bench
            or baseline.scale.key != candidate.scale.key
        ):
            raise CrossScaleError(
                f"cannot compare bench {candidate.bench!r} @ "
                f"{candidate.scale.key!r} against a baseline from bench "
                f"{baseline.bench!r} @ {baseline.scale.key!r}; benchmark "
                f"timings are only comparable within one scale (re-run "
                f"at the matching scale, or select it with --scale)"
            )
    if window is not None:
        baselines = baselines[-window:]
    shifts: list[KeyShift] = []
    new_keys: list[str] = []
    for key in candidate.tracked_keys():
        direction = direction_for(key)
        if direction is None:
            continue
        value = candidate.value(key)
        history = [
            v for v in (b.value(key) for b in baselines) if v is not None
        ]
        baseline = summarize(history)
        if baseline["count"] == 0 or baseline["median"] <= 0:
            # No usable baseline (or a degenerate zero-median one — a
            # relative change against it is meaningless): report the
            # key as unbaselined rather than divide by zero.
            new_keys.append(key)
            continue
        change = (value - baseline["median"]) / baseline["median"]
        if direction is Direction.HIGHER_IS_BETTER:
            change = -change
        shifts.append(
            KeyShift(
                key=key,
                direction=direction,
                candidate=value,
                baseline=baseline,
                shift=classify_shift(
                    value, baseline["median"], direction, thresholds
                ),
                change=change,
            )
        )
    candidate_keys = set(candidate.tracked_keys())
    missing = sorted(
        {
            key
            for baseline in baselines
            for key in baseline.tracked_keys()
            if key not in candidate_keys
        }
    )
    return BenchComparison(
        bench=candidate.bench,
        scale_key=candidate.scale.key,
        window=len(baselines),
        shifts=tuple(shifts),
        new_keys=tuple(new_keys),
        missing_keys=tuple(missing),
    )
