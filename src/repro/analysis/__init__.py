"""Project-specific static analysis: privacy, determinism, concurrency.

The repo's load-bearing runtime invariants — every noise draw is
recorded in the composition ledger, every stage is byte-deterministic
under a seed, shared engine state is only mutated under locks, budgets
and resources follow their stateful protocols — are enforced here
*statically*, as lint rules with stable codes, so violations fail CI
before any hypothesis test has to catch them:

========= =====================================================
DP001     noise drawn outside sanctioned mechanism modules by a
          scope that never records to the composition ledger
DET001    global-state RNG call (``random.*`` / legacy
          ``np.random.*``) instead of a threaded seeded generator
DET002    wall-clock reads and direct set iteration on committed
          output paths
RACE001   unlocked ``self.*``/global writes reachable from
          thread-pool entry points (call-graph approximation)
EPS001    epsilon compared with ``== 0``/truthiness instead of
          ``is None``
EPS002    epsilon share split via ``split_*``/``apportion``/
          arithmetic that is dropped, or an undivided source
          spent again after splitting (flow-sensitive)
LIFE001   resource with a terminal ``close()`` that misses
          ``close()``/``__exit__`` on some path — exception
          paths included — or is used after close
LEDGER001 ``reserve`` not settled by exactly one
          ``commit``/``release`` on every path out of a function
RACE002   two locks acquired in opposite orders on different
          paths (through the call graph) — potential deadlock
========= =====================================================

The syntactic rules are single-pass AST pattern checks; the
flow-sensitive ones (EPS002/LIFE001/LEDGER001/RACE002) run a worklist
dataflow over per-function CFGs (:mod:`repro.analysis.cfg`,
:mod:`repro.analysis.dataflow`) with interprocedural summaries from
:mod:`repro.analysis.callgraph`.

Run via ``repro check`` (or ``tools/check_static.py`` in CI); add
``--format sarif`` for a SARIF 2.1.0 log. Suppress a finding inline
with ``# repro: noqa[CODE]`` — stale suppressions are reported as
warnings — or grandfather it with a justified entry in
``tools/analysis_baseline.json``. The rule catalogue with examples
lives in ``docs/analysis.md``.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.callgraph import FuncKey, FunctionTable, Summaries
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import Solution, Transfer, fixpoint
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, all_rules, rule, rules_for
from repro.analysis.runner import (
    AnalysisError,
    AnalysisReport,
    UnusedNoqa,
    analyze_paths,
    analyze_project,
    analyze_source,
    load_project,
)

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "CFG",
    "Finding",
    "FuncKey",
    "FunctionTable",
    "Rule",
    "Solution",
    "Summaries",
    "Transfer",
    "UnusedNoqa",
    "all_rules",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "build_cfg",
    "fixpoint",
    "load_project",
    "rule",
    "rules_for",
]
