"""Per-chunk vs shared-TF publishing comparison.

The streaming publisher's claim is that sharing one noisy TF target
across chunks publishes a *more consistent* dataset than k independent
per-chunk releases — and buys a composable ε while doing it.  This
driver measures that claim on any dataset (synthetic fleet or an
ingested real dataset via ``--dataset``, the chunked-real-data mode
the publisher exists for): it chunks the input, publishes it once per
strategy at the same total ε, and evaluates the Table II utility and
privacy metrics of both merged outputs against the original.

Invoke with::

    repro experiment publish --preset smoke --chunk-size 10
    python -m repro.experiments.publish smoke [workers] [--dataset REF]

Real-data mode skips the recovery metric family (no route ground
truth), like every other driver.
"""

from __future__ import annotations

import sys

from repro.core.pipeline import GL
from repro.data.stream import chunked
from repro.engine.batch import BatchAnonymizer
from repro.engine.publish import StreamPublisher
from repro.experiments.config import ExperimentConfig, load_experiment_input
from repro.experiments.evaluate import METRIC_COLUMNS, evaluate_method
from repro.trajectory.model import TrajectoryDataset

#: The two publishing strategies the experiment compares.
STRATEGIES = ("per_chunk", "shared_tf")


def run(
    config: ExperimentConfig,
    chunk_size: int | None = None,
    workers: int = 1,
) -> dict:
    """Publish the dataset both ways at equal ε; evaluate both outputs.

    Returns ``{"metrics": {strategy: {metric: value}}, "chunk_size",
    "chunk_count", "epsilon", "ledger"}`` where ``ledger`` is the
    shared-TF run's composition accounting (the per-chunk baseline has
    none to offer — that absence is the point).
    """
    experiment_input = load_experiment_input(config)
    dataset = experiment_input.dataset
    if chunk_size is None:
        chunk_size = max(1, len(dataset) // 4)

    def fresh_engine() -> BatchAnonymizer:
        return BatchAnonymizer(
            GL(**config.model_params()), workers=workers,
            executor="serial" if workers <= 1 else "process",
        )

    # Baseline: k independent releases, one per chunk (each draws its
    # own TF over its own candidate set — the pre-publisher stream).
    merged: list = []
    for chunk_result, _report in fresh_engine().anonymize_stream(
        chunked(iter(dataset), chunk_size)
    ):
        merged.extend(chunk_result)
    per_chunk = TrajectoryDataset(merged)

    # Shared-TF: one two-pass publish of the whole stream.
    with fresh_engine() as engine:
        shared, publish_report = StreamPublisher(engine).publish_collected(
            lambda: chunked(iter(dataset), chunk_size)
        )

    with_recovery = experiment_input.fleet is not None
    metrics = {}
    for label, output in (("per_chunk", per_chunk), ("shared_tf", shared)):
        evaluation = evaluate_method(
            dataset,
            output,
            experiment_input.fleet,
            config,
            with_recovery=with_recovery,
        )
        metrics[label] = evaluation.values
    return {
        "metrics": metrics,
        "chunk_size": chunk_size,
        "chunk_count": publish_report.chunk_count,
        "epsilon": config.epsilon,
        "epsilon_total": publish_report.epsilon_total,
        "ledger": publish_report.accounting.to_dict(),
    }


def render(results: dict) -> str:
    lines = [
        f"publish comparison: |chunks| = {results['chunk_count']} "
        f"(chunk size {results['chunk_size']}), "
        f"eps = {results['epsilon']:g}, shared-TF end-to-end eps = "
        f"{results['epsilon_total']:g}",
        "",
        f"{'metric':<10s} {'per_chunk':>10s} {'shared_tf':>10s}",
    ]
    for metric in METRIC_COLUMNS:
        cells = []
        for strategy in STRATEGIES:
            value = results["metrics"][strategy].get(metric)
            cells.append("-" if value is None else f"{value:.3f}")
        lines.append(f"{metric:<10s} {cells[0]:>10s} {cells[1]:>10s}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    import argparse

    from repro.experiments.config import PRESETS

    parser = argparse.ArgumentParser(prog="repro.experiments.publish")
    parser.add_argument("preset", nargs="?", choices=PRESETS, default="default")
    parser.add_argument("workers", nargs="?", type=int, default=1)
    parser.add_argument("--dataset", default=None, metavar="REF")
    parser.add_argument("--chunk-size", type=int, default=None, metavar="N")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    config = {
        "smoke": ExperimentConfig.smoke,
        "default": ExperimentConfig.default,
        "large": ExperimentConfig.large,
    }[args.preset]()
    if args.dataset:
        config = config.with_dataset(args.dataset)
    results = run(config, chunk_size=args.chunk_size, workers=args.workers)
    print(render(results))


if __name__ == "__main__":
    main()
