"""Reading and writing trajectory datasets in a T-Drive-style format.

The original T-Drive release ships one text file per taxi with lines
``taxi_id,datetime,longitude,latitude``. We support a planar analogue —
``object_id,t,x,y`` with ``t`` in seconds and ``x``/``y`` in metres — in
both single-file and directory-per-object layouts, plus a converter from
latitude/longitude records using an equirectangular projection (adequate
at city scale).
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Iterable

from repro.trajectory.model import Point, Trajectory, TrajectoryDataset

#: Mean Earth radius in metres, used by the lat/lon projection helpers.
EARTH_RADIUS_M = 6_371_000.0


def write_csv(dataset: TrajectoryDataset, path: str | Path) -> None:
    """Write the dataset as a single ``object_id,t,x,y`` CSV file."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["object_id", "t", "x", "y"])
        for trajectory in dataset:
            for point in trajectory:
                writer.writerow(
                    [trajectory.object_id, f"{point.t:.3f}", f"{point.x:.3f}", f"{point.y:.3f}"]
                )


def read_csv(path: str | Path) -> TrajectoryDataset:
    """Read a dataset previously written with :func:`write_csv`.

    Rows must be grouped by object (as :func:`write_csv` produces) but
    objects may appear in any order; points are kept in file order and
    re-sorted by timestamp per object.
    """
    path = Path(path)
    points_by_object: dict[str, list[Point]] = {}
    order: list[str] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["object_id", "t", "x", "y"]:
            raise ValueError(f"unexpected header in {path}: {header}")
        for row in reader:
            if len(row) != 4:
                raise ValueError(f"malformed row in {path}: {row}")
            object_id, t, x, y = row
            if object_id not in points_by_object:
                points_by_object[object_id] = []
                order.append(object_id)
            points_by_object[object_id].append(Point(float(x), float(y), float(t)))
    trajectories = []
    for object_id in order:
        points = sorted(points_by_object[object_id], key=lambda p: p.t)
        trajectories.append(Trajectory(object_id, points))
    return TrajectoryDataset(trajectories)


def write_tdrive_directory(dataset: TrajectoryDataset, directory: str | Path) -> None:
    """Write one ``<object_id>.txt`` file per trajectory, T-Drive style."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for trajectory in dataset:
        target = directory / f"{trajectory.object_id}.txt"
        with target.open("w", newline="") as handle:
            writer = csv.writer(handle)
            for point in trajectory:
                writer.writerow(
                    [trajectory.object_id, f"{point.t:.3f}", f"{point.x:.3f}", f"{point.y:.3f}"]
                )


def read_tdrive_directory(directory: str | Path) -> TrajectoryDataset:
    """Read a directory written by :func:`write_tdrive_directory`."""
    directory = Path(directory)
    trajectories = []
    for target in sorted(directory.glob("*.txt")):
        points = []
        object_id = target.stem
        with target.open(newline="") as handle:
            for row in csv.reader(handle):
                if not row:
                    continue
                if len(row) != 4:
                    raise ValueError(f"malformed row in {target}: {row}")
                _, t, x, y = row
                points.append(Point(float(x), float(y), float(t)))
        points.sort(key=lambda p: p.t)
        trajectories.append(Trajectory(object_id, points))
    return TrajectoryDataset(trajectories)


def project_latlon(
    records: Iterable[tuple[str, float, float, float]],
    origin: tuple[float, float] | None = None,
) -> TrajectoryDataset:
    """Convert ``(object_id, t, lat, lon)`` records into planar metres.

    Uses an equirectangular projection centred on ``origin`` (defaults
    to the mean coordinate), which keeps city-scale distance distortion
    well under 1 %.
    """
    rows = list(records)
    if not rows:
        return TrajectoryDataset()
    if origin is None:
        origin = (
            sum(r[2] for r in rows) / len(rows),
            sum(r[3] for r in rows) / len(rows),
        )
    lat0, lon0 = origin
    cos_lat0 = math.cos(math.radians(lat0))
    points_by_object: dict[str, list[Point]] = {}
    order: list[str] = []
    for object_id, t, lat, lon in rows:
        x = math.radians(lon - lon0) * cos_lat0 * EARTH_RADIUS_M
        y = math.radians(lat - lat0) * EARTH_RADIUS_M
        if object_id not in points_by_object:
            points_by_object[object_id] = []
            order.append(object_id)
        points_by_object[object_id].append(Point(x, y, t))
    trajectories = []
    for object_id in order:
        points = sorted(points_by_object[object_id], key=lambda p: p.t)
        trajectories.append(Trajectory(object_id, points))
    return TrajectoryDataset(trajectories)
