"""Benchmarks for the batch engine, the incremental kNN frontier, and
the wave-planned global stage.

The headline comparison: the inter-trajectory (global) modification
stage under its three candidate sources — the seed restart-scan, PR 1's
incremental ``iter_nearest`` consumption, and the wave planner/executor
path (read-only simulation rounds over a static index snapshot, edits
applied in serial order). All three make identical selections; the
bench isolates pure search/scheduling cost.

Runs on a dedicated fleet larger than the smoke preset so the restart
overhead is visible, yet small enough for CI. Set
``REPRO_BENCH_SCALE=paper`` to run the paper-scale fleet (500
trajectories x 300 points, m=10) instead — the scale the engine's
speedup targets are recorded at.

Wall-clock measurements land in the session :class:`repro.bench.BenchRecord`
via the ``bench_timer`` fixture (see ``conftest``) — written to
``BENCH_engine.json`` and appended to the scale-keyed history — so the
perf trajectory is tracked across PRs even under
``--benchmark-disable``.
"""

import random

import pytest
from conftest import N_OBJECTS, N_POINTS, SIGNATURE_SIZE

from repro.core.global_mechanism import GlobalTFMechanism
from repro.core.modification import InterTrajectoryModifier, make_index_factory
from repro.core.pipeline import GL, PureL
from repro.core.signature import SignatureExtractor
from repro.data.stream import chunked
from repro.datagen.generator import FleetConfig, generate_fleet
from repro.engine import BatchAnonymizer, StreamPublisher


@pytest.fixture(scope="module")
def engine_fleet():
    return generate_fleet(
        FleetConfig(
            n_objects=N_OBJECTS, points_per_trajectory=N_POINTS, rows=16,
            cols=16, n_hotspots=12, seed=7,
        )
    )


@pytest.fixture(scope="module")
def tf_perturbation(engine_fleet):
    signature_index = SignatureExtractor(m=SIGNATURE_SIZE).extract(
        engine_fleet.dataset
    )
    # the raw draw *is* the workload under measurement; no release here
    return GlobalTFMechanism(0.5).perturb(  # repro: noqa[DP001]
        signature_index.tf, len(engine_fleet.dataset), random.Random(1)
    )


def _apply_inter(dataset, perturbation, candidate_source):
    modifier = InterTrajectoryModifier(
        make_index_factory("hierarchical"), candidate_source=candidate_source
    )
    return modifier.apply(dataset, perturbation)


def _timed_inter(bench_timer, dataset, perturbation, candidate_source):
    """Apply + record wall-clock under ``inter_modification.<source>_s``."""
    return bench_timer(
        "inter_modification",
        f"{candidate_source}_s",
        lambda: _apply_inter(dataset, perturbation, candidate_source),
    )


def test_bench_inter_restart_scan(
    benchmark, bench_timer, engine_fleet, tf_perturbation
):
    """Baseline: the seed restart-scan candidate search."""
    _, report = benchmark(
        lambda: _timed_inter(
            bench_timer, engine_fleet.dataset, tf_perturbation, "restart"
        )
    )
    assert report.insertions > 0


def test_bench_inter_incremental(
    benchmark, bench_timer, engine_fleet, tf_perturbation
):
    """PR 1's engine path: lazy iter_nearest consumption."""
    _, report = benchmark(
        lambda: _timed_inter(
            bench_timer, engine_fleet.dataset, tf_perturbation, "incremental"
        )
    )
    assert report.insertions > 0


def test_bench_inter_wave(
    benchmark, bench_timer, engine_fleet, tf_perturbation
):
    """The wave planner/executor path (PR 4's global stage)."""
    _, report = benchmark(
        lambda: _timed_inter(
            bench_timer, engine_fleet.dataset, tf_perturbation, "wave"
        )
    )
    assert report.insertions > 0


def test_wave_output_identical_to_incremental(engine_fleet, tf_perturbation):
    """Not a bench: the wave path must be byte-identical to the serial
    reference on the bench workload itself."""
    wave_out, wave_report = _apply_inter(
        engine_fleet.dataset, tf_perturbation, "wave"
    )
    serial_out, serial_report = _apply_inter(
        engine_fleet.dataset, tf_perturbation, "incremental"
    )
    for a, b in zip(wave_out, serial_out, strict=True):
        assert [(p.coord, p.t) for p in a] == [(p.coord, p.t) for p in b]
    assert wave_report.utility_loss == serial_report.utility_loss
    assert wave_report.insertions == serial_report.insertions
    assert wave_report.deletions == serial_report.deletions
    assert wave_report.unrealised == serial_report.unrealised


def test_inter_modes_cost_equivalent(engine_fleet, tf_perturbation):
    """Not a bench: the two modes must realise the same TF at (near)
    the same total cost — the speedup is free.

    Per-location selections are cost-identical; over a whole run,
    exact-distance ties at the restart path's k boundary may resolve to
    a different equally-cheap owner and compound into a sub-percent
    utility difference, hence the loose tolerance.
    """
    restart_out, restart = _apply_inter(
        engine_fleet.dataset, tf_perturbation, "restart"
    )
    incremental_out, incremental = _apply_inter(
        engine_fleet.dataset, tf_perturbation, "incremental"
    )
    assert incremental.insertions == restart.insertions
    assert incremental.deletions == restart.deletions
    assert incremental.unrealised == restart.unrealised
    assert (
        incremental_out.trajectory_frequencies()
        == restart_out.trajectory_frequencies()
    )
    assert incremental.utility_loss == pytest.approx(
        restart.utility_loss, rel=1e-2
    )


def test_bench_local_stage_serial(benchmark, bench_timer, engine_fleet):
    benchmark.pedantic(
        lambda: bench_timer(
            "local_stage",
            "serial_s",
            lambda: PureL(
                epsilon=0.5, signature_size=SIGNATURE_SIZE, seed=7
            ).anonymize(engine_fleet.dataset),
        ),
        rounds=1,
        iterations=1,
    )


def test_bench_local_stage_batch(benchmark, bench_timer, engine_fleet):
    """Sharded local stage via the process pool (falls back to serial
    where pools are unavailable; output is identical either way)."""
    benchmark.pedantic(
        lambda: bench_timer(
            "local_stage",
            "batch_s",
            lambda: BatchAnonymizer(
                PureL(epsilon=0.5, signature_size=SIGNATURE_SIZE, seed=7),
                workers=0,
            ).anonymize(engine_fleet.dataset),
        ),
        rounds=1,
        iterations=1,
    )


def _bench_chunk_size():
    return max(1, N_OBJECTS // 4)


def test_bench_publish_per_chunk(benchmark, bench_timer, engine_fleet):
    """Baseline: k independent per-chunk releases (anonymize_stream)."""

    def run_stream():
        with BatchAnonymizer(
            GL(epsilon=1.0, signature_size=SIGNATURE_SIZE, seed=7), workers=1
        ) as engine:
            return sum(
                len(result)
                for result, _ in engine.anonymize_stream(
                    chunked(iter(engine_fleet.dataset), _bench_chunk_size())
                )
            )

    published = benchmark.pedantic(
        lambda: bench_timer("stream_publisher", "per_chunk_s", run_stream),
        rounds=1,
        iterations=1,
    )
    assert published == N_OBJECTS


def test_bench_publish_shared_tf(
    benchmark, bench_records, bench_timer, engine_fleet
):
    """The two-pass whole-dataset publisher on the same chunking."""
    bench_records.setdefault("stream_publisher", {})["chunks"] = -(
        -N_OBJECTS // _bench_chunk_size()
    )

    def run_publish():
        with StreamPublisher(
            GL(epsilon=1.0, signature_size=SIGNATURE_SIZE, seed=7)
        ) as publisher:
            return publisher.publish(
                lambda: chunked(iter(engine_fleet.dataset), _bench_chunk_size())
            )

    report = benchmark.pedantic(
        lambda: bench_timer("stream_publisher", "shared_tf_s", run_publish),
        rounds=1,
        iterations=1,
    )
    assert report.trajectories == N_OBJECTS
    assert report.epsilon_total == 1.0


def test_bench_publish_shared_tf_parallel(
    benchmark, bench_timer, engine_fleet
):
    """The pipelined spill-backed publisher with per-core workers.

    ``workers=0`` resolves to the host's core count; on a single-core
    host that falls back to the serial pipelined path, so the recorded
    time reflects the spill + balanced-apportionment pipeline itself
    rather than pool overhead that cannot pay for itself there. The
    output is byte-identical to the serial publisher either way.
    """

    def run_publish():
        with StreamPublisher(
            GL(epsilon=1.0, signature_size=SIGNATURE_SIZE, seed=7),
            workers=0,
        ) as publisher:
            return publisher.publish(
                lambda: chunked(iter(engine_fleet.dataset), _bench_chunk_size())
            )

    report = benchmark.pedantic(
        lambda: bench_timer(
            "stream_publisher", "shared_tf_parallel_s", run_publish
        ),
        rounds=1,
        iterations=1,
    )
    assert report.trajectories == N_OBJECTS
    assert report.epsilon_total == 1.0


def test_batch_output_identical_to_serial(engine_fleet):
    serial = PureL(
        epsilon=0.5, signature_size=SIGNATURE_SIZE, seed=7
    ).anonymize(engine_fleet.dataset)
    batched = BatchAnonymizer(
        PureL(epsilon=0.5, signature_size=SIGNATURE_SIZE, seed=7), workers=4
    ).anonymize(engine_fleet.dataset)
    for a, b in zip(serial, batched, strict=True):
        assert [p.coord for p in a] == [p.coord for p in b]
