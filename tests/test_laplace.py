"""Tests for the Laplace machinery and privacy accounting."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.core.laplace import (
    BudgetExceededError,
    LaplaceMechanism,
    PrivacyAccountant,
    clamp,
    laplace_noise,
    round_to_int,
)


class TestLaplaceNoise:
    def test_rejects_non_positive_scale(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            laplace_noise(rng, scale=0.0)
        with pytest.raises(ValueError):
            laplace_noise(rng, scale=-1.0)

    def test_deterministic_for_seed(self):
        a = laplace_noise(random.Random(1), mu=0.0, scale=1.0)
        b = laplace_noise(random.Random(1), mu=0.0, scale=1.0)
        assert a == b

    def test_empirical_mean_matches_mu(self):
        rng = random.Random(42)
        samples = [laplace_noise(rng, mu=5.0, scale=1.0) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(5.0, abs=0.1)

    def test_empirical_scale(self):
        """Mean absolute deviation of Lap(0, λ) equals λ."""
        rng = random.Random(42)
        scale = 2.5
        samples = [laplace_noise(rng, mu=0.0, scale=scale) for _ in range(20_000)]
        mad = sum(abs(s) for s in samples) / len(samples)
        assert mad == pytest.approx(scale, rel=0.05)

    def test_negative_mean_biases_down(self):
        rng = random.Random(7)
        samples = [laplace_noise(rng, mu=-3.0, scale=1.0) for _ in range(5_000)]
        negative = sum(1 for s in samples if s < 0)
        assert negative / len(samples) > 0.9

    @given(st.floats(-100, 100), st.floats(0.01, 50), st.integers(0, 1000))
    def test_always_finite(self, mu, scale, seed):
        value = laplace_noise(random.Random(seed), mu=mu, scale=scale)
        assert math.isfinite(value)


class TestRounding:
    def test_round_half_away_from_zero(self):
        assert round_to_int(0.5) == 1
        assert round_to_int(-0.5) == -1
        assert round_to_int(2.4) == 2
        assert round_to_int(-2.6) == -3

    def test_clamp(self):
        assert clamp(5, 0, 10) == 5
        assert clamp(-3, 0, 10) == 0
        assert clamp(42, 0, 10) == 10

    def test_clamp_invalid_range(self):
        with pytest.raises(ValueError):
            clamp(1, 5, 2)


class TestLaplaceMechanism:
    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(0.0)
        with pytest.raises(ValueError):
            LaplaceMechanism(-1.0)

    def test_invalid_sensitivity(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(1.0, sensitivity=0.0)

    def test_scale(self):
        assert LaplaceMechanism(0.5, sensitivity=1.0).scale == 2.0
        assert LaplaceMechanism(2.0, sensitivity=4.0).scale == 2.0

    def test_perturb_count_bounds(self):
        mech = LaplaceMechanism(0.1)  # large noise
        rng = random.Random(3)
        for _ in range(500):
            noisy = mech.perturb_count(5, rng, lower=0, upper=10)
            assert 0 <= noisy <= 10
            assert isinstance(noisy, int)

    def test_perturb_count_unbounded_above(self):
        mech = LaplaceMechanism(0.05)
        rng = random.Random(3)
        values = [mech.perturb_count(5, rng, lower=0, upper=None) for _ in range(500)]
        assert all(v >= 0 for v in values)
        assert max(values) > 10  # some large positive noise survives

    def test_negative_mu_reduces_counts(self):
        mech = LaplaceMechanism(1.0)
        rng = random.Random(5)
        reduced = [
            mech.perturb_count(10, rng, mu=-10.0, lower=0) for _ in range(1000)
        ]
        assert sum(reduced) / len(reduced) < 3.0

    def test_epsilon_ratio_empirical(self):
        """Empirical DP check: P[M(x)=z] <= e^eps * P[M(x')=z].

        Uses two adjacent counts (5 and 6) and compares output
        histograms over many samples; every bucket with enough mass
        must respect the e^eps bound within sampling error.
        """
        epsilon = 1.0
        mech = LaplaceMechanism(epsilon)
        rng = random.Random(11)
        n = 60_000
        hist_x: dict[int, int] = {}
        hist_y: dict[int, int] = {}
        for _ in range(n):
            zx = mech.perturb_count(5, rng, lower=0, upper=20)
            zy = mech.perturb_count(6, rng, lower=0, upper=20)
            hist_x[zx] = hist_x.get(zx, 0) + 1
            hist_y[zy] = hist_y.get(zy, 0) + 1
        bound = math.exp(epsilon)
        for z in set(hist_x) | set(hist_y):
            px = hist_x.get(z, 0) / n
            py = hist_y.get(z, 0) / n
            if min(px, py) < 0.01:  # skip low-mass buckets (sampling noise)
                continue
            assert px <= bound * py * 1.15
            assert py <= bound * px * 1.15


class TestPrivacyAccountant:
    def test_requires_positive_budget(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(0.0)

    def test_tracks_spend(self):
        acc = PrivacyAccountant(1.0)
        acc.spend("global", 0.5)
        assert acc.spent == 0.5
        assert acc.remaining == 0.5
        acc.spend("local", 0.5)
        assert acc.remaining == pytest.approx(0.0)

    def test_rejects_overspend(self):
        acc = PrivacyAccountant(1.0)
        acc.spend("global", 0.8)
        with pytest.raises(BudgetExceededError):
            acc.spend("local", 0.3)

    def test_rejects_non_positive_spend(self):
        acc = PrivacyAccountant(1.0)
        with pytest.raises(ValueError):
            acc.spend("noop", 0.0)

    def test_ledger(self):
        acc = PrivacyAccountant(2.0)
        acc.spend("a", 1.0)
        acc.spend("b", 0.5)
        assert acc.ledger() == [("a", 1.0), ("b", 0.5)]
