#!/usr/bin/env python
"""Index playground: the hierarchical grid and its search strategies.

Walks through the machinery behind Figure 5: builds the three index
backends over the same fleet, runs identical kNN workloads, and shows
wall-clock plus pruning-work numbers per strategy, ending with the
best-fit cell anatomy of one trajectory.

Run with::

    python examples/index_playground.py
"""

import time

from repro import FleetConfig, generate_fleet
from repro.core.signature import SignatureExtractor
from repro.index.hierarchical import HierarchicalGridIndex
from repro.index.linear import LinearSegmentIndex
from repro.index.uniform import UniformGridIndex


def main() -> None:
    fleet = generate_fleet(
        FleetConfig(n_objects=60, points_per_trajectory=200, rows=20, cols=20, seed=13)
    )
    dataset = fleet.dataset
    bbox = dataset.bbox().expand(10.0)

    print("== building indexes over", dataset.total_points(), "points ==")
    linear = LinearSegmentIndex()
    uniform = UniformGridIndex(bbox, granularity=512, assignment="midpoint")
    hierarchical = HierarchicalGridIndex(bbox, levels=10)
    for trajectory in dataset:
        for _, a, b in trajectory.segments():
            linear.insert(a.coord, b.coord)
            uniform.insert(a.coord, b.coord)
            hierarchical.insert(a.coord, b.coord)
    print(f"segments: {len(linear)}  "
          f"hierarchical cells materialised: {hierarchical.cell_count()}")

    # The realistic query workload: the modification step searches for
    # the dataset's signature locations.
    queries = sorted(
        SignatureExtractor(m=5).extract(dataset).candidate_set
    )[:150]
    print(f"query workload: {len(queries)} signature locations, k=8\n")

    def bench(label, search, work=None):
        started = time.perf_counter()
        for q in queries:
            search(q)
        elapsed = time.perf_counter() - started
        extra = f"  work={work():,} distances" if work else ""
        print(f"  {label:<22s} {elapsed * 1000:8.1f} ms{extra}")

    print("== kNN search comparison ==")
    bench("linear scan", lambda q: linear.knn(q, 8),
          lambda: len(linear) * len(queries))
    bench("uniform grid (paper)", lambda q: uniform.knn(q, 8))
    for label, strategy in (
        ("HG top-down", "top_down"),
        ("HG bottom-up", "bottom_up"),
        ("HG bottom-up-down", "bottom_up_down"),
    ):
        checked = [0]

        def search(q, _s=strategy, _c=checked):
            hierarchical.knn(q, 8, strategy=_s)
            _c[0] += hierarchical.last_stats.segments_checked

        bench(label, search, lambda _c=checked: _c[0])

    print("\n== best-fit anatomy of one trajectory ==")
    trajectory = dataset[0]
    by_level = {}
    for _, a, b in trajectory.segments():
        level, _, _ = hierarchical.best_fit_cell(a.coord, b.coord)
        by_level[level] = by_level.get(level, 0) + 1
    for level in sorted(by_level):
        side = 2**level
        cell = bbox.width / side
        print(f"  level {level:>2d} ({side:>3d}x{side:<3d} grid, "
              f"~{cell:6.0f} m cells): {by_level[level]:4d} segments")
    print("\nShort segments (dwells) sink to fine levels; road-length")
    print("segments sit where the cell size matches their extent —")
    print("the structure Definition 11's best-fit rule creates.")


if __name__ == "__main__":
    main()
