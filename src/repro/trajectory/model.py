"""Core data model: points, trajectories, and trajectory datasets.

Following the paper (Definition 4), a *trajectory* is a chronologically
ordered sequence of spatial points and each moving object contributes a
single trajectory covering its entire history. A *dataset* is therefore
both a collection of trajectories and a collection of objects, and two
datasets are adjacent (for differential privacy) when they differ in at
most one trajectory.

Frequency semantics
-------------------

The paper's mechanisms count how often *locations* occur, so point
identity matters: two samples at the same place must compare equal. We
therefore distinguish

* the :class:`Point` — one GPS sample ``(x, y, t)``; and
* its :data:`LocationKey` — the spatial coordinate quantized to a
  configurable resolution (default 1 m), which is the unit of frequency
  counting (PF/TF), signature extraction, and trajectory editing.

The synthetic T-Drive generator emits samples snapped to road-network
vertices, so repeated visits produce identical keys naturally; noisy
real-world data should be quantized first (see
:meth:`TrajectoryDataset.quantized`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.geo.geometry import BBox, Coord, diameter, path_length, point_distance

#: Spatial identity of a point: its coordinates rounded to the location
#: resolution. All frequency distributions (PF/TF) are keyed by this.
LocationKey = tuple[float, float]

#: Resolution, in metres, at which coordinates are rounded into location
#: keys. One metre collapses floating-point jitter without merging
#: distinct places.
LOCATION_RESOLUTION = 1.0


def location_key(x: float, y: float, resolution: float = LOCATION_RESOLUTION) -> LocationKey:
    """Quantize a coordinate pair into a :data:`LocationKey`."""
    return (round(x / resolution) * resolution, round(y / resolution) * resolution)


@dataclass(frozen=True, slots=True)
class Point:
    """A single trajectory sample: planar position plus timestamp.

    ``t`` is seconds since the dataset epoch; it is carried through
    anonymization so temporal linkage attacks can be evaluated, but the
    paper's mechanisms only perturb the spatial dimension.
    """

    x: float
    y: float
    t: float = 0.0

    @property
    def coord(self) -> Coord:
        return (self.x, self.y)

    @property
    def loc(self) -> LocationKey:
        """The quantized spatial identity used for frequency counting."""
        return location_key(self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        return point_distance(self.coord, other.coord)

    def moved_to(self, x: float, y: float) -> "Point":
        """A copy of this point at a new position (same timestamp)."""
        return Point(x, y, self.t)


class Trajectory:
    """An ordered sequence of :class:`Point` belonging to one object.

    The class supports the edit operations the paper's modification step
    needs — inserting a location into a chosen segment and deleting an
    occurrence — while keeping timestamps plausibly interpolated.
    """

    __slots__ = ("object_id", "points")

    def __init__(self, object_id: str, points: Iterable[Point] = ()) -> None:
        self.object_id = object_id
        self.points: list[Point] = list(points)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)

    def __getitem__(self, index: int) -> Point:
        return self.points[index]

    def __repr__(self) -> str:
        return f"Trajectory({self.object_id!r}, {len(self.points)} points)"

    # -- derived views -------------------------------------------------------

    def coords(self) -> list[Coord]:
        return [p.coord for p in self.points]

    def locations(self) -> list[LocationKey]:
        return [p.loc for p in self.points]

    def point_frequencies(self) -> Counter:
        """PF distribution: occurrences of each location in this trajectory."""
        return Counter(p.loc for p in self.points)

    def distinct_locations(self) -> set[LocationKey]:
        return {p.loc for p in self.points}

    def segments(self) -> Iterator[tuple[int, Point, Point]]:
        """Yield ``(index, start, end)`` for each consecutive segment.

        ``index`` is the position of ``start`` within the trajectory.
        """
        for i in range(len(self.points) - 1):
            yield i, self.points[i], self.points[i + 1]

    def occurrences(self, loc: LocationKey) -> list[int]:
        """Indices at which ``loc`` occurs."""
        return [i for i, p in enumerate(self.points) if p.loc == loc]

    def bbox(self) -> BBox:
        return BBox.from_points(self.coords())

    def length(self) -> float:
        """Total travelled path length in metres."""
        return path_length(self.coords())

    def diameter(self) -> float:
        """Maximum pairwise distance between samples (used by the DE metric)."""
        return diameter(self.coords())

    def duration(self) -> float:
        """Elapsed time between first and last sample."""
        if len(self.points) < 2:
            return 0.0
        return self.points[-1].t - self.points[0].t

    # -- edit operations -----------------------------------------------------

    def insert_location(self, loc: LocationKey, segment_index: int) -> None:
        """Insert a new occurrence of ``loc`` after ``segment_index``.

        This realises the paper's OP_i: the point is spliced between the
        two endpoints of the chosen segment, with a timestamp midway
        between them so the trajectory stays chronologically ordered.
        """
        if not 0 <= segment_index < max(len(self.points) - 1, 1):
            raise IndexError(
                f"segment index {segment_index} out of range for "
                f"{len(self.points)}-point trajectory"
            )
        if len(self.points) < 2:
            # A 0/1-point trajectory has no segment; append instead.
            t = self.points[0].t if self.points else 0.0
            self.points.append(Point(loc[0], loc[1], t))
            return
        before = self.points[segment_index]
        after = self.points[segment_index + 1]
        t = (before.t + after.t) / 2.0
        self.points.insert(segment_index + 1, Point(loc[0], loc[1], t))

    def delete_at(self, index: int) -> Point:
        """Delete and return the point at ``index`` (the paper's OP_d)."""
        return self.points.pop(index)

    def delete_all(self, loc: LocationKey) -> int:
        """Remove every occurrence of ``loc``; returns how many were removed."""
        original = len(self.points)
        self.points = [p for p in self.points if p.loc != loc]
        return original - len(self.points)

    def copy(self) -> "Trajectory":
        return Trajectory(self.object_id, self.points)


class TrajectoryDataset:
    """A collection of trajectories, one per moving object.

    Provides the dataset-level frequency views the global mechanism
    needs, plus convenience statistics used across metrics and the
    experiment harness.
    """

    def __init__(self, trajectories: Iterable[Trajectory] = ()) -> None:
        self.trajectories: list[Trajectory] = list(trajectories)
        ids = [t.object_id for t in self.trajectories]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate object ids in dataset")

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.trajectories)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self.trajectories)

    def __getitem__(self, index: int) -> Trajectory:
        return self.trajectories[index]

    def __repr__(self) -> str:
        return f"TrajectoryDataset({len(self.trajectories)} trajectories)"

    def by_id(self, object_id: str) -> Trajectory:
        for trajectory in self.trajectories:
            if trajectory.object_id == object_id:
                return trajectory
        raise KeyError(object_id)

    # -- frequency views ------------------------------------------------------

    def trajectory_frequencies(self) -> Counter:
        """TF distribution: how many trajectories pass through each location."""
        counts: Counter = Counter()
        for trajectory in self.trajectories:
            counts.update(trajectory.distinct_locations())
        return counts

    def total_points(self) -> int:
        return sum(len(t) for t in self.trajectories)

    def bbox(self) -> BBox:
        boxes = [t.bbox() for t in self.trajectories if len(t) > 0]
        if not boxes:
            raise ValueError("dataset has no points")
        return BBox(
            min(b.min_x for b in boxes),
            min(b.min_y for b in boxes),
            max(b.max_x for b in boxes),
            max(b.max_y for b in boxes),
        )

    # -- transformations -------------------------------------------------------

    def copy(self) -> "TrajectoryDataset":
        return TrajectoryDataset(t.copy() for t in self.trajectories)

    def map_trajectories(
        self, transform: Callable[[Trajectory], Trajectory]
    ) -> "TrajectoryDataset":
        """A new dataset with ``transform`` applied to every trajectory."""
        return TrajectoryDataset(transform(t) for t in self.trajectories)

    def subset(self, n: int) -> "TrajectoryDataset":
        """The first ``n`` trajectories (cheap copy, shared points)."""
        return TrajectoryDataset(t.copy() for t in self.trajectories[:n])

    def filter_bbox(self, bbox: "BBox") -> "TrajectoryDataset":
        """Keep only the samples falling inside ``bbox``.

        Trajectories left with no samples are dropped entirely.
        """
        filtered = []
        for trajectory in self.trajectories:
            points = [p for p in trajectory if bbox.contains(p.coord)]
            if points:
                filtered.append(Trajectory(trajectory.object_id, points))
        return TrajectoryDataset(filtered)

    def time_slice(self, start: float, end: float) -> "TrajectoryDataset":
        """Keep only the samples with ``start <= t < end``.

        Trajectories left with no samples are dropped entirely.
        """
        if start >= end:
            raise ValueError("start must precede end")
        sliced = []
        for trajectory in self.trajectories:
            points = [p for p in trajectory if start <= p.t < end]
            if points:
                sliced.append(Trajectory(trajectory.object_id, points))
        return TrajectoryDataset(sliced)

    def merge(self, other: "TrajectoryDataset") -> "TrajectoryDataset":
        """Union of two datasets (object ids must not collide)."""
        return TrajectoryDataset(
            [t.copy() for t in self.trajectories]
            + [t.copy() for t in other.trajectories]
        )

    def quantized(self, cell_size: float) -> "TrajectoryDataset":
        """Snap every coordinate to a ``cell_size``-metre lattice.

        Useful as a preprocessing step for noisy GPS data so that repeat
        visits collapse onto identical location keys.
        """

        def snap(trajectory: Trajectory) -> Trajectory:
            points = [
                Point(
                    round(p.x / cell_size) * cell_size,
                    round(p.y / cell_size) * cell_size,
                    p.t,
                )
                for p in trajectory.points
            ]
            return Trajectory(trajectory.object_id, points)

        return self.map_trajectories(snap)

    # -- statistics --------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Headline statistics mirroring the paper's dataset description."""
        lengths = [len(t) for t in self.trajectories]
        spacings: list[float] = []
        for trajectory in self.trajectories:
            pts = trajectory.points
            spacings.extend(
                pts[i].distance_to(pts[i + 1]) for i in range(len(pts) - 1)
            )
        return {
            "trajectories": float(len(self.trajectories)),
            "total_points": float(sum(lengths)),
            "avg_points_per_trajectory": (
                sum(lengths) / len(lengths) if lengths else 0.0
            ),
            "avg_point_spacing_m": (
                sum(spacings) / len(spacings) if spacings else 0.0
            ),
        }
