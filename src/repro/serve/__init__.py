"""Anonymization as a service: a long-lived daemon over the engine.

The ROADMAP north star is serving DP trajectory releases to many
tenants; this package is that serving layer. It splits into a sync
HTTP API (:mod:`repro.serve.daemon`), a background job runner over
the engine pool (:mod:`repro.serve.jobs`), a process-wide warm engine
cache (:mod:`repro.serve.engines`), and the subsystem the others
exist to protect: per-tenant epsilon budget accounts
(:mod:`repro.serve.budget`), where every job's privacy spend is
reserved before execution, committed from its
:class:`~repro.core.accounting.CompositionLedger` on success, and
released on failure — durably, and safe against concurrent requests.

Quick start::

    from repro.serve import Daemon, ServeConfig

    config = ServeConfig(port=0, tenants=(("acme", 4.0),))
    with Daemon(config) as daemon:
        host, port = daemon.address
        ...  # POST /v1/jobs, GET /v1/jobs/<id>, stream the result

or from the command line: ``repro serve --tenant acme=4.0``.
"""

from repro.serve.budget import (
    AccountError,
    BudgetExceededError,
    BudgetStore,
    TenantAccount,
    UnknownTenantError,
)
from repro.serve.daemon import Daemon, ServeConfig
from repro.serve.engines import EngineCache
from repro.serve.jobs import JOB_STATES, Job, JobRunner

__all__ = [
    "AccountError",
    "BudgetExceededError",
    "BudgetStore",
    "Daemon",
    "EngineCache",
    "JOB_STATES",
    "Job",
    "JobRunner",
    "ServeConfig",
    "TenantAccount",
    "UnknownTenantError",
]
