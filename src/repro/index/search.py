"""Search utilities shared across indexes, plus the linear-scan baseline."""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.geo.geometry import Coord
from repro.index.base import IndexedSegment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.index.base import SegmentIndex


class KnnCandidates:
    """A bounded max-heap of the best ``k`` (distance, sid) candidates.

    Maintains the running pruning threshold θ_K — the distance of the
    current K-th best candidate (``+inf`` until ``k`` candidates exist),
    exactly as Algorithm 3 uses it.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        # Stored as (-distance, sid) so heap[0] is the worst retained.
        self._heap: list[tuple[float, int]] = []

    @property
    def threshold(self) -> float:
        """θ_K: the K-th smallest distance seen so far, or +inf."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.k

    def offer(self, sid: int, distance: float) -> bool:
        """Consider a candidate; returns True when it was retained."""
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-distance, sid))
            return True
        if distance < self.threshold:
            heapq.heapreplace(self._heap, (-distance, sid))
            return True
        return False

    def results(self) -> list[tuple[int, float]]:
        """Candidates sorted by ascending distance (ties by sid)."""
        ordered = sorted(((-d, sid) for d, sid in self._heap), key=lambda x: (x[0], x[1]))
        return [(sid, dist) for dist, sid in ordered]

    def __len__(self) -> int:
        return len(self._heap)


def iter_nearest_via_knn(
    index: "SegmentIndex", q: Coord, start_k: int = 16, growth: int = 4
) -> Iterator[tuple[int, float]]:
    """Incremental nearest-segment iteration for knn-only indexes.

    Fallback implementation of ``SegmentIndex.iter_nearest`` built on
    repeated :meth:`knn` calls with a geometrically growing ``k``.
    Already-yielded prefixes are skipped, so consumers still see each
    segment exactly once in ascending distance order, but the restarts
    make this strictly worse than a native resumable frontier — it
    exists so third-party backends satisfy the protocol cheaply.
    """
    if start_k < 1:
        raise ValueError("start_k must be positive")
    if growth < 2:
        raise ValueError("growth must be at least 2")
    k = start_k
    # Dedup by sid rather than skipping a prefix: when distance ties
    # span the k boundary, knn(k) and knn(k * growth) may retain
    # *different* tied candidates at the cut, so consecutive result
    # lists are not guaranteed to extend each other element-wise.
    # Anything strictly closer than the k-th distance is always
    # retained, so unseen hits never sort before already-yielded ones.
    seen: set[int] = set()
    while True:
        hits = index.knn(q, k)
        for sid, dist in hits:
            if sid not in seen:
                seen.add(sid)
                yield sid, dist
        if len(hits) < k or len(seen) >= len(index):
            return
        k *= growth


def knn_batch_via_knn(
    index: "SegmentIndex", qs: Sequence[Coord], k: int
) -> list[list[tuple[int, float]]]:
    """Fallback ``knn_batch``: answer each query with a plain ``knn``.

    Backends without cross-query structure sharing (linear scan,
    R-tree) satisfy the batched protocol with this; grid indexes
    override it natively to reuse per-cell segment batches.
    """
    return [index.knn(q, k) for q in qs]


def iter_nearest_batch_via_single(
    index: "SegmentIndex", qs: Sequence[Coord]
) -> list[Iterator[tuple[int, float]]]:
    """Fallback ``iter_nearest_batch``: one ``iter_nearest`` per query.

    The iterators are independent but walk the same index snapshot;
    whatever per-structure caching the backend does is still shared.
    """
    return [index.iter_nearest(q) for q in qs]


def linear_knn(
    segments: Iterable[IndexedSegment], q: Coord, k: int
) -> list[tuple[int, float]]:
    """Brute-force K-nearest segment search (the paper's *Linear* baseline)."""
    candidates = KnnCandidates(k)
    for segment in segments:
        candidates.offer(segment.sid, segment.distance_to(q))
    return candidates.results()
