"""Smoke tests for the experiment harness (table2, fig4, fig5)."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.evaluate import METRIC_COLUMNS, evaluate_method
from repro.experiments.fig4 import PANELS, format_series, run as run_fig4
from repro.experiments.fig5 import (
    SEARCH_METHODS,
    format_timings,
    run as run_fig5,
)
from repro.experiments.methods import (
    build_methods,
    build_our_models,
)
from repro.experiments.table2 import format_table, run as run_table2
from repro.datagen.generator import generate_fleet


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig.smoke()


@pytest.fixture(scope="module")
def fleet(config):
    return generate_fleet(config.fleet)


class TestConfig:
    def test_presets_exist(self):
        for preset in (ExperimentConfig.smoke, ExperimentConfig.default, ExperimentConfig.large):
            config = preset()
            assert config.fleet.n_objects > 0
            assert config.epsilon > 0

    def test_with_epsilon(self, config):
        swept = config.with_epsilon(3.0)
        assert swept.epsilon == 3.0
        assert config.epsilon == 1.0  # original untouched

    def test_with_objects(self, config):
        grown = config.with_objects(55)
        assert grown.fleet.n_objects == 55
        assert config.fleet.n_objects != 55 or True


class TestMethodRegistry:
    def test_all_table2_methods_present(self, config):
        methods = build_methods(config)
        for label in ("SC", "W4M", "GLOVE", "KLT", "DPT", "AdaTrace",
                      "PureG", "PureL", "GL"):
            assert label in methods
        assert sum(1 for name in methods if name.startswith("RSC-")) == len(
            config.rsc_radii
        )

    def test_our_models(self, config):
        assert set(build_our_models(config)) == {"PureG", "PureL", "GL"}

    def test_methods_produce_datasets(self, config, fleet):
        methods = build_methods(config)
        for label in ("SC", "PureL"):
            result = methods[label](fleet.dataset)
            assert len(result) == len(fleet.dataset)


class TestEvaluate:
    def test_all_columns_present(self, config, fleet):
        evaluation = evaluate_method(
            fleet.dataset, fleet.dataset, fleet, config, synthetic=False
        )
        assert set(evaluation.values) == set(METRIC_COLUMNS)

    def test_identity_dataset_scores(self, config, fleet):
        """Evaluating the unmodified dataset sets the attack baselines."""
        evaluation = evaluate_method(
            fleet.dataset, fleet.dataset, fleet, config, synthetic=False
        )
        assert evaluation.values["LAs"] > 0.9  # raw data fully linkable
        assert evaluation.values["INF"] == pytest.approx(0.0)
        assert evaluation.values["FFP"] == pytest.approx(1.0)
        assert evaluation.values["MI"] == pytest.approx(1.0)

    def test_path_inference_recovery_variant(self, config, fleet):
        from dataclasses import replace

        path_config = replace(config, recovery_attack="path")
        evaluation = evaluate_method(
            fleet.dataset, fleet.dataset, fleet, path_config, synthetic=False
        )
        # Raw data must still be highly recoverable via greedy inference.
        assert evaluation.values["Recall"] > 0.4
        assert evaluation.values["Precision"] > 0.4

    def test_synthetic_skips_inapplicable(self, config, fleet):
        evaluation = evaluate_method(
            fleet.dataset, fleet.dataset, fleet, config, synthetic=True
        )
        assert evaluation.values["LAt"] is None
        assert evaluation.values["Precision"] is None

    def test_row_rendering(self, config, fleet):
        evaluation = evaluate_method(
            fleet.dataset, fleet.dataset, fleet, config, synthetic=True
        )
        row = evaluation.row()
        assert len(row) == len(METRIC_COLUMNS)
        assert "-" in row


class TestTable2:
    def test_run_subset(self, config):
        results = run_table2(config, methods=["SC", "GL"])
        assert set(results) == {"SC", "GL"}
        for values in results.values():
            assert values["LAs"] is not None
            assert values["INF"] is not None

    def test_unknown_method_rejected(self, config):
        with pytest.raises(ValueError):
            run_table2(config, methods=["Quantum"])

    def test_format_table(self, config):
        results = run_table2(config, methods=["SC"])
        text = format_table(results)
        assert "SC" in text
        assert "LAs" in text


class TestFig4:
    def test_run_produces_series(self, config):
        series = run_fig4(config, epsilons=(0.5, 5.0))
        assert set(series) == set(PANELS)
        for models in series.values():
            for values in models.values():
                assert len(values) == 2

    def test_formatting(self, config):
        series = run_fig4(config, epsilons=(0.5, 5.0))
        text = format_series(series, (0.5, 5.0))
        assert "[LAs vs eps]" in text
        assert "GL" in text


class TestFig5:
    def test_run_structure(self, config):
        results = run_fig5(config, sizes=(8, 16))
        assert set(results["search"]) == set(SEARCH_METHODS)
        for series in results["search"].values():
            assert len(series) == 2
            assert all(v >= 0 for v in series)
        assert set(results["modification"]) == {"Local", "Global"}

    def test_linear_slowest(self, config):
        """The headline of Figure 5: indexes beat the linear scan."""
        results = run_fig5(config, sizes=(16,))
        linear = results["search"]["Linear"][0]
        hg_plus = results["search"]["HG+"][0]
        assert hg_plus < linear

    def test_formatting(self, config):
        results = run_fig5(config, sizes=(8,))
        text = format_timings(results, (8,))
        assert "Linear" in text
        assert "G-share" in text
