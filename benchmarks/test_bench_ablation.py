"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Stage-2 compensation on/off — cardinality preservation vs pure
   signature dilution;
2. GL budget split — 50/50 (the paper) vs skewed splits;
3. index backend — the modification pipeline over linear / uniform /
   hierarchical backends (the practical version of Figure 5's claim).
"""

import random

import pytest

from repro.core.local_mechanism import LocalPFMechanism
from repro.core.modification import IntraTrajectoryModifier, make_index_factory
from repro.core.pipeline import FrequencyAnonymizer
from repro.core.signature import SignatureExtractor


class _Stage1OnlyMechanism(LocalPFMechanism):
    """Local mechanism without Stage 2 (ablation of Algorithm 2)."""

    def perturb_trajectory(self, trajectory, signature_index, rng):
        result = super().perturb_trajectory(trajectory, signature_index, rng)
        stage1_locs = [
            e.loc for e in signature_index.signatures[trajectory.object_id]
        ][: self.m]
        keep = set(stage1_locs) & set(result.original)
        return type(result)(
            object_id=result.object_id,
            original={k: result.original[k] for k in keep},
            perturbed={k: result.perturbed[k] for k in keep},
            stage1_mean_noise=result.stage1_mean_noise,
            epsilon=result.epsilon,
        )


def _run_local(fleet, mechanism_cls, config):
    extractor = SignatureExtractor(m=config.signature_size)
    index = extractor.extract(fleet.dataset)
    mechanism = mechanism_cls(epsilon=0.5, m=config.signature_size)
    modifier = IntraTrajectoryModifier(make_index_factory("hierarchical", levels=8))
    rng = random.Random(0)
    total_points = 0
    for trajectory in fleet.dataset:
        perturbation = mechanism.perturb_trajectory(trajectory, index, rng)
        modified, _ = modifier.apply(trajectory, perturbation)
        total_points += len(modified)
    return total_points


class TestStage2Ablation:
    def test_bench_with_stage2(self, benchmark, bench_timer, config, fleet):
        points = benchmark.pedantic(
            lambda: bench_timer(
                "ablation",
                "stage2_on_s",
                lambda: _run_local(fleet, LocalPFMechanism, config),
            ),
            rounds=2,
            iterations=1,
        )
        assert points > 0

    def test_bench_without_stage2(self, benchmark, bench_timer, config, fleet):
        points = benchmark.pedantic(
            lambda: bench_timer(
                "ablation",
                "stage2_off_s",
                lambda: _run_local(fleet, _Stage1OnlyMechanism, config),
            ),
            rounds=2,
            iterations=1,
        )
        assert points > 0

    def test_bench_stage2_cardinality_property(self, benchmark, config, fleet):
        """The paper's argument for Stage 2: without it the dataset
        shrinks; with it the cardinality stays close to the input."""

        def run_both():
            with_stage2 = _run_local(fleet, LocalPFMechanism, config)
            without_stage2 = _run_local(fleet, _Stage1OnlyMechanism, config)
            return with_stage2, without_stage2

        with_stage2, without_stage2 = benchmark.pedantic(
            run_both, rounds=1, iterations=1
        )
        original = fleet.dataset.total_points()
        assert abs(with_stage2 - original) < abs(without_stage2 - original)


@pytest.mark.parametrize("split", (0.25, 0.5, 0.75))
def test_bench_budget_split(benchmark, config, fleet, split):
    """GL with different eps_G : eps_L allocations (paper: 50/50)."""
    anonymizer = FrequencyAnonymizer(
        epsilon_global=config.epsilon * split,
        epsilon_local=config.epsilon * (1.0 - split),
        signature_size=config.signature_size,
        seed=config.seed,
    )
    result = benchmark.pedantic(
        lambda: anonymizer.anonymize(fleet.dataset), rounds=2, iterations=1
    )
    assert len(result) == len(fleet.dataset)


@pytest.mark.parametrize("selection", ("index", "bbox"))
def test_bench_trajectory_selection(benchmark, config, fleet, selection):
    """TF-increase trajectory selection: shared-index scan vs the
    paper's future-work bounding-box pruning."""
    from repro.core.pipeline import PureG

    anonymizer = PureG(
        epsilon=0.5,
        signature_size=config.signature_size,
        trajectory_selection=selection,
        seed=config.seed,
    )
    result = benchmark.pedantic(
        lambda: anonymizer.anonymize(fleet.dataset), rounds=2, iterations=1
    )
    assert len(result) == len(fleet.dataset)


@pytest.mark.parametrize("backend", ("linear", "uniform", "hierarchical", "rtree"))
def test_bench_pipeline_backend(benchmark, config, fleet, backend):
    """Full GL pipeline per index backend — Figure 5 in practice."""
    anonymizer = FrequencyAnonymizer(
        epsilon_global=0.5,
        epsilon_local=0.5,
        signature_size=config.signature_size,
        index_backend=backend,
        granularity=128,
        levels=8,
        seed=config.seed,
    )
    result = benchmark.pedantic(
        lambda: anonymizer.anonymize(fleet.dataset), rounds=2, iterations=1
    )
    assert len(result) == len(fleet.dataset)
