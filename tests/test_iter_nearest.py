"""Tests for the incremental nearest-segment iterators.

Every backend's ``iter_nearest`` must enumerate the whole index in
exactly the (distance, sid) order the one-shot ``knn`` uses — the
inter-trajectory modifier's lazy consumption depends on it.
"""

import itertools
import random

import pytest

from repro.geo.geometry import BBox
from repro.index import (
    HierarchicalGridIndex,
    LinearSegmentIndex,
    RTreeIndex,
    UniformGridIndex,
    iter_nearest_via_knn,
    linear_knn,
)

BOX = BBox(0.0, 0.0, 1000.0, 1000.0)

BACKENDS = {
    "linear": lambda: LinearSegmentIndex(),
    "uniform-overlap": lambda: UniformGridIndex(BOX, granularity=32),
    "uniform-midpoint": lambda: UniformGridIndex(
        BOX, granularity=32, assignment="midpoint"
    ),
    "hierarchical": lambda: HierarchicalGridIndex(BOX, levels=6),
    "rtree": lambda: RTreeIndex(leaf_capacity=4),
}

QUERIES = [(0.0, 0.0), (500.0, 500.0), (999.0, 999.0), (250.0, 750.0)]


@pytest.fixture(params=sorted(BACKENDS), ids=sorted(BACKENDS))
def index(request):
    return BACKENDS[request.param]()


def fill(index, n=70, seed=5):
    rng = random.Random(seed)
    segments = []
    for _ in range(n):
        x = rng.uniform(0, 1000)
        y = rng.uniform(0, 1000)
        a = (x, y)
        b = (x + rng.uniform(-60, 60), y + rng.uniform(-60, 60))
        sid = index.insert(a, b, owner=f"o{rng.randrange(5)}")
        segments.append(index.segment(sid))
    return segments


class TestIterNearest:
    def test_empty_index_yields_nothing(self, index):
        assert list(index.iter_nearest((5.0, 5.0))) == []

    def test_full_enumeration_matches_linear_reference(self, index):
        segments = fill(index)
        for q in QUERIES:
            got = list(index.iter_nearest(q))
            want = linear_knn(segments, q, len(segments))
            assert [sid for sid, _ in got] == [sid for sid, _ in want], q
            for (_, d1), (_, d2) in zip(got, want, strict=True):
                assert d1 == pytest.approx(d2, abs=1e-9)

    def test_distances_nondecreasing(self, index):
        fill(index, n=50, seed=9)
        distances = [d for _, d in index.iter_nearest((400.0, 600.0))]
        assert distances == sorted(distances)

    def test_prefix_matches_knn(self, index):
        fill(index, n=60, seed=11)
        for q in QUERIES:
            prefix = list(itertools.islice(index.iter_nearest(q), 8))
            want = index.knn(q, 8)
            assert [sid for sid, _ in prefix] == [sid for sid, _ in want]

    def test_each_segment_yielded_once(self, index):
        fill(index, n=45, seed=13)
        sids = [sid for sid, _ in index.iter_nearest((100.0, 100.0))]
        assert len(sids) == 45
        assert len(set(sids)) == 45

    def test_reflects_removals(self, index):
        fill(index, n=30, seed=15)
        victims = [sid for sid, _ in index.knn((500.0, 500.0), 5)]
        for sid in victims:
            index.remove(sid)
        remaining = [sid for sid, _ in index.iter_nearest((500.0, 500.0))]
        assert len(remaining) == 25
        assert not set(victims) & set(remaining)

    def test_lazy_consumption_is_cheap_on_hierarchical(self):
        """Pulling one candidate must not enumerate the whole index."""
        index = HierarchicalGridIndex(BOX, levels=8)
        fill(index, n=200, seed=17)
        first = next(iter(index.iter_nearest((500.0, 500.0))))
        assert first is not None
        assert index.last_stats.segments_checked < 200


class TestIterNearestViaKnn:
    """The restart-doubling fallback for knn-only backends."""

    def test_matches_native_order(self):
        index = LinearSegmentIndex()
        segments = fill(index, n=40, seed=19)
        got = list(iter_nearest_via_knn(index, (300.0, 300.0), start_k=4))
        want = linear_knn(segments, (300.0, 300.0), 40)
        assert [sid for sid, _ in got] == [sid for sid, _ in want]

    def test_empty_index(self):
        assert list(iter_nearest_via_knn(LinearSegmentIndex(), (0.0, 0.0))) == []

    def test_ties_spanning_k_boundary_yield_each_segment_once(self):
        """Regression: with many equidistant segments, knn(k) and
        knn(k * growth) may retain *different* tied candidates at the
        cut, so prefix-skipping duplicated some sids and dropped
        others. Every segment must come out exactly once."""
        import math

        index = UniformGridIndex(BOX, granularity=16)
        q = (500.0, 500.0)
        n = 40
        for i in range(n):  # point-segments on a circle: all tie at 300
            x = 500.0 + 300.0 * math.cos(2 * math.pi * i / n)
            y = 500.0 + 300.0 * math.sin(2 * math.pi * i / n)
            index.insert((x, y), (x, y))
        sids = [sid for sid, _ in iter_nearest_via_knn(index, q, start_k=4)]
        assert len(sids) == n
        assert len(set(sids)) == n

    def test_rejects_bad_parameters(self):
        index = LinearSegmentIndex()
        with pytest.raises(ValueError):
            list(iter_nearest_via_knn(index, (0.0, 0.0), start_k=0))
        with pytest.raises(ValueError):
            list(iter_nearest_via_knn(index, (0.0, 0.0), growth=1))
