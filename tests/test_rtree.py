"""Tests for the STR-packed R-tree index."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.geometry import BBox
from repro.index.rtree import RTreeIndex
from repro.index.search import linear_knn

BOX = BBox(0.0, 0.0, 1000.0, 1000.0)


def random_segments(n, seed=0):
    rng = random.Random(seed)
    segments = []
    for _ in range(n):
        x = rng.uniform(0, 1000)
        y = rng.uniform(0, 1000)
        segments.append(((x, y), (x + rng.uniform(-80, 80), y + rng.uniform(-80, 80))))
    return segments


class TestConfiguration:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            RTreeIndex(leaf_capacity=1)
        with pytest.raises(ValueError):
            RTreeIndex(rebuild_fraction=0.0)


class TestStructure:
    def test_insert_remove_len(self):
        index = RTreeIndex()
        sid = index.insert((0, 0), (10, 10), "t")
        assert len(index) == 1
        assert index.segment(sid).owner == "t"
        index.remove(sid)
        assert len(index) == 0

    def test_remove_missing(self):
        with pytest.raises(KeyError):
            RTreeIndex().remove(7)

    def test_bulk_insert_triggers_packing(self):
        index = RTreeIndex(leaf_capacity=4)
        for a, b in random_segments(300, seed=1):
            index.insert(a, b)
        assert index.tree_height >= 2  # a real tree, not just a buffer

    def test_rebuild_after_mass_removal(self):
        index = RTreeIndex(leaf_capacity=4)
        sids = [index.insert(a, b) for a, b in random_segments(300, seed=2)]
        for sid in sids[:250]:
            index.remove(sid)
        assert len(index) == 50
        # Remaining segments must still be searchable.
        assert len(index.knn((500, 500), 10)) == 10


class TestKnnCorrectness:
    def test_matches_linear(self):
        index = RTreeIndex(leaf_capacity=8)
        registry = []
        for a, b in random_segments(200, seed=3):
            sid = index.insert(a, b)
            registry.append(index.segment(sid))
        for q in [(0, 0), (500, 500), (999, 1), (-100, 1200)]:
            got = [round(d, 6) for _, d in index.knn(q, 6)]
            want = [round(d, 6) for _, d in linear_knn(registry, q, 6)]
            assert got == want

    def test_knn_empty(self):
        assert RTreeIndex().knn((0, 0), 3) == []

    def test_knn_with_tombstones(self):
        index = RTreeIndex(leaf_capacity=4)
        for a, b in random_segments(100, seed=4):
            index.insert(a, b)
        # Remove the 10 nearest to the probe (some in-tree, some buffered).
        q = (500.0, 500.0)
        for sid, _ in index.knn(q, 10):
            index.remove(sid)
        remaining = [index.segment(sid) for sid, _ in index.knn(q, 1000)]
        want = linear_knn(remaining, q, 5)
        got = index.knn(q, 5)
        assert [round(d, 6) for _, d in got] == [round(d, 6) for _, d in want]

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 9999),
        n=st.integers(1, 80),
        k=st.integers(1, 6),
        qx=st.floats(-100, 1100, allow_nan=False),
        qy=st.floats(-100, 1100, allow_nan=False),
    )
    def test_property_matches_linear(self, seed, n, k, qx, qy):
        index = RTreeIndex(leaf_capacity=4)
        registry = []
        for a, b in random_segments(n, seed=seed):
            sid = index.insert(a, b)
            registry.append(index.segment(sid))
        got = [round(d, 6) for _, d in index.knn((qx, qy), k)]
        want = [round(d, 6) for _, d in linear_knn(registry, (qx, qy), k)]
        assert got == want


class TestPipelineIntegration:
    def test_rtree_backend_in_pipeline(self):
        from repro.core.pipeline import GL
        from repro.datagen.generator import FleetConfig, generate_fleet

        fleet = generate_fleet(
            FleetConfig(n_objects=6, points_per_trajectory=50, rows=8, cols=8, seed=9)
        )
        anonymizer = GL(
            epsilon=1.0, signature_size=2, index_backend="rtree", seed=3
        )
        result = anonymizer.anonymize(fleet.dataset)
        assert len(result) == len(fleet.dataset)
