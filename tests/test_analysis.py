"""Tests for the static analyzer (repro.analysis).

Every rule gets a positive fixture (a seeded violation it must catch)
and a negative fixture (idiomatic code it must not flag), driven
through :func:`analyze_source`. The CFG builder's corner cases are
pinned as exact edge sets. Suppression (including unused-noqa
warnings), the baseline ratchet, the JSON and SARIF report schemas,
and the ``repro check`` exit-code contract (0 clean / 1 findings /
2 internal error) are covered end to end.
"""

import ast
import json
import textwrap

import pytest

from repro.analysis import (
    AnalysisError,
    Baseline,
    BaselineEntry,
    Finding,
    all_rules,
    analyze_paths,
    analyze_source,
    build_cfg,
    rules_for,
)
from repro.cli import main


def check(source: str, codes=None, **kwargs):
    return analyze_source(textwrap.dedent(source), codes=codes, **kwargs)


def codes_of(report) -> list[str]:
    return [finding.code for finding in report.findings]


class TestRegistry:
    def test_all_rules_registered(self):
        assert [r.code for r in all_rules()] == [
            "DET001", "DET002", "DP001", "EPS001", "EPS002",
            "LEDGER001", "LIFE001", "RACE001", "RACE002",
        ]

    def test_every_rule_documented(self):
        for rule in all_rules():
            assert rule.name
            assert rule.summary
            assert rule.rationale
            assert rule.example

    def test_rules_for_subset(self):
        assert [r.code for r in rules_for(["DP001"])] == ["DP001"]

    def test_rules_for_unknown_code_raises(self):
        with pytest.raises(KeyError):
            rules_for(["NOPE999"])


class TestCFG:
    """Corner cases of the CFG builder, pinned as exact edge sets."""

    def cfg_of(self, source):
        tree = ast.parse(textwrap.dedent(source))
        return build_cfg(tree.body[0])

    def test_rejects_non_function_nodes(self):
        with pytest.raises(TypeError):
            build_cfg(ast.parse("x = 1").body[0])

    def test_while_else_with_break(self):
        # `else` runs only on normal exhaustion; `break` skips it.
        cfg = self.cfg_of(
            """
            def f():
                while cond():
                    if hot():
                        break
                    step()
                else:
                    done()
            """
        )
        assert cfg.edge_set() == {
            ("entry", "While:3", "next"),
            ("While:3", "raise", "exc"),
            ("While:3", "If:4", "true"),
            ("If:4", "raise", "exc"),
            ("If:4", "Break:5", "true"),
            ("If:4", "Expr:6", "false"),
            ("Expr:6", "raise", "exc"),
            ("Expr:6", "While:3", "back"),
            ("While:3", "Expr:8", "false"),
            ("Expr:8", "raise", "exc"),
            ("Expr:8", "exit", "next"),
            ("Break:5", "exit", "break"),
        }

    def test_constant_true_while_has_no_false_edge(self):
        cfg = self.cfg_of(
            """
            def f():
                while True:
                    if done():
                        break
                    step()
            """
        )
        assert cfg.edge_set() == {
            ("entry", "While:3", "next"),
            ("While:3", "raise", "exc"),
            ("While:3", "If:4", "true"),
            ("If:4", "raise", "exc"),
            ("If:4", "Break:5", "true"),
            ("If:4", "Expr:6", "false"),
            ("Expr:6", "raise", "exc"),
            ("Expr:6", "While:3", "back"),
            ("Break:5", "exit", "break"),
        }

    def test_nested_try_finally_with_return_in_finally(self):
        # The outer `return` swallows the pending exception: the
        # exception-path copy of the finally body exits via `return`,
        # and no raising statement reaches `raise` directly.
        cfg = self.cfg_of(
            """
            def f():
                try:
                    try:
                        risky()
                    finally:
                        inner()
                finally:
                    return 0
            """
        )
        assert cfg.edge_set() == {
            ("entry", "Expr:5", "next"),
            ("Expr:5", "Expr:7~exc", "exc"),
            ("Expr:5", "Expr:7", "next"),
            ("Expr:7~exc", "Return:9~exc~exc", "exc"),
            ("Expr:7", "Return:9~exc~exc", "exc"),
            ("Expr:7", "Return:9", "next"),
            ("Return:9~exc~exc", "raise", "exc"),
            ("Return:9~exc~exc", "exit", "return"),
            ("Return:9", "raise", "exc"),
            ("Return:9", "exit", "return"),
        }

    def test_with_body_exception_routes_through_exit_node(self):
        # A raise inside the body still runs __exit__ (the synthetic
        # WithExit copy), but a failing context expression does not.
        cfg = self.cfg_of(
            """
            def f():
                with open_resource() as r:
                    use(r)
                after()
            """
        )
        assert cfg.edge_set() == {
            ("entry", "With:3", "next"),
            ("With:3", "raise", "exc"),
            ("With:3", "Expr:4", "next"),
            ("Expr:4", "WithExit:3~exc", "exc"),
            ("WithExit:3~exc", "raise", "exc"),
            ("Expr:4", "WithExit:3", "next"),
            ("WithExit:3", "Expr:5", "next"),
            ("Expr:5", "raise", "exc"),
            ("Expr:5", "exit", "next"),
        }

    def test_generator_yield_is_a_plain_statement(self):
        # `yield` suspends rather than transfers control: the loop
        # shape is identical to a non-generator, with the yield as an
        # ordinary may-raise statement (a thrown-in GeneratorExit).
        cfg = self.cfg_of(
            """
            def gen(items):
                for item in items:
                    yield item
            """
        )
        assert cfg.edge_set() == {
            ("entry", "For:3", "next"),
            ("For:3", "raise", "exc"),
            ("For:3", "Expr:4", "true"),
            ("Expr:4", "raise", "exc"),
            ("Expr:4", "For:3", "back"),
            ("For:3", "exit", "false"),
        }


class TestDP001:
    def test_unledgered_class_draw_flagged(self):
        report = check(
            """
            class Stage:
                def apply(self, count, rng):
                    return self.mechanism.perturb_count(count, rng)
            """,
            codes=["DP001"],
        )
        assert codes_of(report) == ["DP001"]
        assert "class Stage" in report.findings[0].message

    def test_ledgered_class_draw_clean(self):
        report = check(
            """
            class Stage:
                def apply(self, ledger, count, rng):
                    ledger.record("stage/count", 1.0)
                    return self.mechanism.perturb_count(count, rng)
            """,
            codes=["DP001"],
        )
        assert report.clean

    def test_record_parallel_counts_as_ledgered(self):
        report = check(
            """
            class Stage:
                def apply(self, ledger, count, rng):
                    ledger.record_parallel("local", "stage", 1.0, scope=1)
                    return self.mechanism.perturb(count, rng)
            """,
            codes=["DP001"],
        )
        assert report.clean

    def test_module_level_qualified_draw_flagged(self):
        report = check(
            """
            from repro.core.laplace import laplace_noise

            def jitter(scale, rng):
                return laplace_noise(scale, rng)
            """,
            codes=["DP001"],
        )
        assert codes_of(report) == ["DP001"]
        assert "module scope" in report.findings[0].message

    def test_sanctioned_module_exempt(self):
        report = check(
            """
            class LaplaceMechanism:
                def perturb(self, value, rng):
                    return value + self.draw.laplace(self.scale, rng)
            """,
            codes=["DP001"],
            module="repro.core.laplace",
        )
        assert report.clean


class TestDET001:
    def test_stdlib_global_rng_flagged(self):
        report = check(
            """
            import random

            def shuffle(items):
                random.shuffle(items)
            """,
            codes=["DET001"],
        )
        assert codes_of(report) == ["DET001"]

    def test_numpy_legacy_rng_flagged_through_alias(self):
        report = check(
            """
            import numpy as np

            def noise(n):
                return np.random.normal(size=n)
            """,
            codes=["DET001"],
        )
        assert codes_of(report) == ["DET001"]
        assert "np.random.normal" in report.findings[0].message

    def test_seeded_constructors_clean(self):
        report = check(
            """
            import random

            import numpy as np

            def make(seed):
                return random.Random(seed), np.random.default_rng(seed)
            """,
            codes=["DET001"],
        )
        assert report.clean

    def test_instance_method_calls_clean(self):
        report = check(
            """
            def draw(rng):
                return rng.random()
            """,
            codes=["DET001"],
        )
        assert report.clean


class TestDET002:
    def test_wall_clock_flagged(self):
        report = check(
            """
            import time

            def stamp():
                return time.time()
            """,
            codes=["DET002"],
        )
        assert codes_of(report) == ["DET002"]

    def test_datetime_now_flagged_through_from_import(self):
        report = check(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            codes=["DET002"],
        )
        assert codes_of(report) == ["DET002"]

    def test_perf_counter_allowed(self):
        report = check(
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            codes=["DET002"],
        )
        assert report.clean

    def test_set_iteration_flagged(self):
        report = check(
            """
            def walk(a, b):
                for loc in {a, b}:
                    yield loc
            """,
            codes=["DET002"],
        )
        assert codes_of(report) == ["DET002"]

    def test_comprehension_over_set_call_flagged(self):
        report = check(
            """
            def dedupe(items):
                return [x for x in set(items)]
            """,
            codes=["DET002"],
        )
        assert codes_of(report) == ["DET002"]

    def test_sorted_set_iteration_clean(self):
        report = check(
            """
            def walk(items):
                for loc in sorted(set(items)):
                    yield loc
            """,
            codes=["DET002"],
        )
        assert report.clean


class TestEPS001:
    @pytest.mark.parametrize(
        "line",
        [
            "epsilon == 0",
            "eps != 0.0",
            "0 == self.epsilon_local",
        ],
    )
    def test_zero_comparison_flagged(self, line):
        report = check(f"def f(epsilon, eps, self): return ({line})",
                       codes=["EPS001"])
        assert codes_of(report) == ["EPS001"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(eps):\n    if eps:\n        return 1",
            "def f(eps):\n    return 1 if eps else 2",
            "def f(self):\n    if not self.epsilon_global:\n        return 0",
            "def f(eps, other):\n    return eps and other",
        ],
    )
    def test_truthiness_flagged(self, snippet):
        report = check(snippet, codes=["EPS001"])
        assert codes_of(report) == ["EPS001"]

    def test_is_none_check_clean(self):
        report = check(
            """
            def f(epsilon):
                if epsilon is not None:
                    return epsilon
            """,
            codes=["EPS001"],
        )
        assert report.clean

    def test_magnitude_comparison_clean(self):
        report = check("def f(epsilon): return epsilon > 0",
                       codes=["EPS001"])
        assert report.clean

    def test_non_epsilon_name_clean(self):
        report = check("def f(radius): return radius == 0",
                       codes=["EPS001"])
        assert report.clean


class TestRACE001:
    def test_unlocked_self_write_in_pool_worker_flagged(self):
        report = check(
            """
            class Engine:
                def run(self, jobs):
                    return parallel_map(self._work, jobs)

                def _work(self, job):
                    self.cache = job
                    return job
            """,
            codes=["RACE001"],
        )
        assert codes_of(report) == ["RACE001"]
        assert "self.cache" in report.findings[0].message

    def test_locked_write_clean(self):
        report = check(
            """
            class Engine:
                def run(self, jobs):
                    return parallel_map(self._work, jobs)

                def _work(self, job):
                    with self._lock:
                        self.cache = job
                    return job
            """,
            codes=["RACE001"],
        )
        assert report.clean

    def test_executor_submit_receiver_detected(self):
        report = check(
            """
            class Engine:
                def run(self, jobs):
                    return [self.pool.submit(self._work, j) for j in jobs]

                def _work(self, job):
                    self.stats.done += 1
                    return job
            """,
            codes=["RACE001"],
        )
        assert codes_of(report) == ["RACE001"]

    def test_transitive_callee_flagged(self):
        report = check(
            """
            class Engine:
                def run(self, jobs):
                    return parallel_map(self._work, jobs)

                def _work(self, job):
                    return self._finish(job)

                def _finish(self, job):
                    self.last = job
                    return job
            """,
            codes=["RACE001"],
        )
        assert codes_of(report) == ["RACE001"]
        assert "Engine._finish" in report.findings[0].message

    def test_unreachable_write_clean(self):
        report = check(
            """
            class Engine:
                def configure(self, option):
                    self.option = option
            """,
            codes=["RACE001"],
        )
        assert report.clean

    def test_conditional_worker_alias_discovered(self):
        # The publisher picks its pool worker conditionally
        # (``runner = _module_worker``) before submitting; discovery
        # must follow the bare-name alias to the module function.
        report = check(
            """
            SEEN = None

            def _module_worker(job):
                global SEEN
                SEEN = job
                return job

            class Engine:
                def run(self, jobs, parallel):
                    if parallel:
                        runner = _module_worker
                    else:
                        runner = _module_worker
                    return parallel_map_stream(runner, jobs)
            """,
            codes=["RACE001"],
        )
        assert codes_of(report) == ["RACE001"]
        assert "_module_worker" in report.findings[0].message

    def test_cross_module_global_write_flagged(self, tmp_path):
        (tmp_path / "counters.py").write_text(textwrap.dedent(
            """
            TOTAL = 0

            def bump(job):
                global TOTAL
                TOTAL += 1
                return job
            """
        ))
        (tmp_path / "driver.py").write_text(textwrap.dedent(
            """
            from counters import bump

            def run(jobs):
                return parallel_map(bump, jobs)
            """
        ))
        report = analyze_paths([tmp_path], root=tmp_path, codes=["RACE001"])
        assert codes_of(report) == ["RACE001"]
        assert report.findings[0].path == "counters.py"
        assert "TOTAL" in report.findings[0].message

    def test_partial_wrapped_worker_discovered(self):
        # functools.partial(fn, ...) defers to fn: the pool entry is
        # the partial's first argument, not `partial` itself.
        report = check(
            """
            import functools

            class Engine:
                def run(self, jobs):
                    worker = functools.partial(self._work, retries=2)
                    return parallel_map(worker, jobs)

                def _work(self, job, retries):
                    self.cache = job
                    return job
            """,
            codes=["RACE001"],
        )
        assert codes_of(report) == ["RACE001"]
        assert "self.cache" in report.findings[0].message

    def test_lambda_wrapped_worker_discovered(self):
        report = check(
            """
            class Engine:
                def run(self, jobs):
                    return parallel_map(lambda j: self._work(j, 2), jobs)

                def _work(self, job, retries):
                    self.cache = job
                    return job
            """,
            codes=["RACE001"],
        )
        assert codes_of(report) == ["RACE001"]
        assert "self.cache" in report.findings[0].message


class TestEPS002:
    def test_dropped_share_flagged_at_split_line(self):
        report = check(
            """
            def allocate(epsilon):
                eps_g = epsilon * 0.5
                eps_t = epsilon * 0.5
                return draw(eps_t)
            """,
            codes=["EPS002"],
        )
        assert codes_of(report) == ["EPS002"]
        finding = report.findings[0]
        assert finding.line == 3
        assert "eps_g" in finding.message

    def test_split_call_shares_tracked_through_tuple_unpack(self):
        report = check(
            """
            def allocate(eps):
                eps_a, eps_b = split_budget(eps, 0.5)
                first(eps_a)
            """,
            codes=["EPS002"],
        )
        assert codes_of(report) == ["EPS002"]
        assert "eps_b" in report.findings[0].message

    def test_double_spend_of_split_source_flagged(self):
        report = check(
            """
            def run(eps, mechanism):
                eps_local = eps * 0.5
                mechanism.perturb(eps_local)
                mechanism.perturb(eps)
            """,
            codes=["EPS002"],
        )
        assert codes_of(report) == ["EPS002"]
        finding = report.findings[0]
        assert finding.line == 5
        assert "spends the same budget twice" in finding.message

    def test_all_shares_spent_clean(self):
        report = check(
            """
            def run(eps):
                eps_a, eps_b = split_budget(eps)
                first(eps_a)
                second(eps_b)
            """,
            codes=["EPS002"],
        )
        assert report.clean

    def test_share_derived_from_share_counts_as_read(self):
        report = check(
            """
            def run(epsilon):
                eps_half = epsilon * 0.5
                eps_quarter = eps_half * 0.5
                return draw(eps_quarter)
            """,
            codes=["EPS002"],
        )
        assert report.clean

    def test_exception_exit_does_not_count_as_drop(self):
        report = check(
            """
            def run(epsilon, jobs):
                eps_g = epsilon * 0.5
                validate(jobs)
                return draw(eps_g)
            """,
            codes=["EPS002"],
        )
        assert report.clean


class TestLIFE001:
    STORE = """
    class SpillStore:
        def append(self, row):
            pass

        def close(self):
            pass
    """

    def check_store(self, body):
        source = textwrap.dedent(self.STORE) + textwrap.dedent(body)
        return check(source, codes=["LIFE001"])

    def test_exception_path_leak_flagged(self):
        # The straight-line close() covers the normal path only: the
        # append() between open and close can raise past it.
        report = self.check_store(
            """
            def risky(rows):
                store = SpillStore()
                store.append(rows)
                store.close()
                return True
            """
        )
        assert codes_of(report) == ["LIFE001"]
        finding = report.findings[0]
        assert "exception path" in finding.message
        assert "SpillStore" in finding.message

    def test_returned_resource_escapes_ownership_clean(self):
        # Returning the store hands off ownership: escaped, not leaked.
        report = self.check_store(
            """
            def make_store(rows):
                store = SpillStore()
                store.append(rows)
                return store
            """
        )
        assert report.clean

    def test_never_closed_flagged(self):
        report = self.check_store(
            """
            def leaky(rows):
                store = SpillStore()
                store.append(rows)
                return len(rows)
            """
        )
        assert codes_of(report) == ["LIFE001"]
        assert "never reaches close()" in report.findings[0].message

    def test_with_block_clean(self):
        report = self.check_store(
            """
            def safe(rows):
                with SpillStore() as store:
                    store.append(rows)
            """
        )
        assert report.clean

    def test_try_finally_clean(self):
        report = self.check_store(
            """
            def safe(rows):
                store = SpillStore()
                try:
                    store.append(rows)
                finally:
                    store.close()
            """
        )
        assert report.clean

    def test_use_after_close_flagged(self):
        report = self.check_store(
            """
            def stale(rows):
                store = SpillStore()
                store.close()
                store.append(rows)
            """
        )
        assert codes_of(report) == ["LIFE001"]
        assert "used after" in report.findings[0].message


class TestLEDGER001:
    def test_exception_path_reservation_leak_flagged(self):
        report = check(
            """
            def spend(store, tenant, job, eps):
                rid = store.reserve(tenant, job, eps)
                work(rid)
                store.commit(tenant, rid)
            """,
            codes=["LEDGER001"],
        )
        assert codes_of(report) == ["LEDGER001"]
        finding = report.findings[0]
        assert finding.line == 3
        assert "an exception path" in finding.message

    def test_release_in_except_clean(self):
        report = check(
            """
            def spend(store, tenant, job, eps):
                rid = store.reserve(tenant, job, eps)
                try:
                    work(rid)
                    store.commit(tenant, rid)
                except Exception:
                    store.release(tenant, rid)
                    raise
            """,
            codes=["LEDGER001"],
        )
        assert report.clean

    def test_reserve_only_handoff_clean(self):
        # No commit/release anywhere in the function: the settle lives
        # downstream (a queue consumer), so this is not a leak.
        report = check(
            """
            def enqueue(store, queue, tenant, job, eps):
                rid = store.reserve(tenant, job, eps)
                queue.put(rid)
            """,
            codes=["LEDGER001"],
        )
        assert report.clean

    def test_double_settle_flagged(self):
        report = check(
            """
            def oops(store, tenant, job, eps):
                rid = store.reserve(tenant, job, eps)
                store.commit(tenant, rid)
                store.release(tenant, rid)
            """,
            codes=["LEDGER001"],
        )
        assert codes_of(report) == ["LEDGER001"]
        finding = report.findings[0]
        assert finding.line == 5  # the second settle, not the first
        assert "already settled" in finding.message


class TestRACE002:
    def test_inverted_lock_pair_flagged(self):
        report = check(
            """
            class Engine:
                def flush(self):
                    with self.store_lock:
                        with self.job_lock:
                            pass

                def cancel(self):
                    with self.job_lock:
                        with self.store_lock:
                            pass
            """,
            codes=["RACE002"],
        )
        assert codes_of(report) == ["RACE002"]
        message = report.findings[0].message
        assert "job_lock" in message
        assert "store_lock" in message
        assert "inconsistent order" in message

    def test_consistent_order_clean(self):
        report = check(
            """
            class Engine:
                def flush(self):
                    with self.store_lock:
                        with self.job_lock:
                            pass

                def cancel(self):
                    with self.store_lock:
                        with self.job_lock:
                            pass
            """,
            codes=["RACE002"],
        )
        assert report.clean

    def test_cycle_through_called_method_flagged(self):
        report = check(
            """
            class Engine:
                def outer(self):
                    with self.a_lock:
                        self.grab()

                def grab(self):
                    with self.b_lock:
                        pass

                def other(self):
                    with self.b_lock:
                        with self.a_lock:
                            pass
            """,
            codes=["RACE002"],
        )
        assert codes_of(report) == ["RACE002"]
        assert "call to" in report.findings[0].message

    def test_single_lock_reentry_not_flagged(self):
        report = check(
            """
            class Engine:
                def flush(self):
                    with self.store_lock:
                        self.drain()

                def drain(self):
                    with self.store_lock:
                        pass
            """,
            codes=["RACE002"],
        )
        assert report.clean


class TestSuppression:
    VIOLATION = """
    import random

    def draw():
        return random.random()  # repro: noqa[DET001]
    """

    def test_coded_noqa_suppresses(self):
        report = check(self.VIOLATION, codes=["DET001"])
        assert report.clean
        assert [f.code for f in report.suppressed] == ["DET001"]

    def test_bare_noqa_suppresses_everything(self):
        report = check(
            """
            import random

            def draw():
                return random.random()  # repro: noqa
            """,
            codes=["DET001"],
        )
        assert report.clean
        assert len(report.suppressed) == 1

    def test_wrong_code_does_not_suppress(self):
        report = check(
            """
            import random

            def draw():
                return random.random()  # repro: noqa[DP001]
            """,
            codes=["DET001"],
        )
        assert codes_of(report) == ["DET001"]

    def test_code_match_case_insensitive(self):
        report = check(
            """
            import random

            def draw():
                return random.random()  # repro: noqa[det001]
            """,
            codes=["DET001"],
        )
        assert report.clean


class TestBaseline:
    VIOLATION = """
    import random

    def draw():
        return random.random()
    """

    def test_from_findings_absorbs_everything(self):
        first = check(self.VIOLATION, codes=["DET001"])
        baseline = Baseline.from_findings(first.findings)
        second = check(self.VIOLATION, codes=["DET001"], baseline=baseline)
        assert second.clean
        assert len(second.baselined) == 1
        assert not second.stale_baseline

    def test_survives_line_drift(self):
        baseline = Baseline.from_findings(
            check(self.VIOLATION, codes=["DET001"]).findings
        )
        shifted = "# a new leading comment\n\n" + textwrap.dedent(self.VIOLATION)
        report = analyze_source(shifted, codes=["DET001"], baseline=baseline)
        assert report.clean
        assert len(report.baselined) == 1

    def test_fixed_violation_marks_entry_stale(self):
        baseline = Baseline.from_findings(
            check(self.VIOLATION, codes=["DET001"]).findings
        )
        report = check("def draw(rng): return rng.random()",
                       codes=["DET001"], baseline=baseline)
        assert report.clean
        assert len(report.stale_baseline) == 1
        assert report.stale_baseline[0].code == "DET001"

    def test_count_caps_absorption(self):
        doubled = """
        import random

        def draw():
            return random.random()

        def draw_again():
            return random.random()
        """
        entry = BaselineEntry(
            code="DET001",
            path="<snippet>.py",
            snippet="return random.random()",
            count=1,
        )
        report = check(doubled, codes=["DET001"],
                       baseline=Baseline(entries=[entry]))
        # Two identical snippets, budget for one: the second stays active.
        assert len(report.baselined) == 1
        assert len(report.findings) == 1

    def test_save_load_round_trip(self, tmp_path):
        baseline = Baseline.from_findings(
            check(self.VIOLATION, codes=["DET001"]).findings,
            reason="legacy draw",
        )
        target = tmp_path / "baseline.json"
        baseline.save(target)
        assert Baseline.load(target) == baseline

    def test_load_rejects_unknown_version(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            Baseline.load(target)


class TestReportSchema:
    def test_json_shape(self):
        report = check(TestBaseline.VIOLATION, codes=["DET001"])
        payload = report.to_dict()
        assert set(payload) == {
            "version", "files", "codes", "findings", "suppressed",
            "baselined", "stale_baseline", "unused_noqa", "clean",
        }
        assert payload["version"] == 1
        assert payload["files"] == 1
        assert payload["codes"] == ["DET001"]
        assert payload["clean"] is False
        (finding,) = payload["findings"]
        assert set(finding) == {
            "code", "path", "line", "col", "message", "snippet",
        }
        assert Finding.from_dict(finding) == report.findings[0]

    def test_render_human_mentions_location_and_code(self):
        report = check(TestBaseline.VIOLATION, codes=["DET001"])
        text = report.render_human()
        assert "<snippet>.py:5:12: DET001" in text
        assert "1 finding(s)" in text

    def test_syntax_error_raises_analysis_error(self):
        with pytest.raises(AnalysisError):
            analyze_source("def broken(:\n")


class TestUnusedNoqa:
    def test_unused_named_noqa_warns_without_failing(self):
        report = check(
            """
            def double(x):
                return 2 * x  # repro: noqa[DET001]
            """,
            codes=["DET001"],
        )
        assert report.clean
        assert report.exit_code() == 0
        (unused,) = report.unused_noqa
        assert unused.line == 3
        assert unused.codes == ("DET001",)
        assert "unused suppression" in report.render_human()

    def test_used_noqa_not_warned(self):
        report = check(TestSuppression.VIOLATION, codes=["DET001"])
        assert report.clean
        assert report.unused_noqa == []

    def test_named_code_outside_run_set_not_warned(self):
        # A restricted run cannot tell whether DP001 would have fired.
        report = check(
            """
            def double(x):
                return 2 * x  # repro: noqa[DP001]
            """,
            codes=["DET001"],
        )
        assert report.unused_noqa == []

    def test_bare_noqa_only_flagged_on_full_run(self):
        source = """
        def double(x):
            return 2 * x  # repro: noqa
        """
        restricted = check(source, codes=["DET001"])
        assert restricted.unused_noqa == []
        full = check(source)
        (unused,) = full.unused_noqa
        assert unused.codes == ("*",)

    def test_partially_used_noqa_reports_dead_codes_only(self):
        report = check(
            """
            import random

            def draw():
                return random.random()  # repro: noqa[DET001, DP001]
            """,
            codes=["DET001", "DP001"],
        )
        assert report.clean
        (unused,) = report.unused_noqa
        assert unused.codes == ("DP001",)

    def test_docstring_mention_is_not_a_suppression(self):
        # The syntax quoted in prose must neither suppress findings on
        # its line nor register as an unused suppression.
        report = check(
            '''
            """Suppress inline with ``# repro: noqa[DET001]``."""
            import random

            def draw():
                return random.random()
            ''',
            codes=["DET001"],
        )
        assert codes_of(report) == ["DET001"]
        assert report.unused_noqa == []

    def test_unused_noqa_serialized_in_json(self):
        report = check(
            """
            def double(x):
                return 2 * x  # repro: noqa[DET001]
            """,
            codes=["DET001"],
        )
        payload = report.to_dict()
        assert payload["unused_noqa"] == [
            {"path": "<snippet>.py", "line": 3, "codes": ["DET001"]}
        ]


class TestSarif:
    def test_sarif_log_shape(self):
        report = check(TestBaseline.VIOLATION, codes=["DET001"])
        log = report.to_sarif()
        assert log["$schema"].endswith("sarif-2.1.0.json")
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-check"
        (rule_entry,) = driver["rules"]
        assert rule_entry["id"] == "DET001"
        assert rule_entry["shortDescription"]["text"]
        assert rule_entry["fullDescription"]["text"]
        (result,) = run["results"]
        assert result["ruleId"] == "DET001"
        assert result["level"] == "error"
        assert result["message"]["text"]
        (location,) = result["locations"]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "<snippet>.py"
        region = physical["region"]
        finding = report.findings[0]
        assert region["startLine"] == finding.line
        assert region["startColumn"] == finding.col + 1
        assert region["snippet"]["text"] == finding.snippet

    def test_driver_rules_restricted_to_run_set(self):
        report = check("x = 1\n", codes=["DET001", "DP001"])
        log = report.to_sarif()
        driver = log["runs"][0]["tool"]["driver"]
        assert sorted(r["id"] for r in driver["rules"]) == ["DET001", "DP001"]
        assert log["runs"][0]["results"] == []

    def test_suppressed_findings_omitted(self):
        report = check(TestSuppression.VIOLATION, codes=["DET001"])
        assert len(report.suppressed) == 1
        assert report.to_sarif()["runs"][0]["results"] == []

    def test_cli_format_sarif(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "import random\n\n\ndef draw():\n    return random.random()\n"
        )
        code = main(["check", str(dirty), "--baseline", "none",
                     "--format", "sarif"])
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        results = log["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["DET001"]


class TestCheckCLI:
    """The `repro check` exit-code contract, end to end."""

    def clean_file(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text("def double(x):\n    return 2 * x\n")
        return path

    def dirty_file(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text(
            "import random\n\n\ndef draw():\n    return random.random()\n"
        )
        return path

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        code = main(["check", str(self.clean_file(tmp_path)),
                     "--baseline", "none"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        code = main(["check", str(self.dirty_file(tmp_path)),
                     "--baseline", "none"])
        assert code == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "random.random" in out

    def test_exit_two_on_syntax_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        code = main(["check", str(bad), "--baseline", "none"])
        assert code == 2
        assert "syntax error" in capsys.readouterr().err

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        code = main(["check", str(self.clean_file(tmp_path)),
                     "--baseline", "none", "--rules", "NOPE999"])
        assert code == 2
        assert "NOPE999" in capsys.readouterr().err

    def test_json_format_machine_readable(self, tmp_path, capsys):
        code = main(["check", str(self.dirty_file(tmp_path)),
                     "--baseline", "none", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["clean"] is False
        assert payload["findings"][0]["code"] == "DET001"

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DP001", "DET001", "DET002", "RACE001", "EPS001",
                     "EPS002", "LIFE001", "LEDGER001", "RACE002"):
            assert code in out

    def test_rules_flag_restricts(self, tmp_path, capsys):
        code = main(["check", str(self.dirty_file(tmp_path)),
                     "--baseline", "none", "--rules", "DP001"])
        assert code == 0  # the DET001 violation is outside the rule set
        capsys.readouterr()

    def test_update_baseline_then_clean_then_stale(self, tmp_path, capsys):
        dirty = self.dirty_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["check", str(dirty), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert "1 finding(s) grandfathered" in capsys.readouterr().out
        # Grandfathered: same tree now exits 0, finding is baselined.
        assert main(["check", str(dirty), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # Fix the violation: still 0, but the entry is reported stale.
        dirty.write_text("def draw(rng):\n    return rng.random()\n")
        assert main(["check", str(dirty), "--baseline", str(baseline)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out
