"""The paper's hierarchical grid index (Section IV-C).

A stack of nested uniform grids with power-of-two granularities: level
``L`` has ``2^L`` cells per side, level 0 being the single root cell
covering the whole area. Each segment lives in its **best-fit** cell
(Definition 11) — the finest cell that contains both endpoints. Cells
record parent/children relationships so searches can move both up and
down the hierarchy.

Three K-nearest-segment search strategies are provided:

* ``top_down`` (HGt) — classic best-first descent from the root;
* ``bottom_up`` (HGb) — start from the finest non-empty cell containing
  the query and climb, exploring each newly exposed subtree;
* ``bottom_up_down`` (HG+) — the paper's Algorithm 3: a stack-driven
  bottom-up phase until the root is reached (tightening the pruning
  threshold θ_K early), then a best-first top-down phase over a priority
  queue with early termination (Theorem 4).

Search statistics (cells visited, segments checked) are recorded per
call for the efficiency study.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.geo.geometry import BBox, Coord
from repro.geo.vectorized import SegmentArray
from repro.index.base import IndexedSegment, SegmentRegistry
from repro.index.search import KnnCandidates

#: Cell address: (level, ix, iy). Level 0 is the 1x1 root grid.
CellKey = tuple[int, int, int]

ROOT: CellKey = (0, 0, 0)

_STRATEGIES = ("top_down", "bottom_up", "bottom_up_down")


def _bit_lengths(values: np.ndarray) -> np.ndarray:
    """``int.bit_length`` for a non-negative int64 array.

    The binary exponent from ``frexp`` — exact for values below 2**53,
    far beyond any grid coordinate (< 2**levels).
    """
    return np.frexp(values.astype(np.float64))[1].astype(np.int64)


@dataclass(slots=True)
class _Cell:
    """Bookkeeping for one existing cell."""

    segments: set[int] = field(default_factory=set)
    children: set[CellKey] = field(default_factory=set)
    #: Lazily-built vectorised view ``(sorted sids, SegmentArray)`` of
    #: ``segments``; invalidated whenever the segment set changes. Lets
    #: the incremental frontier batch a whole cell's exact distances in
    #: one numpy pass instead of one Python call per segment.
    array: tuple[list[int], SegmentArray] | None = None

    @property
    def empty(self) -> bool:
        return not self.segments and not self.children


@dataclass(slots=True)
class SearchStats:
    """Work counters for one kNN call (used by the efficiency study)."""

    cells_visited: int = 0
    segments_checked: int = 0


class HierarchicalGridIndex:
    """Multi-resolution grid with best-fit segment placement."""

    def __init__(self, bbox: BBox, levels: int = 10) -> None:
        """``levels`` grids, the finest having ``2**(levels-1)`` cells/side.

        The paper's finest granularity of 512x512 corresponds to the
        default ``levels=10``.
        """
        if levels < 1:
            raise ValueError("need at least one level")
        self.bbox = bbox
        self.levels = levels
        self._finest = levels - 1
        self._side = 2**self._finest  # cells per side at the finest level
        self._width = max(bbox.width, 1e-9)
        self._height = max(bbox.height, 1e-9)
        self._registry = SegmentRegistry()
        self._cells: dict[CellKey, _Cell] = {}
        self._cell_of_sid: dict[int, CellKey | None] = {}
        #: Segments with an endpoint outside ``bbox``. Clamping them
        #: into boundary cells would break MINdist's lower-bound
        #: guarantee (the protruding geometry can be closer to an
        #: outside query than its cell), so they bypass the hierarchy
        #: and every search checks them exactly.
        self._overflow: set[int] = set()
        self.last_stats = SearchStats()

    # -- cell geometry -----------------------------------------------------------

    def _finest_coords(self, p: Coord) -> tuple[int, int]:
        """Cell coordinates of ``p`` at the finest level (clamped into range)."""
        fx = int(math.floor((p[0] - self.bbox.min_x) / self._width * self._side))
        fy = int(math.floor((p[1] - self.bbox.min_y) / self._height * self._side))
        fx = min(max(fx, 0), self._side - 1)
        fy = min(max(fy, 0), self._side - 1)
        return fx, fy

    def best_fit_cell(self, a: Coord, b: Coord) -> CellKey:
        """Finest cell containing both endpoints (Definition 11)."""
        ax, ay = self._finest_coords(a)
        bx, by = self._finest_coords(b)
        diverging_bits = max((ax ^ bx).bit_length(), (ay ^ by).bit_length())
        level = self._finest - diverging_bits
        return (level, ax >> diverging_bits, ay >> diverging_bits)

    def cell_bbox(self, key: CellKey) -> BBox:
        level, ix, iy = key
        cells = 2**level
        w = self._width / cells
        h = self._height / cells
        return BBox(
            self.bbox.min_x + ix * w,
            self.bbox.min_y + iy * h,
            self.bbox.min_x + (ix + 1) * w,
            self.bbox.min_y + (iy + 1) * h,
        )

    def min_distance(self, q: Coord, key: CellKey) -> float:
        """MINdist(q, cell) — Equation (4).

        Inlined (no BBox allocation): this runs once per candidate cell
        on every search, making it the hottest geometry call in the
        modification pipeline.
        """
        level, ix, iy = key
        cells = 1 << level
        w = self._width / cells
        h = self._height / cells
        min_x = self.bbox.min_x + ix * w
        min_y = self.bbox.min_y + iy * h
        dx = min_x - q[0]
        if dx < 0.0:
            dx = q[0] - min_x - w
            if dx < 0.0:
                dx = 0.0
        dy = min_y - q[1]
        if dy < 0.0:
            dy = q[1] - min_y - h
            if dy < 0.0:
                dy = 0.0
        return math.hypot(dx, dy)

    @staticmethod
    def parent_of(key: CellKey) -> CellKey | None:
        level, ix, iy = key
        if level == 0:
            return None
        return (level - 1, ix >> 1, iy >> 1)

    # -- structure maintenance ------------------------------------------------------

    def insert(self, a: Coord, b: Coord, owner: str | None = None) -> int:
        segment = self._registry.allocate(a, b, owner)
        if not (self.bbox.contains(a) and self.bbox.contains(b)):
            self._cell_of_sid[segment.sid] = None
            self._overflow.add(segment.sid)
            return segment.sid
        key = self.best_fit_cell(a, b)
        self._cell_of_sid[segment.sid] = key
        cell = self._cells.get(key)
        if cell is None:
            cell = _Cell()
            self._cells[key] = cell
            self._link_ancestors(key)
        cell.segments.add(segment.sid)
        cell.array = None
        return segment.sid

    def insert_many(
        self,
        pairs,
        owner: str | None = None,
    ) -> list[int]:
        """Bulk :meth:`insert`: one vectorised best-fit pass per batch.

        Computes every segment's finest-level coordinates, diverging
        bit count, and best-fit cell (Definition 11) in numpy across
        the whole batch, leaving only the registry/cell bookkeeping in
        Python. Identical placement and sid allocation to the
        equivalent ``insert`` loop.
        """
        if not pairs:
            return []
        starts = np.asarray([a for a, _ in pairs], dtype=np.float64)
        ends = np.asarray([b for _, b in pairs], dtype=np.float64)
        inside = (
            (starts[:, 0] >= self.bbox.min_x)
            & (starts[:, 0] <= self.bbox.max_x)
            & (starts[:, 1] >= self.bbox.min_y)
            & (starts[:, 1] <= self.bbox.max_y)
            & (ends[:, 0] >= self.bbox.min_x)
            & (ends[:, 0] <= self.bbox.max_x)
            & (ends[:, 1] >= self.bbox.min_y)
            & (ends[:, 1] <= self.bbox.max_y)
        )
        fx_a, fy_a = self._finest_coords_batch(starts)
        fx_b, fy_b = self._finest_coords_batch(ends)
        diverging = np.maximum(
            _bit_lengths(fx_a ^ fx_b), _bit_lengths(fy_a ^ fy_b)
        )
        levels = self._finest - diverging
        cxs = fx_a >> diverging
        cys = fy_a >> diverging
        sids: list[int] = []
        for position, (a, b) in enumerate(pairs):
            segment = self._registry.allocate(a, b, owner)
            sids.append(segment.sid)
            if not inside[position]:
                self._cell_of_sid[segment.sid] = None
                self._overflow.add(segment.sid)
                continue
            key = (
                int(levels[position]),
                int(cxs[position]),
                int(cys[position]),
            )
            self._cell_of_sid[segment.sid] = key
            cell = self._cells.get(key)
            if cell is None:
                cell = _Cell()
                self._cells[key] = cell
                self._link_ancestors(key)
            cell.segments.add(segment.sid)
            cell.array = None
        return sids

    def _finest_coords_batch(
        self, points: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`_finest_coords`: same IEEE operations in
        the same order, so placement matches the scalar path exactly."""
        fx = np.floor(
            (points[:, 0] - self.bbox.min_x) / self._width * self._side
        ).astype(np.int64)
        fy = np.floor(
            (points[:, 1] - self.bbox.min_y) / self._height * self._side
        ).astype(np.int64)
        np.clip(fx, 0, self._side - 1, out=fx)
        np.clip(fy, 0, self._side - 1, out=fy)
        return fx, fy

    def _link_ancestors(self, key: CellKey) -> None:
        """Ensure the chain from ``key`` up to the root exists."""
        child = key
        parent = self.parent_of(child)
        while parent is not None:
            cell = self._cells.get(parent)
            if cell is None:
                cell = _Cell()
                self._cells[parent] = cell
                cell.children.add(child)
                child, parent = parent, self.parent_of(parent)
            else:
                cell.children.add(child)
                break

    def remove(self, sid: int) -> None:
        self._registry.release(sid)
        key = self._cell_of_sid.pop(sid)
        if key is None:
            self._overflow.discard(sid)
            return
        cell = self._cells[key]
        cell.segments.discard(sid)
        cell.array = None
        self._prune_upwards(key)

    def _prune_upwards(self, key: CellKey) -> None:
        """Delete now-empty cells and unlink them from their parents."""
        while True:
            cell = self._cells.get(key)
            if cell is None or not cell.empty:
                return
            del self._cells[key]
            parent = self.parent_of(key)
            if parent is None:
                return
            self._cells[parent].children.discard(key)
            key = parent

    def segment(self, sid: int) -> IndexedSegment:
        return self._registry.get(sid)

    def __len__(self) -> int:
        return len(self._registry)

    def cell_count(self) -> int:
        """Number of materialised cells (structure-size diagnostic)."""
        return len(self._cells)

    # -- search -----------------------------------------------------------------------

    def knn(
        self, q: Coord, k: int, strategy: str = "bottom_up_down"
    ) -> list[tuple[int, float]]:
        """K-nearest segment search with the chosen strategy."""
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; choose from {_STRATEGIES}")
        stats = SearchStats()
        self.last_stats = stats
        return self._knn_one(q, k, strategy, stats)

    def knn_batch(
        self, qs, k: int, strategy: str = "bottom_up_down"
    ) -> list[list[tuple[int, float]]]:
        """:meth:`knn` for a batch of queries against one index snapshot.

        Every query reuses the same cached per-cell
        :class:`~repro.geo.vectorized.SegmentArray` batches (built at
        most once per cell for the whole call), so a batch over a
        static index does the numpy distance kernels per (query, cell)
        but the Python-side view construction only per cell.
        :attr:`last_stats` accumulates the work of the whole batch.
        """
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; choose from {_STRATEGIES}")
        stats = SearchStats()
        self.last_stats = stats
        return [self._knn_one(q, k, strategy, stats) for q in qs]

    def _knn_one(
        self, q: Coord, k: int, strategy: str, stats: SearchStats
    ) -> list[tuple[int, float]]:
        if not self._cells and not self._overflow:
            return []
        candidates = KnnCandidates(k)
        # Out-of-bbox segments carry no valid cell bound; check them
        # exactly up front (this also tightens θ_K before descent).
        for sid in self._overflow:
            stats.segments_checked += 1
            candidates.offer(sid, self._registry.get(sid).distance_to(q))
        if not self._cells:
            return candidates.results()
        if strategy == "top_down":
            self._search_top_down(q, candidates, stats)
        elif strategy == "bottom_up":
            self._search_bottom_up(q, candidates, stats)
        else:
            self._search_bottom_up_down(q, candidates, stats)
        return candidates.results()

    def _cell_view(self, cell: _Cell) -> tuple[list[int], SegmentArray]:
        """The cell's vectorised segment view, built lazily and cached
        until the cell's segment set next changes."""
        if cell.array is None:
            sids = sorted(cell.segments)
            pairs = []
            for sid in sids:
                segment = self._registry.get(sid)
                pairs.append((segment.a, segment.b))
            cell.array = (sids, SegmentArray.from_pairs(pairs))
        return cell.array

    def iter_nearest(self, q: Coord):
        """Resumable best-first frontier over the cell hierarchy; see
        :meth:`_iter_nearest` for the algorithm."""
        stats = SearchStats()
        self.last_stats = stats
        yield from self._iter_nearest(q, stats)

    def iter_nearest_batch(self, qs) -> list:
        """:meth:`iter_nearest` for a batch of queries, one lazy
        iterator per query.

        All iterators walk the same index snapshot and share the
        per-cell cached ``SegmentArray`` batches — on a static index
        (the wave planner's read-only simulation rounds) each cell's
        Python-side view is built at most once for the whole batch,
        no matter how many query frontiers expand it.
        :attr:`last_stats` is reset once, up front, and accumulates
        the combined work of every iterator as it is consumed.
        """
        stats = SearchStats()
        self.last_stats = stats
        return [self._iter_nearest(q, stats) for q in qs]

    def _iter_nearest(self, q: Coord, stats: SearchStats):
        """Resumable best-first frontier over the cell hierarchy.

        One priority queue holds unexplored cells (keyed by MINdist,
        which lower-bounds every descendant segment) and per-cell
        *cursors* into distance-sorted segment batches (keyed by the
        cursor head's exact distance). Expanding a cell computes every
        contained segment's distance in one vectorised pass; only the
        cheapest then enters the heap, and popping it re-arms the
        cursor with the cell's next segment. Pop order therefore yields
        segments in globally nondecreasing distance, and the frontier
        pauses wherever the consumer stops — no θ_K, no restarts.

        Cells sort ahead of equidistant segments so a tied segment
        inside an unexpanded cell cannot be skipped; segment ties
        resolve by ascending sid exactly like :meth:`knn` (within a
        cell the batch is (distance, sid)-sorted, and every cell's head
        is always on the heap). Work is recorded in ``stats`` (the
        caller's :attr:`last_stats`) like any other search.
        """
        if not self._cells and not self._overflow:
            return
        # Entries: (distance, kind, key, ...) with kind 0 = cell —
        # (dist, 0, cell key) — and kind 1 = segment cursor —
        # (dist, 1, sid, sids, order, raw distances, position), where
        # sids is the cell's sorted sid list and order/raw stay numpy:
        # only the cursor head is ever converted to Python scalars, so
        # a cell whose tail the consumer never reaches costs nothing
        # beyond its one vectorised distance pass. Comparison never
        # reaches the unorderable payload: kind separates the shapes
        # and sids are unique.
        heap: list[tuple] = []
        if self._cells:
            heap.append((self.min_distance(q, ROOT), 0, ROOT))
        if self._overflow:
            # Out-of-bbox segments have no valid cell bound: enter the
            # frontier as one pre-sorted exact-distance cursor.
            sids = sorted(self._overflow)
            stats.segments_checked += len(sids)
            raw = np.array(
                [self._registry.get(sid).distance_to(q) for sid in sids]
            )
            order = np.argsort(raw, kind="stable")
            head = int(order[0])
            heap.append((float(raw[head]), 1, sids[head], sids, order, raw, 0))
        heapq.heapify(heap)
        while heap:
            entry = heapq.heappop(heap)
            if entry[1]:
                dist, _, sid, sids, order, raw, position = entry
                yield sid, dist
                position += 1
                if position < len(order):
                    head = int(order[position])
                    heapq.heappush(
                        heap,
                        (float(raw[head]), 1, sids[head], sids, order, raw,
                         position),
                    )
                continue
            cell = self._cells.get(entry[2])
            if cell is None:
                continue
            stats.cells_visited += 1
            if cell.segments:
                sids, array = self._cell_view(cell)
                stats.segments_checked += len(sids)
                raw = array.distances_to(q)
                # Stable sort on distance keeps ascending-sid ties
                # (sids is sorted), giving the (distance, sid) order
                # knn's candidate heap produces.
                order = np.argsort(raw, kind="stable")
                head = int(order[0])
                heapq.heappush(
                    heap, (float(raw[head]), 1, sids[head], sids, order, raw, 0)
                )
            for child in cell.children:
                heapq.heappush(heap, (self.min_distance(q, child), 0, child))

    def _check_cell(
        self, q: Coord, key: CellKey, candidates: KnnCandidates,
        stats: SearchStats,
    ) -> None:
        """Compute exact distances for every segment stored in ``key``.

        One vectorised pass over the cell's cached
        :class:`~repro.geo.vectorized.SegmentArray` replaces the old
        per-segment Python distance loop, for every search strategy at
        once; distances already at or beyond θ_K are filtered on the
        numpy side before they reach the candidate heap (``offer``
        rejects non-improving candidates, so the filter is pure
        short-circuiting). Ascending-sid offer order keeps boundary
        ties resolved exactly like the linear baseline.
        """
        cell = self._cells.get(key)
        if cell is None:
            return
        stats.cells_visited += 1
        if not cell.segments:
            return
        sids, array = self._cell_view(cell)
        stats.segments_checked += len(sids)
        distances = array.distances_to(q)
        if candidates.full:
            positions = np.flatnonzero(distances < candidates.threshold)
        else:
            positions = range(len(sids))
        for position in positions:
            candidates.offer(sids[position], float(distances[position]))

    def _existing_children(self, key: CellKey) -> set[CellKey]:
        cell = self._cells.get(key)
        return cell.children if cell is not None else set()

    def _locate_start(self, q: Coord) -> CellKey:
        """Deepest existing cell on the ancestor path of ``q`` (Alg. 3 line 1)."""
        fx, fy = self._finest_coords(q)
        current = ROOT
        for level in range(1, self.levels):
            shift = self._finest - level
            child = (level, fx >> shift, fy >> shift)
            if child in self._cells:
                current = child
            else:
                break
        return current

    # -- strategy: top-down ---------------------------------------------------------

    def _search_top_down(
        self, q: Coord, candidates: KnnCandidates, stats: SearchStats
    ) -> None:
        heap: list[tuple[float, CellKey]] = [(0.0, ROOT)]
        while heap:
            dist, key = heapq.heappop(heap)
            if candidates.full and dist > candidates.threshold:
                break
            self._check_cell(q, key, candidates, stats)
            for child in self._existing_children(key):
                child_dist = self.min_distance(q, child)
                if not candidates.full or child_dist <= candidates.threshold:
                    heapq.heappush(heap, (child_dist, child))

    # -- strategy: bottom-up ----------------------------------------------------------

    def _search_bottom_up(
        self, q: Coord, candidates: KnnCandidates, stats: SearchStats
    ) -> None:
        """Climb from the query's finest cell, exploring exposed subtrees.

        At each level up, the newly reachable region (the parent minus
        the already-explored child) is searched best-first before
        climbing further.
        """
        visited: set[CellKey] = set()
        current: CellKey | None = self._locate_start(q)
        while current is not None:
            self._explore_subtree(q, current, candidates, visited, stats)
            current = self.parent_of(current)

    def _explore_subtree(
        self,
        q: Coord,
        root: CellKey,
        candidates: KnnCandidates,
        visited: set[CellKey],
        stats: SearchStats,
    ) -> None:
        if root in visited:
            heap: list[tuple[float, CellKey]] = [
                (self.min_distance(q, child), child)
                for child in self._existing_children(root)
                if child not in visited
            ]
            heapq.heapify(heap)
        else:
            heap = [(self.min_distance(q, root), root)]
        while heap:
            dist, key = heapq.heappop(heap)
            if key in visited:
                continue
            if candidates.full and dist > candidates.threshold:
                continue
            visited.add(key)
            self._check_cell(q, key, candidates, stats)
            for child in self._existing_children(key):
                if child not in visited:
                    child_dist = self.min_distance(q, child)
                    if not candidates.full or child_dist <= candidates.threshold:
                        heapq.heappush(heap, (child_dist, child))

    # -- strategy: bottom-up-down (Algorithm 3) -----------------------------------------

    def _search_bottom_up_down(
        self, q: Coord, candidates: KnnCandidates, stats: SearchStats
    ) -> None:
        stack: list[tuple[CellKey, float]] = []
        queue: list[tuple[float, CellKey]] = []
        visited: set[CellKey] = set()
        root_access = False

        start = self._locate_start(q)
        stack.append((start, 0.0))

        while stack or queue:
            if not root_access:
                if not stack:
                    # The bottom-up phase exhausted without an explicit
                    # root hit (start == ROOT); switch to the queue.
                    root_access = True
                    continue
                key, dist = stack.pop()
                if key in visited:
                    continue
                if candidates.full and dist > candidates.threshold:
                    continue
            else:
                if not queue:
                    break
                dist, key = heapq.heappop(queue)
                if key in visited:
                    continue
                if candidates.full and dist > candidates.threshold:
                    break  # Theorem 4: nothing closer can remain.
            visited.add(key)
            self._check_cell(q, key, candidates, stats)

            parent = self.parent_of(key)
            if not root_access and parent is not None and parent not in visited:
                if parent == ROOT:
                    root_access = True
                    heapq.heappush(queue, (0.0, parent))
                else:
                    stack.append((parent, 0.0))
            if key == ROOT:
                root_access = True

            fresh: list[tuple[CellKey, float]] = []
            for child in self._existing_children(key):
                if child in visited:
                    continue
                child_dist = self.min_distance(q, child)
                if candidates.full and child_dist > candidates.threshold:
                    continue  # safe to prune at push time (Theorem 4)
                fresh.append((child, child_dist))
            if root_access:
                for child, child_dist in fresh:
                    heapq.heappush(queue, (child_dist, child))
            else:
                # Push farthest first so the nearest child pops first,
                # checking "the more promising finer-grained grid cells
                # earlier" as the paper prescribes.
                fresh.sort(key=lambda item: item[1], reverse=True)
                stack.extend(fresh)

            if root_access and stack:
                # The parent-before-children push order should leave the
                # stack empty by the time the root is reached; transfer
                # any leftovers so no candidate subtree is dropped.
                for leftover, leftover_dist in stack:
                    heapq.heappush(queue, (leftover_dist, leftover))
                stack.clear()
