"""Deep property-based tests (hypothesis) for the core invariants.

These complement the per-module unit tests by exercising randomly
generated inputs against the properties the paper's correctness rests
on:

* editable trajectories keep their segment index exactly synchronised
  through arbitrary edit sequences;
* intra-trajectory modification realises *any* valid PF perturbation
  exactly;
* best-fit cell placement satisfies Definition 11;
* CSV round-trips preserve data;
* signature weights behave as the formula dictates.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.edits import EditableTrajectory
from repro.core.local_mechanism import PFPerturbation
from repro.core.modification import IntraTrajectoryModifier, make_index_factory
from repro.core.signature import SignatureExtractor
from repro.geo.geometry import BBox
from repro.index.hierarchical import HierarchicalGridIndex
from repro.index.linear import LinearSegmentIndex
from repro.trajectory.io import read_csv, write_csv
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset

coords_strategy = st.lists(
    st.tuples(st.integers(0, 40), st.integers(0, 40)),
    min_size=2,
    max_size=25,
)


def build_trajectory(coords, object_id="t"):
    return Trajectory(
        object_id,
        [Point(float(x) * 10, float(y) * 10, 60.0 * i) for i, (x, y) in enumerate(coords)],
    )


class TestEditableTrajectoryConsistency:
    """After any edit sequence: index contents == linked-list segments."""

    def check_consistency(self, editable):
        trajectory = editable.to_trajectory()
        expected_segments = sorted(
            (a.coord, b.coord) for _, a, b in trajectory.segments()
        )
        indexed = sorted(
            (editable.index.segment(sid).a, editable.index.segment(sid).b)
            for sid in editable._node_by_sid
        )
        assert indexed == expected_segments
        assert len(editable.index) == max(len(trajectory) - 1, 0)
        assert len(editable) == len(trajectory)

    @settings(max_examples=40, deadline=None)
    @given(coords=coords_strategy, seed=st.integers(0, 9999), n_ops=st.integers(1, 15))
    def test_random_edit_sequences(self, coords, seed, n_ops):
        rng = random.Random(seed)
        editable = EditableTrajectory(
            build_trajectory(coords), LinearSegmentIndex()
        )
        for _ in range(n_ops):
            op = rng.random()
            locations = sorted(editable._nodes_by_loc)
            if op < 0.4 and len(editable.index) > 0:
                # Insert a random location into its nearest segment.
                loc = (float(rng.randint(0, 40)) * 10, float(rng.randint(0, 40)) * 10)
                hits = editable.index.knn(loc, 1)
                editable.insert_into_segment(loc, hits[0][0])
            elif op < 0.7 and locations:
                loc = rng.choice(locations)
                editable.delete_cheapest(loc, rng.randint(1, 2))
            elif op < 0.9 and locations:
                loc = rng.choice(locations)
                editable.delete_all(loc)
            else:
                loc = (float(rng.randint(0, 40)) * 10, float(rng.randint(0, 40)) * 10)
                editable.append(loc)
            self.check_consistency(editable)

    @settings(max_examples=30, deadline=None)
    @given(coords=coords_strategy)
    def test_utility_loss_non_negative_monotone(self, coords):
        editable = EditableTrajectory(
            build_trajectory(coords), LinearSegmentIndex()
        )
        previous = 0.0
        for loc in sorted(editable._nodes_by_loc)[:5]:
            editable.delete_cheapest(loc, 1)
            assert editable.total_utility_loss >= previous - 1e-9
            previous = editable.total_utility_loss


class TestModificationRealisesPerturbations:
    @settings(max_examples=30, deadline=None)
    @given(
        coords=coords_strategy,
        seed=st.integers(0, 9999),
    )
    def test_arbitrary_pf_targets_satisfied(self, coords, seed):
        """Any target PF over existing locations is realised exactly."""
        trajectory = build_trajectory(coords)
        pf = trajectory.point_frequencies()
        rng = random.Random(seed)
        locations = sorted(pf)[:4]
        original = {loc: pf[loc] for loc in locations}
        perturbed = {loc: max(0, pf[loc] + rng.randint(-3, 3)) for loc in locations}
        perturbation = PFPerturbation(
            object_id="t",
            original=original,
            perturbed=perturbed,
            stage1_mean_noise=0.0,
            epsilon=1.0,
        )
        modifier = IntraTrajectoryModifier(make_index_factory("linear"))
        modified, report = modifier.apply(trajectory, perturbation)
        new_pf = modified.point_frequencies()
        for loc, target in perturbed.items():
            assert new_pf.get(loc, 0) == target, loc
        assert report.utility_loss >= 0.0

    @settings(max_examples=20, deadline=None)
    @given(coords=coords_strategy, seed=st.integers(0, 9999))
    def test_backends_agree_on_realised_distribution(self, coords, seed):
        """All index backends realise the same PF (costs may tie-break
        differently, but the published frequencies are identical)."""
        trajectory = build_trajectory(coords)
        pf = trajectory.point_frequencies()
        rng = random.Random(seed)
        loc = sorted(pf)[0]
        perturbation = PFPerturbation(
            object_id="t",
            original={loc: pf[loc]},
            perturbed={loc: max(0, pf[loc] + rng.choice([-2, -1, 1, 2]))},
            stage1_mean_noise=0.0,
            epsilon=1.0,
        )
        outcomes = set()
        for backend in ("linear", "uniform", "hierarchical"):
            modifier = IntraTrajectoryModifier(
                make_index_factory(backend, levels=6, granularity=32)
            )
            modified, _ = modifier.apply(trajectory, perturbation)
            outcomes.add(modified.point_frequencies().get(loc, 0))
        assert len(outcomes) == 1


class TestBestFitProperty:
    BOX = BBox(0.0, 0.0, 1024.0, 1024.0)

    @settings(max_examples=60, deadline=None)
    @given(
        ax=st.floats(0, 1023.9), ay=st.floats(0, 1023.9),
        bx=st.floats(0, 1023.9), by=st.floats(0, 1023.9),
    )
    def test_definition_11(self, ax, ay, bx, by):
        """Both endpoints share the best-fit cell; at the next finer
        level they do not (unless best-fit is already the finest)."""
        index = HierarchicalGridIndex(self.BOX, levels=6)
        level, ix, iy = index.best_fit_cell((ax, ay), (bx, by))

        def cell_at(level_, p):
            fx, fy = index._finest_coords(p)
            shift = index._finest - level_
            return (fx >> shift, fy >> shift)

        assert cell_at(level, (ax, ay)) == (ix, iy)
        assert cell_at(level, (bx, by)) == (ix, iy)
        if level < index._finest:
            finer_a = cell_at(level + 1, (ax, ay))
            finer_b = cell_at(level + 1, (bx, by))
            assert finer_a != finer_b

    @settings(max_examples=40, deadline=None)
    @given(ax=st.floats(0, 1023.9), ay=st.floats(0, 1023.9))
    def test_degenerate_segment_lands_at_finest(self, ax, ay):
        index = HierarchicalGridIndex(self.BOX, levels=6)
        level, _, _ = index.best_fit_cell((ax, ay), (ax, ay))
        assert level == index._finest


class TestCsvRoundTripProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.floats(-1e5, 1e5, allow_nan=False),
                st.floats(-1e5, 1e5, allow_nan=False),
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_round_trip_preserves_everything(self, data, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("csv")
        points = [Point(x, y, float(i)) for i, (x, y) in enumerate(data)]
        dataset = TrajectoryDataset([Trajectory("obj", points)])
        target = tmp / "round.csv"
        write_csv(dataset, target)
        restored = read_csv(target)
        assert len(restored) == 1
        for p, q in zip(dataset[0], restored[0], strict=True):
            assert q.x == pytest.approx(p.x, abs=1e-3)
            assert q.y == pytest.approx(p.y, abs=1e-3)
            assert q.t == pytest.approx(p.t, abs=1e-3)


class TestSignatureWeightProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        coords_a=coords_strategy,
        coords_b=coords_strategy,
    )
    def test_weights_non_negative_and_shared_everywhere_is_zero(
        self, coords_a, coords_b
    ):
        ds = TrajectoryDataset(
            [build_trajectory(coords_a, "a"), build_trajectory(coords_b, "b")]
        )
        extractor = SignatureExtractor(m=3)
        tf = ds.trajectory_frequencies()
        for trajectory in ds:
            weights = extractor.weights(trajectory, tf, len(ds))
            for loc, weight in weights.items():
                assert weight >= 0.0
                if tf[loc] == len(ds):  # visited by everyone
                    assert weight == pytest.approx(0.0)

    @settings(max_examples=30, deadline=None)
    @given(coords=coords_strategy, m=st.integers(1, 8))
    def test_signature_size_bounded(self, coords, m):
        ds = TrajectoryDataset([build_trajectory(coords, "a")])
        extractor = SignatureExtractor(m=m)
        entries = extractor.signature_of(
            ds[0], ds.trajectory_frequencies(), len(ds)
        )
        assert len(entries) <= m
        weights = [e.weight for e in entries]
        assert weights == sorted(weights, reverse=True)


class TestBatchedKnnProperty:
    """knn_batch must agree with per-query knn on every backend, for
    arbitrary segment sets and query batches (integer endpoints make
    exact distance ties frequent)."""

    segments_strategy = st.lists(
        st.tuples(
            st.integers(0, 30), st.integers(0, 30),
            st.integers(0, 30), st.integers(0, 30),
        ),
        min_size=1,
        max_size=40,
    )
    queries_strategy = st.lists(
        st.tuples(st.integers(-5, 35), st.integers(-5, 35)),
        min_size=1,
        max_size=6,
    )

    @staticmethod
    def build_index(backend):
        from repro.index.rtree import RTreeIndex
        from repro.index.uniform import UniformGridIndex

        box = BBox(0.0, 0.0, 30.0, 30.0)
        return {
            "linear": lambda: LinearSegmentIndex(),
            "uniform": lambda: UniformGridIndex(box, granularity=8),
            "hierarchical": lambda: HierarchicalGridIndex(box, levels=5),
            "rtree": lambda: RTreeIndex(leaf_capacity=4),
        }[backend]()

    @pytest.mark.parametrize(
        "backend", ["linear", "uniform", "hierarchical", "rtree"]
    )
    @settings(max_examples=25, deadline=None)
    @given(segments=segments_strategy, queries=queries_strategy, k=st.integers(1, 8))
    def test_knn_batch_agrees_with_knn(self, backend, segments, queries, k):
        index = self.build_index(backend)
        for ax, ay, bx, by in segments:
            index.insert((float(ax), float(ay)), (float(bx), float(by)))
        qs = [(float(x), float(y)) for x, y in queries]
        assert index.knn_batch(qs, k) == [index.knn(q, k) for q in qs]

    @pytest.mark.parametrize(
        "backend", ["linear", "uniform", "hierarchical", "rtree"]
    )
    @settings(max_examples=15, deadline=None)
    @given(segments=segments_strategy, queries=queries_strategy)
    def test_iter_nearest_batch_agrees(self, backend, segments, queries):
        index = self.build_index(backend)
        for ax, ay, bx, by in segments:
            index.insert((float(ax), float(ay)), (float(bx), float(by)))
        qs = [(float(x), float(y)) for x, y in queries]
        expected = [list(index.iter_nearest(q)) for q in qs]
        assert [list(it) for it in index.iter_nearest_batch(qs)] == expected
