"""The built-in AST rules.

Two families live here. The syntactic rules — DP001, DET001, DET002,
EPS001 — are single-module pattern checks over the shared
:class:`~repro.analysis.visitor.ModuleInfo` facts. The flow-sensitive
rules — EPS002, LIFE001, LEDGER001, RACE002 — run a worklist dataflow
(:mod:`repro.analysis.dataflow`) over per-function CFGs
(:mod:`repro.analysis.cfg`), stitched interprocedurally through the
call-graph summaries in :mod:`repro.analysis.callgraph` (which also
hosts RACE001, the original cross-module rule).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .callgraph import (
    FuncKey,
    FunctionTable,
    Summaries,
    lock_name,
    param_names,
)
from .cfg import CFG, Node, build_cfg
from .dataflow import Solution, Transfer, fixpoint
from .findings import Finding
from .rules import Rule, rule
from .visitor import ModuleInfo, Project

# ---------------------------------------------------------------------------
# DP001 — unledgered noise
# ---------------------------------------------------------------------------

#: Modules allowed to draw noise without their own ledger calls — they
#: are the sanctioned mechanism primitives; accounting happens one
#: level up, at their call sites.
SANCTIONED_MODULES = frozenset(
    {
        "repro.core.laplace",
        "repro.core.global_mechanism",
        "repro.core.local_mechanism",
    }
)

#: Attribute-call names that draw noise. ``perturb_trajectory`` is
#: deliberately absent: it is the *recorded* high-level entry point the
#: engine layer calls, not a raw draw.
_DRAW_ATTRS = frozenset({"laplace", "exponential", "perturb", "perturb_count"})

#: Fully-qualified callables that draw noise.
_DRAW_QUALIFIED = frozenset(
    {
        "repro.core.laplace.laplace_noise",
        "repro.core.laplace.LaplaceMechanism",
    }
)

#: A scope containing any of these attribute calls is considered to
#: thread its draws through the composition ledger / accountant.
_LEDGER_ATTRS = frozenset({"record", "record_parallel", "spend"})


class _DrawCollector(ast.NodeVisitor):
    """Collect noise-draw call sites, grouped by innermost ClassDef
    (or the module for top-level code), and whether each scope also
    contains a ledger call."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self._class_stack: list[ast.ClassDef] = []
        #: scope key (ClassDef node or None for module level)
        self.draws: dict[ast.ClassDef | None, list[ast.Call]] = {}
        self.ledgered: set[ast.ClassDef | None] = set()

    def _scope(self) -> ast.ClassDef | None:
        return self._class_stack[-1] if self._class_stack else None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        scope = self._scope()
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _LEDGER_ATTRS:
                self.ledgered.add(scope)
            if func.attr in _DRAW_ATTRS:
                self.draws.setdefault(scope, []).append(node)
        qualified = self.module.qualified(func)
        if qualified in _DRAW_QUALIFIED:
            self.draws.setdefault(scope, []).append(node)
        self.generic_visit(node)


@rule
class UnledgeredNoise(Rule):
    code = "DP001"
    name = "unledgered noise"
    summary = (
        "noise is drawn outside the sanctioned mechanism modules by a "
        "scope that never records to the composition ledger"
    )
    rationale = (
        "Every Laplace draw consumes privacy budget; a draw that is not "
        "recorded via CompositionLedger.record/record_parallel or "
        "PrivacyAccountant.spend silently under-reports the true epsilon "
        "of a published dataset."
    )
    example = "noisy = mechanism.perturb_count(count, rng)  # no ledger in scope"

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if module.name in SANCTIONED_MODULES:
                continue
            collector = _DrawCollector(module)
            collector.visit(module.tree)
            for scope, calls in collector.draws.items():
                if scope in collector.ledgered:
                    continue
                where = f"class {scope.name}" if scope is not None else "module scope"
                for call in calls:
                    yield self.finding(
                        module,
                        call,
                        f"noise draw in {where} without a ledger "
                        f"record/record_parallel/spend call; thread a "
                        f"CompositionLedger or move the draw into a "
                        f"sanctioned mechanism module",
                    )


# ---------------------------------------------------------------------------
# DET001 — bare RNG
# ---------------------------------------------------------------------------

#: Explicit-state constructors in numpy.random that are fine to call.
_NUMPY_SEEDED = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937"}
)

#: stdlib ``random`` attributes that create explicit-state instances.
_STDLIB_SEEDED = frozenset({"Random", "SystemRandom"})


@rule
class BareRng(Rule):
    code = "DET001"
    name = "bare RNG"
    summary = (
        "global-state RNG call (stdlib random.* module function or "
        "np.random.* legacy API) instead of a threaded seeded generator"
    )
    rationale = (
        "All randomness must flow from derive_seed/local_stream_seed "
        "through explicit random.Random / numpy Generator instances; a "
        "global-state call breaks byte-identity between runs and between "
        "the serial and wave-parallel engines."
    )
    example = "value = random.random()  # use rng.random() with a seeded rng"

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                qualified = module.qualified(node.func)
                if qualified is None:
                    continue
                finding = self._classify(module, node, qualified)
                if finding is not None:
                    yield finding

    def _classify(
        self, module: ModuleInfo, node: ast.Call, qualified: str
    ) -> Finding | None:
        if qualified.startswith("random."):
            attr = qualified.split(".", 1)[1]
            if "." not in attr and attr not in _STDLIB_SEEDED:
                return self.finding(
                    module,
                    node,
                    f"global-state stdlib RNG call random.{attr}(); "
                    f"use an explicit random.Random(seed) instance",
                )
        if qualified.startswith("numpy.random."):
            attr = qualified.split("numpy.random.", 1)[1]
            if "." not in attr and attr not in _NUMPY_SEEDED:
                return self.finding(
                    module,
                    node,
                    f"legacy global-state numpy RNG call "
                    f"np.random.{attr}(); use numpy.random.default_rng(seed)",
                )
        return None


# ---------------------------------------------------------------------------
# DET002 — nondeterminism sources
# ---------------------------------------------------------------------------

#: Wall-clock reads that leak into output if called on a committed path.
#: ``time.perf_counter``/``time.monotonic`` are allowed: they only feed
#: timing reports, never data, and the reports label them as timings.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@rule
class NondeterminismSource(Rule):
    code = "DET002"
    name = "nondeterminism source"
    summary = (
        "wall-clock read or direct iteration over an unordered set in "
        "code that feeds committed output"
    )
    rationale = (
        "Byte-identical reruns are the repo's determinism contract; "
        "wall-clock values and set iteration order vary between "
        "processes (hash randomization) and so cannot appear on any "
        "path that produces committed output."
    )
    example = "for loc in {a, b, c}:  # iterate sorted(...) instead"

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    qualified = module.qualified(node.func)
                    if qualified in _WALL_CLOCK:
                        yield self.finding(
                            module,
                            node,
                            f"wall-clock read {qualified}(); thread an "
                            f"explicit timestamp parameter instead "
                            f"(perf_counter is allowed for timings)",
                        )
                    continue
                iters: list[ast.expr] = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    if self._is_unordered(module, it):
                        yield self.finding(
                            module,
                            it,
                            "iteration directly over a set has "
                            "nondeterministic order; wrap in sorted(...)",
                        )

    @staticmethod
    def _is_unordered(module: ModuleInfo, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            qualified = module.qualified(node.func)
            return qualified in {"set", "frozenset"}
        return False


# ---------------------------------------------------------------------------
# EPS001 — epsilon None-vs-zero confusion
# ---------------------------------------------------------------------------


def _is_epsilon_name(identifier: str) -> bool:
    lowered = identifier.lower()
    return (
        "epsilon" in lowered
        or lowered == "eps"
        or lowered.startswith("eps_")
        or lowered.endswith("_eps")
    )


def _epsilon_expr(node: ast.expr) -> str | None:
    """The identifier when ``node`` is a bare epsilon-named Name or
    Attribute chain, else None."""
    if isinstance(node, ast.Name) and _is_epsilon_name(node.id):
        return node.id
    if isinstance(node, ast.Attribute) and _is_epsilon_name(node.attr):
        return node.attr
    return None


def _is_zero(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and type(node.value) in (int, float) and node.value == 0


@rule
class EpsilonTruthiness(Rule):
    code = "EPS001"
    name = "epsilon None-vs-zero confusion"
    summary = (
        "epsilon compared with ==/!= 0 or used for truthiness instead "
        "of an `is None` check"
    )
    rationale = (
        "A disabled stage is epsilon=None, not epsilon=0: treating 0.0 "
        "and None alike either spends budget that was never requested "
        "or silently drops a requested mechanism (the PR 5 epsilon-edge "
        "bug)."
    )
    example = "mech = Mechanism(eps) if eps else None  # use `if eps is not None`"

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                yield from self._check_node(module, node)

    def _check_node(self, module: ModuleInfo, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:], strict=False):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for eps_side, other in ((left, right), (right, left)):
                    name = _epsilon_expr(eps_side)
                    if name is not None and _is_zero(other):
                        yield self.finding(
                            module,
                            node,
                            f"epsilon parameter {name!r} compared with "
                            f"==/!= 0; disabled means None — use "
                            f"`is None` / `is not None`",
                        )
            return
        tests: list[ast.expr] = []
        if isinstance(node, (ast.If, ast.While, ast.IfExp)):
            tests.append(node.test)
        elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            tests.append(node.operand)
        elif isinstance(node, ast.BoolOp):
            tests.extend(node.values)
        for test in tests:
            name = _epsilon_expr(test)
            if name is not None:
                yield self.finding(
                    module,
                    test,
                    f"truthiness test on epsilon parameter {name!r} "
                    f"conflates 0.0 with None; use `is not None`",
                )


# ---------------------------------------------------------------------------
# Flow-sensitive rules: shared helpers
# ---------------------------------------------------------------------------

#: Attribute calls that terminate a resource.
_TERMINAL_ATTRS = frozenset({"close", "shutdown", "__exit__"})
#: Attribute calls that settle a budget reservation.
_SETTLE_ATTRS = frozenset({"commit", "release"})


def _iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str | None, ast.AST]]:
    """``(innermost_class_name, function_node)`` for every function in
    the module, including methods and nested functions."""

    def walk(body: list[ast.stmt], cls: str | None):
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from walk(node.body, node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls, node
                yield from walk(node.body, cls)
            elif isinstance(node, (ast.If, ast.Try)):
                # conditionally-defined functions (TYPE_CHECKING etc.)
                yield from walk(node.body, cls)
                for handler in getattr(node, "handlers", []):
                    yield from walk(handler.body, cls)
                yield from walk(node.orelse, cls)
                yield from walk(getattr(node, "finalbody", []), cls)

    yield from walk(tree.body, None)


def _stmt_parts(stmt: ast.AST) -> list[ast.AST]:
    """The AST evaluated *at* this CFG node. Compound statements only
    contribute their header expression — their bodies are separate
    nodes — and nested definitions are opaque."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(
        stmt,
        (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
    ):
        return []
    return [stmt]


def _walk_parts(stmt: ast.AST) -> Iterator[ast.AST]:
    for part in _stmt_parts(stmt):
        yield from ast.walk(part)


def _parent_pairs(root: ast.AST) -> Iterator[tuple[ast.AST, ast.AST]]:
    for child in ast.iter_child_nodes(root):
        yield root, child
        yield from _parent_pairs(child)


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        return "<expr>"


def _nested_scope_names(func: ast.AST) -> set[str]:
    """Names referenced inside nested functions/lambdas of ``func`` —
    a closure may outlive the frame, so these cannot be tracked."""
    names: set[str] = set()
    for node in ast.walk(func):
        if node is func:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            for inner in ast.walk(node):
                if isinstance(inner, ast.Name):
                    names.add(inner.id)
    return names


def _finding_at(
    rule_obj: Rule, module: ModuleInfo, line: int, col: int, message: str
) -> Finding:
    return Finding(
        code=rule_obj.code,
        path=module.path,
        line=line,
        col=col,
        message=message,
        snippet=module.line(line),
    )


# ---------------------------------------------------------------------------
# LIFE001 — resource lifecycle
# ---------------------------------------------------------------------------


def _close_defining_classes(project: Project) -> frozenset[str]:
    """Class names (project-wide) that define a terminal ``close()``."""
    names: set[str] = set()
    for module in project.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "close"
                for item in node.body
            ):
                names.add(node.name)
    return frozenset(names)


class _LifecycleTransfer(Transfer):
    """Lattice: ``v:<name> -> {rid...}`` bindings plus ``s:<rid> ->
    subset of {open, closed, escaped}`` allocation statuses. ``escaped``
    silences an allocation (returned/stored/passed to unknown code —
    its lifetime is no longer this frame's responsibility)."""

    def __init__(
        self,
        module: ModuleInfo,
        cls: str | None,
        func: ast.AST,
        resources: frozenset[str],
        summaries: Summaries,
    ) -> None:
        self.module = module
        self.cls = cls
        self.resources = resources
        self.summaries = summaries
        self.untracked = _nested_scope_names(func)
        #: rid -> (line, var, class name); filled during transfer.
        self.allocs: dict[str, tuple[int, str, str]] = {}

    # -- allocation / close discovery ----------------------------------

    def _alloc_class(self, expr: ast.AST) -> str | None:
        if not isinstance(expr, ast.Call):
            return None
        dotted = self.module.qualified(expr.func) or self.module.dotted(expr.func) or ""
        tail = dotted.rpartition(".")[2]
        if tail in self.resources:
            return tail
        key = self.summaries.resolve_call(self.module, self.cls, expr)
        if key is not None:
            summary = self.summaries.for_key(key)
            if summary is not None and summary.returns_resource:
                return summary.returns_resource
        return None

    def _closing_args(self, stmt: ast.AST) -> set[int]:
        """``id()`` of argument Name nodes handed to a callee that
        closes the corresponding parameter."""
        closing: set[int] = set()
        for node in _walk_parts(stmt):
            if not isinstance(node, ast.Call):
                continue
            key = self.summaries.resolve_call(self.module, self.cls, node)
            if key is None:
                continue
            summary = self.summaries.for_key(key)
            if summary is None or not summary.closes:
                continue
            names = param_names(self.summaries.table.functions[key].node)
            if key.cls is not None and names and names[0] == "self":
                names = names[1:]
            for position, arg in enumerate(node.args):
                if (
                    position < len(names)
                    and isinstance(arg, ast.Name)
                    and names[position] in summary.closes
                ):
                    closing.add(id(arg))
            for keyword in node.keywords:
                if (
                    keyword.arg in summary.closes
                    and isinstance(keyword.value, ast.Name)
                ):
                    closing.add(id(keyword.value))
        return closing

    def _close_receivers(self, stmt: ast.AST) -> set[str]:
        """Variables whose resource this statement closes."""
        receivers: set[str] = set()
        for node in _walk_parts(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _TERMINAL_ATTRS
                and isinstance(node.func.value, ast.Name)
            ):
                receivers.add(node.func.value.id)
            elif isinstance(node, ast.Name) and id(node) in self._closing_ids:
                receivers.add(node.id)
        return receivers

    def _escaping_names(self, stmt: ast.AST, tracked: set[str]) -> set[str]:
        """Tracked variables this statement lets out of the frame."""
        escaped: set[str] = set()
        alias_value: ast.AST | None = None
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            alias_value = stmt.value
        for part in _stmt_parts(stmt):
            for parent, child in _parent_pairs(part):
                if not (
                    isinstance(child, ast.Name)
                    and isinstance(child.ctx, ast.Load)
                    and child.id in tracked
                ):
                    continue
                if id(child) in self._closing_ids:
                    continue
                if isinstance(parent, ast.Attribute) and parent.value is child:
                    continue  # receiver position: s.append(...), s.path
                if isinstance(parent, ast.withitem):
                    continue
                if isinstance(parent, (ast.Compare, ast.BoolOp, ast.UnaryOp)):
                    continue  # identity/truthiness tests
                if isinstance(parent, ast.Call) and parent.func is child:
                    continue
                if isinstance(parent, ast.Assign) and child is alias_value:
                    continue  # plain `alias = s` — tracked as an alias
                escaped.add(child.id)
        return escaped

    # -- transfer -------------------------------------------------------

    def _set_status(self, state, name: str, status: frozenset[str]):
        rids = state.get(f"v:{name}", frozenset())
        if not rids:
            return state
        updated = dict(state)
        for rid in rids:
            updated[f"s:{rid}"] = status
        return updated

    def transfer(self, node: Node, state):
        stmt = node.stmt
        if node.kind == "with-exit":
            post = state
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name):
                    post = self._set_status(
                        post, item.optional_vars.id, frozenset({"closed"})
                    )
                elif isinstance(item.context_expr, ast.Name):
                    post = self._set_status(
                        post, item.context_expr.id, frozenset({"closed"})
                    )
                else:
                    post = self._set_status(
                        post,
                        f"@with{item.context_expr.lineno}",
                        frozenset({"closed"}),
                    )
            return post, post
        if node.kind != "stmt":
            return state, state

        self._closing_ids = self._closing_args(stmt)
        tracked = {k[2:] for k in state if k.startswith("v:")}

        pre = state
        for name in self._escaping_names(stmt, tracked):
            pre = self._set_status(pre, name, frozenset({"escaped"}))
        post = pre
        for name in self._close_receivers(stmt):
            post = self._set_status(post, name, frozenset({"closed"}))
        post_exc = post  # a failing close still counts as terminal

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            updated = dict(post)
            for item in stmt.items:
                # `with tracked:` — the only failure this node's exc
                # edge models is __enter__ raising, and an __enter__
                # either succeeds or cleans up after itself, so the
                # unwind counts as handled.
                if isinstance(item.context_expr, ast.Name):
                    post_exc = self._set_status(
                        post_exc, item.context_expr.id, frozenset({"closed"})
                    )
                cls_name = self._alloc_class(item.context_expr)
                if cls_name is None:
                    continue
                if isinstance(item.optional_vars, ast.Name):
                    var = item.optional_vars.id
                    if var in self.untracked:
                        continue
                else:
                    var = f"@with{item.context_expr.lineno}"
                rid = f"{item.context_expr.lineno}:{var}"
                self.allocs[rid] = (item.context_expr.lineno, var, cls_name)
                updated[f"v:{var}"] = frozenset({rid})
                updated[f"s:{rid}"] = frozenset({"open"})
            # a failing constructor means the resource is never held
            return updated, post_exc
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            var = stmt.targets[0].id
            cls_name = self._alloc_class(stmt.value)
            if cls_name is not None and var not in self.untracked:
                rid = f"{stmt.value.lineno}:{var}"
                self.allocs[rid] = (stmt.value.lineno, var, cls_name)
                updated = dict(post)
                updated[f"v:{var}"] = frozenset({rid})
                updated[f"s:{rid}"] = frozenset({"open"})
                return updated, post_exc
            if isinstance(stmt.value, ast.Name) and f"v:{stmt.value.id}" in post:
                updated = dict(post)
                updated[f"v:{var}"] = post[f"v:{stmt.value.id}"]
                return updated, post_exc
            if f"v:{var}" in post:
                updated = dict(post)
                del updated[f"v:{var}"]
                return updated, post_exc
        return post, post_exc


@rule
class ResourceLifecycle(Rule):
    code = "LIFE001"
    name = "resource lifecycle"
    summary = (
        "an object with a terminal close() does not reach close()/"
        "__exit__ on every path (including exception paths), or is "
        "used after being closed"
    )
    rationale = (
        "SpillStore, BatchAnonymizer, and the serve-layer handles hold "
        "files, temp directories, and spooled jobs; a path — especially "
        "an exception path — that skips close() leaks them, and a "
        "use-after-close writes to a torn-down resource. Wrap the "
        "lifetime in `with` or a try/finally."
    )
    example = "store = SpillStore(dir); store.append(row)  # raise leaks the store"

    def check(self, project: Project) -> Iterable[Finding]:
        resources = _close_defining_classes(project)
        if not resources:
            return
        summaries = Summaries(project, resource_classes=resources)
        for module in project.modules:
            for cls, func in _iter_functions(module.tree):
                yield from self._check_function(
                    module, cls, func, resources, summaries
                )

    def _mentions_resource(self, func: ast.AST, resources: frozenset[str]) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and node.id in resources:
                return True
            if isinstance(node, ast.Attribute) and node.attr in resources:
                return True
            if isinstance(node, ast.Call):
                return True  # a factory call may allocate
        return False

    def _check_function(
        self,
        module: ModuleInfo,
        cls: str | None,
        func: ast.AST,
        resources: frozenset[str],
        summaries: Summaries,
    ) -> Iterator[Finding]:
        if func.name == "close" or not self._mentions_resource(func, resources):
            return
        transfer = _LifecycleTransfer(module, cls, func, resources, summaries)
        cfg = build_cfg(func)
        solution = fixpoint(cfg, transfer)
        if not transfer.allocs:
            return
        yield from self._leaks(cfg, solution, transfer, module, func)
        yield from self._use_after_close(cfg, solution, transfer, module)

    def _leaks(
        self,
        cfg: CFG,
        solution: Solution,
        transfer: _LifecycleTransfer,
        module: ModuleInfo,
        func: ast.AST,
    ) -> Iterator[Finding]:
        leaking: dict[str, list[str]] = {}
        for exit_node, where, must in (
            # Normal exit: flag only when *no* normal path closes
            # (conditional closes join to {open, closed} and stay
            # quiet). Exception exit: every `open` contribution is a
            # distinct raising statement whose unwind skips close —
            # post-close failures contribute `closed` — so may-open is
            # precise there.
            (cfg.exit, "normal", True),
            (cfg.raise_exit, "exception", False),
        ):
            state = solution.in_state(exit_node)
            if state is None:
                continue
            for key, status in state.items():
                if not key.startswith("s:") or "escaped" in status:
                    continue
                if status == frozenset({"open"}) or (
                    not must and "open" in status
                ):
                    leaking.setdefault(key[2:], []).append(where)
        for rid, wheres in sorted(leaking.items()):
            line, var, cls_name = transfer.allocs[rid]
            paths = " and ".join(wheres)
            yield _finding_at(
                self,
                module,
                line,
                getattr(func, "col_offset", 0),
                f"{cls_name} `{var}` opened here never reaches close()/"
                f"__exit__ on {paths} paths of {func.name}(); wrap the "
                f"lifetime in `with` or add a try/finally",
            )

    def _use_after_close(
        self,
        cfg: CFG,
        solution: Solution,
        transfer: _LifecycleTransfer,
        module: ModuleInfo,
    ) -> Iterator[Finding]:
        seen: set[tuple[int, str]] = set()
        for node in cfg.nodes:
            if node.kind != "stmt" or node.tags:
                continue
            state = solution.in_state(node)
            if state is None:
                continue
            for part in _stmt_parts(node.stmt):
                for parent, child in _parent_pairs(part):
                    if not (
                        isinstance(child, ast.Name)
                        and isinstance(child.ctx, ast.Load)
                    ):
                        continue
                    if not (
                        isinstance(parent, ast.Attribute)
                        and parent.value is child
                        and parent.attr not in _TERMINAL_ATTRS
                    ):
                        continue
                    rids = state.get(f"v:{child.id}", frozenset())
                    for rid in rids:
                        if state.get(f"s:{rid}") != frozenset({"closed"}):
                            continue
                        line, _, cls_name = transfer.allocs[rid]
                        site = (child.lineno, child.id)
                        if site in seen:
                            continue
                        seen.add(site)
                        yield _finding_at(
                            self,
                            module,
                            child.lineno,
                            child.col_offset,
                            f"`{child.id}.{parent.attr}` used after the "
                            f"{cls_name} opened at line {line} was closed "
                            f"on every path reaching here",
                        )


# ---------------------------------------------------------------------------
# LEDGER001 — reserve/commit/release pairing
# ---------------------------------------------------------------------------


def _settle_effects(summaries: Summaries) -> dict[FuncKey, set[str]]:
    """``self.<attr>``-rooted receiver texts each method settles,
    directly or through same-``self`` method calls (fixpoint)."""
    table = summaries.table
    direct: dict[FuncKey, set[str]] = {}
    calls: dict[FuncKey, list[FuncKey]] = {}
    for key, func in table.functions.items():
        texts: set[str] = set()
        callees: list[FuncKey] = []
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SETTLE_ATTRS
            ):
                text = _unparse(node.func.value)
                if text.startswith("self."):
                    texts.add(text)
            target = summaries.resolve_call(func.module, key.cls, node)
            if target is not None and target.cls == key.cls and target != key:
                callees.append(target)
        direct[key] = texts
        calls[key] = callees
    changed = True
    while changed:
        changed = False
        for key, callees in calls.items():
            for callee in callees:
                extra = direct.get(callee, set()) - direct[key]
                if extra:
                    direct[key] |= extra
                    changed = True
    return direct


class _LedgerTransfer(Transfer):
    """Lattice: reserve-receiver text -> subset of {open, settled}."""

    def __init__(
        self,
        module: ModuleInfo,
        cls: str | None,
        summaries: Summaries,
        self_settles: dict[FuncKey, set[str]],
    ) -> None:
        self.module = module
        self.cls = cls
        self.summaries = summaries
        self.self_settles = self_settles
        #: receiver text -> line of its first reserve call.
        self.reserves: dict[str, int] = {}

    def _stmt_effects(self, stmt: ast.AST) -> tuple[set[str], set[str]]:
        """``(reserved_texts, settled_texts)`` of this statement."""
        reserved: set[str] = set()
        settled: set[str] = set()
        for node in _walk_parts(stmt):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                text = _unparse(node.func.value)
                if node.func.attr == "reserve":
                    reserved.add(text)
                elif node.func.attr in _SETTLE_ATTRS:
                    settled.add(text)
            settled |= self._callee_settles(node)
        return reserved, settled

    def _callee_settles(self, call: ast.Call) -> set[str]:
        key = self.summaries.resolve_call(self.module, self.cls, call)
        if key is None:
            return set()
        settled = set()
        if key.cls is not None and key.cls == self.cls:
            settled |= self.self_settles.get(key, set())
        summary = self.summaries.for_key(key)
        if summary is not None and summary.settles:
            names = param_names(self.summaries.table.functions[key].node)
            if key.cls is not None and names and names[0] == "self":
                names = names[1:]
            for position, arg in enumerate(call.args):
                if position < len(names) and names[position] in summary.settles:
                    settled.add(_unparse(arg))
            for keyword in call.keywords:
                if keyword.arg in summary.settles:
                    settled.add(_unparse(keyword.value))
        return settled

    def transfer(self, node: Node, state):
        if node.kind not in ("stmt",):
            return state, state
        reserved, settled = self._stmt_effects(node.stmt)
        if not reserved and not settled:
            return state, state
        post = dict(state)
        for text in settled:
            if text in post:
                post[text] = frozenset({"settled"})
        post_exc = dict(post)  # a failing settle still settles
        for text in reserved:
            self.reserves.setdefault(text, node.stmt.lineno)
            post[text] = frozenset({"open"})
            # the reserve call itself failing leaves nothing reserved,
            # so the exception edge keeps the pre-reserve state
        return post, post_exc


@rule
class ReservationPairing(Rule):
    code = "LEDGER001"
    name = "reserve/commit/release pairing"
    summary = (
        "a BudgetStore.reserve is not settled by exactly one commit/"
        "release on every path out of the function (exception paths "
        "must release)"
    )
    rationale = (
        "A reservation that survives an early return or an exception "
        "pins tenant budget until a daemon restart replays the WAL; a "
        "double settle corrupts the ledger. Functions that settle on "
        "some paths must settle on all of them — put the release in a "
        "finally/except block."
    )
    example = "rid = store.reserve(t, j, eps); work(); store.commit(t, rid)  # raise leaks rid"

    def check(self, project: Project) -> Iterable[Finding]:
        summaries = Summaries(project)
        self_settles = _settle_effects(summaries)
        for module in project.modules:
            for cls, func in _iter_functions(module.tree):
                yield from self._check_function(
                    module, cls, func, summaries, self_settles
                )

    def _check_function(
        self,
        module: ModuleInfo,
        cls: str | None,
        func: ast.AST,
        summaries: Summaries,
        self_settles: dict[FuncKey, set[str]],
    ) -> Iterator[Finding]:
        if not any(
            isinstance(node, ast.Attribute) and node.attr == "reserve"
            for node in ast.walk(func)
        ):
            return
        transfer = _LedgerTransfer(module, cls, summaries, self_settles)
        cfg = build_cfg(func)
        solution = fixpoint(cfg, transfer)
        if not transfer.reserves:
            return
        # Inconsistent-handling gate: a function that only reserves is a
        # handoff (the settle lives downstream, e.g. a queue consumer);
        # flag only functions that settle somewhere yet miss a path.
        settled_somewhere = self._settles_anywhere(
            module, cls, func, summaries, self_settles
        )
        for text, line in sorted(transfer.reserves.items()):
            if text not in settled_somewhere:
                continue
            yield from self._path_findings(cfg, solution, module, func, text, line)
        yield from self._double_settles(cfg, solution, transfer, module)

    def _settles_anywhere(
        self, module, cls, func, summaries, self_settles
    ) -> set[str]:
        transfer = _LedgerTransfer(module, cls, summaries, self_settles)
        settled: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SETTLE_ATTRS
                ):
                    settled.add(_unparse(node.func.value))
                settled |= transfer._callee_settles(node)
        return settled

    def _path_findings(
        self, cfg, solution, module, func, text, line
    ) -> Iterator[Finding]:
        for exit_node, what in (
            (cfg.exit, "a normal path"),
            (cfg.raise_exit, "an exception path"),
        ):
            state = solution.in_state(exit_node)
            if state is None:
                continue
            if "open" in state.get(text, frozenset()):
                yield _finding_at(
                    self,
                    module,
                    line,
                    0,
                    f"reservation on `{text}` in {func.name}() is never "
                    f"committed or released along {what}; settle it in a "
                    f"finally/except block",
                )

    def _double_settles(
        self, cfg, solution, transfer, module
    ) -> Iterator[Finding]:
        seen: set[int] = set()
        for node in cfg.nodes:
            if node.kind != "stmt" or node.tags:
                continue
            state = solution.in_state(node)
            if state is None:
                continue
            _, settled = transfer._stmt_effects(node.stmt)
            for text in settled:
                if state.get(text) == frozenset({"settled"}) and (
                    node.stmt.lineno not in seen
                ):
                    seen.add(node.stmt.lineno)
                    yield _finding_at(
                        self,
                        module,
                        node.stmt.lineno,
                        0,
                        f"reservation on `{text}` is already settled on "
                        f"every path reaching this second commit/release",
                    )


# ---------------------------------------------------------------------------
# EPS002 — budget conservation across splits
# ---------------------------------------------------------------------------

#: Callee-name fragments that split an epsilon into shares.
_SPLIT_CALL_FRAGMENTS = ("split", "apportion")


def _epsilon_source(expr: ast.expr) -> str | None:
    """The epsilon-named identifier an arithmetic share derives from."""
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.Mult, ast.Sub, ast.Div)
    ):
        name = _epsilon_expr(expr.left)
        if name is not None:
            return name
        if isinstance(expr.op, ast.Mult):
            return _epsilon_expr(expr.right)
    return None


def _split_call_source(expr: ast.expr, module: ModuleInfo) -> str | None:
    """The source label when ``expr`` calls a splitter (``split_*`` /
    ``apportion``)."""
    if not isinstance(expr, ast.Call):
        return None
    dotted = module.dotted(expr.func) or ""
    tail = dotted.rpartition(".")[2].lower()
    if not any(fragment in tail for fragment in _SPLIT_CALL_FRAGMENTS):
        return None
    for arg in expr.args:
        name = _epsilon_expr(arg)
        if name is not None:
            return name
    return tail


class _BudgetSplitTransfer(Transfer):
    """Lattice: ``share:<var>|<src>|<line> -> {unread|read}`` per live
    share, plus ``src:<name> -> {split}`` once a source was split."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module

    @staticmethod
    def _share_keys(state, var: str) -> list[str]:
        prefix = f"share:{var}|"
        return [key for key in state if key.startswith(prefix)]

    def _new_shares(self, stmt: ast.AST) -> list[tuple[str, str, int]]:
        """``(var, source, line)`` for shares this statement creates."""
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return []
        target = stmt.targets[0]
        line = stmt.lineno
        source = _epsilon_source(stmt.value)
        if source is None:
            source = _split_call_source(stmt.value, self.module)
        if source is None:
            return []
        if isinstance(target, ast.Name):
            return [(target.id, source, line)]
        if isinstance(target, (ast.Tuple, ast.List)):
            return [
                (element.id, source, line)
                for element in target.elts
                if isinstance(element, ast.Name)
            ]
        return []

    def transfer(self, node: Node, state):
        if node.kind != "stmt":
            return state, state
        stmt = node.stmt
        new_shares = self._new_shares(stmt)
        post = dict(state)
        # Any read of a share variable marks it used (including reads
        # that derive further shares from it).
        for inner in _walk_parts(stmt):
            if (
                isinstance(inner, ast.Name)
                and isinstance(inner.ctx, ast.Load)
            ):
                for key in self._share_keys(post, inner.id):
                    post[key] = frozenset({"read"})
        # Rebinding kills the old share (the drop, if any, is reported
        # by the collect pass before the kill).
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                elements = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for element in elements:
                    if isinstance(element, ast.Name):
                        for key in self._share_keys(post, element.id):
                            del post[key]
        post_exc = dict(post)
        for var, source, line in new_shares:
            post[f"share:{var}|{source}|{line}"] = frozenset({"unread"})
            post[f"src:{source}"] = frozenset({"split"})
        return post, post_exc


@rule
class BudgetConservation(Rule):
    code = "EPS002"
    name = "budget conservation across splits"
    summary = (
        "an epsilon share produced by split_spec/apportion/arithmetic "
        "never flows into any downstream use (dropped), or the undivided "
        "source is spent again after being split (double-spend)"
    )
    rationale = (
        "Splitting a budget promises that the shares — and only the "
        "shares — get spent. A share that never reaches a draw quietly "
        "under-uses the reservation; passing the undivided epsilon "
        "onward after carving shares from it spends the same budget "
        "twice. Both desynchronize the ledger from the actual draws."
    )
    example = "eps_g = eps * ratio  # never used; the full `eps` is passed on"

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            for cls, func in _iter_functions(module.tree):
                if not any(
                    isinstance(node, ast.Name) and _is_epsilon_name(node.id)
                    for node in ast.walk(func)
                ) and not any(
                    isinstance(node, ast.Attribute)
                    and _is_epsilon_name(node.attr)
                    for node in ast.walk(func)
                ):
                    continue
                yield from self._check_function(module, func)

    def _check_function(
        self, module: ModuleInfo, func: ast.AST
    ) -> Iterator[Finding]:
        transfer = _BudgetSplitTransfer(module)
        cfg = build_cfg(func)
        solution = fixpoint(cfg, transfer)
        yield from self._dropped_shares(cfg, solution, transfer, module, func)
        yield from self._double_spends(cfg, solution, module)

    def _dropped_shares(
        self, cfg, solution, transfer, module, func
    ) -> Iterator[Finding]:
        emitted: set[str] = set()
        # Shares still unread on every normal path out of the function.
        state = solution.in_state(cfg.exit)
        if state is not None:
            for key, status in state.items():
                if key.startswith("share:") and status == frozenset({"unread"}):
                    yield from self._drop(key, module, func, emitted)
        # Shares overwritten while still unread on every path.
        for node in cfg.nodes:
            if node.kind != "stmt" or node.tags:
                continue
            if not isinstance(node.stmt, ast.Assign):
                continue
            pre = solution.in_state(node)
            if pre is None:
                continue
            for target in node.stmt.targets:
                elements = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for element in elements:
                    if not isinstance(element, ast.Name):
                        continue
                    for key in transfer._share_keys(pre, element.id):
                        if pre[key] == frozenset({"unread"}):
                            yield from self._drop(key, module, func, emitted)

    def _drop(self, key, module, func, emitted) -> Iterator[Finding]:
        if key in emitted:
            return
        emitted.add(key)
        _, payload = key.split(":", 1)
        var, source, line = payload.rsplit("|", 2)
        yield _finding_at(
            self,
            module,
            int(line),
            0,
            f"epsilon share `{var}` split from `{source}` here never "
            f"flows into any draw or downstream call in {func.name}(); "
            f"the reserved budget is silently under-spent",
        )

    def _double_spends(self, cfg, solution, module) -> Iterator[Finding]:
        seen: set[tuple[int, str]] = set()
        for node in cfg.nodes:
            if node.kind != "stmt" or node.tags:
                continue
            state = solution.in_state(node)
            if state is None:
                continue
            for inner in _walk_parts(node.stmt):
                if not isinstance(inner, ast.Call):
                    continue
                arguments = list(inner.args) + [
                    keyword.value for keyword in inner.keywords
                ]
                for argument in arguments:
                    if not isinstance(argument, ast.Name):
                        continue
                    if state.get(f"src:{argument.id}") != frozenset({"split"}):
                        continue
                    site = (argument.lineno, argument.id)
                    if site in seen:
                        continue
                    seen.add(site)
                    yield _finding_at(
                        self,
                        module,
                        argument.lineno,
                        argument.col_offset,
                        f"undivided epsilon `{argument.id}` is passed on "
                        f"after shares were already split from it; this "
                        f"spends the same budget twice",
                    )


# ---------------------------------------------------------------------------
# RACE002 — lock-order consistency
# ---------------------------------------------------------------------------


class _LockNesting(ast.NodeVisitor):
    """Collect (held, acquired, site) lock-order edges in one function,
    following calls into analyzed callees via their lock summaries."""

    def __init__(
        self,
        module: ModuleInfo,
        cls: str | None,
        summaries: Summaries,
        edges: dict[tuple[str, str], tuple[ModuleInfo, int, str]],
    ) -> None:
        self.module = module
        self.cls = cls
        self.summaries = summaries
        self.edges = edges
        self.held: list[str] = []

    def _record(self, acquired: Iterable[str], line: int, what: str) -> None:
        for lock in acquired:
            for holder in self.held:
                if holder != lock:
                    self.edges.setdefault(
                        (holder, lock), (self.module, line, what)
                    )

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired = []
        for item in node.items:
            name = lock_name(self.module, self.cls, item.context_expr)
            if name is not None:
                acquired.append(name)
        self._record(acquired, node.lineno, "nested `with`")
        self.held.extend(acquired)
        for statement in node.body:
            self.visit(statement)
        if acquired:
            del self.held[-len(acquired):]

    def visit_Call(self, node: ast.Call) -> None:
        if self.held:
            key = self.summaries.resolve_call(self.module, self.cls, node)
            if key is not None:
                summary = self.summaries.for_key(key)
                if summary is not None and summary.locks:
                    self._record(
                        summary.locks,
                        node.lineno,
                        f"call to {key.label()}",
                    )
        self.generic_visit(node)

    def visit_FunctionDef(self, node) -> None:
        pass  # nested defs do not run while the lock is held

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]


@rule
class LockOrderInconsistency(Rule):
    code = "RACE002"
    name = "lock-order inconsistency"
    summary = (
        "two locks are acquired in opposite orders on different paths "
        "(directly or through called functions) — a potential deadlock"
    )
    rationale = (
        "If one thread holds A waiting for B while another holds B "
        "waiting for A, both block forever. The daemon's per-account "
        "locks plus store/job locks make this reachable; a single "
        "global acquisition order is the fix."
    )
    example = "with a:  with b: ...   # elsewhere: with b:  with a: ..."

    def check(self, project: Project) -> Iterable[Finding]:
        summaries = Summaries(project)
        edges: dict[tuple[str, str], tuple[ModuleInfo, int, str]] = {}
        for key, func in sorted(
            summaries.table.functions.items(), key=lambda kv: kv[0].label()
        ):
            walker = _LockNesting(func.module, key.cls, summaries, edges)
            for statement in func.node.body:
                walker.visit(statement)
        for cycle in self._cycles(edges):
            first = min(
                (pair for pair in edges if pair[0] in cycle and pair[1] in cycle),
                key=lambda pair: (
                    edges[pair][0].path,
                    edges[pair][1],
                ),
            )
            module, line, _ = edges[first]
            detail = "; ".join(
                f"{held} then {acquired} ({edges[(held, acquired)][0].name}:"
                f"{edges[(held, acquired)][1]}, {edges[(held, acquired)][2]})"
                for held, acquired in sorted(edges)
                if held in cycle and acquired in cycle
            )
            yield _finding_at(
                self,
                module,
                line,
                0,
                f"locks {', '.join(sorted(cycle))} are acquired in "
                f"inconsistent order: {detail}; pick one global order",
            )

    @staticmethod
    def _cycles(
        edges: dict[tuple[str, str], tuple[ModuleInfo, int, str]]
    ) -> list[frozenset[str]]:
        """Strongly-connected lock sets with at least one internal edge
        cycle (Tarjan); deterministic order."""
        graph: dict[str, list[str]] = {}
        for held, acquired in edges:
            graph.setdefault(held, []).append(acquired)
            graph.setdefault(acquired, [])
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        sccs: list[frozenset[str]] = []

        def strongconnect(vertex: str) -> None:
            index[vertex] = low[vertex] = counter[0]
            counter[0] += 1
            stack.append(vertex)
            on_stack.add(vertex)
            for succ in graph[vertex]:
                if succ not in index:
                    strongconnect(succ)
                    low[vertex] = min(low[vertex], low[succ])
                elif succ in on_stack:
                    low[vertex] = min(low[vertex], index[succ])
            if low[vertex] == index[vertex]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == vertex:
                        break
                if len(component) > 1:
                    sccs.append(frozenset(component))

        for vertex in sorted(graph):
            if vertex not in index:
                strongconnect(vertex)
        return sorted(sccs, key=sorted)
