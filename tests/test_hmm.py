"""Tests for HMM map matching and the recovery attack."""

import pytest

from repro.attacks.hmm import HmmMapMatcher
from repro.attacks.recovery import RecoveryAttack
from repro.datagen.generator import FleetConfig, generate_fleet
from repro.datagen.road_network import build_road_network
from repro.metrics.recovery import score_recovery
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset


@pytest.fixture(scope="module")
def network():
    return build_road_network(rows=12, cols=12, spacing=600.0, seed=2)


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(
        FleetConfig(
            n_objects=6,
            points_per_trajectory=60,
            rows=12,
            cols=12,
            seed=41,
            gps_noise=25.0,
        )
    )


class TestConfiguration:
    def test_rejects_bad_params(self, network):
        with pytest.raises(ValueError):
            HmmMapMatcher(network, sigma=0.0)
        with pytest.raises(ValueError):
            HmmMapMatcher(network, beta=-1.0)


class TestCandidates:
    def test_candidates_sorted_and_capped(self, network):
        matcher = HmmMapMatcher(network, max_candidates=3)
        coord = network.node_coord(40)
        candidates = matcher.candidates_for(coord)
        assert 1 <= len(candidates) <= 3
        errors = [c.error for c in candidates]
        assert errors == sorted(errors)

    def test_no_candidates_far_away(self, network):
        matcher = HmmMapMatcher(network)
        assert matcher.candidates_for((1e8, 1e8)) == []

    def test_candidate_offsets_within_edge(self, network):
        matcher = HmmMapMatcher(network)
        for candidate in matcher.candidates_for(network.node_coord(50)):
            assert -1e-6 <= candidate.offset <= candidate.edge.length + 1e-6


class TestRouteDistance:
    def test_same_edge(self, network):
        matcher = HmmMapMatcher(network)
        edge = network.edges[0]
        a = network.node_coord(edge.u)
        b = network.node_coord(edge.v)
        ca = matcher.candidates_for(a)[0]
        cb_list = [c for c in matcher.candidates_for(b) if c.edge.key == ca.edge.key]
        if cb_list:
            d = matcher.route_distance(ca, cb_list[0], cutoff=10_000.0)
            assert d == pytest.approx(abs(cb_list[0].offset - ca.offset), abs=1e-6)

    def test_cutoff_returns_inf(self, network):
        matcher = HmmMapMatcher(network)
        a = matcher.candidates_for(network.node_coord(0))[0]
        b = matcher.candidates_for(network.node_coord(143))[0]
        assert matcher.route_distance(a, b, cutoff=10.0) == float("inf")


class TestMatching:
    def test_matches_clean_route(self, network):
        """A noise-free route along the network must be recovered well."""
        path = network.shortest_path(0, 143)
        coords = network.route_points(path, step=600.0)
        trajectory = Trajectory(
            "probe", [Point(x, y, 60.0 * i) for i, (x, y) in enumerate(coords)]
        )
        matcher = HmmMapMatcher(network)
        result = matcher.match(trajectory)
        assert result.matched_fraction > 0.95
        truth_edges = set()
        for i in range(len(path) - 1):
            u, v = path[i], path[i + 1]
            truth_edges.add((u, v) if u < v else (v, u))
        recovered = set(result.edge_keys)
        overlap = len(truth_edges & recovered) / len(truth_edges)
        assert overlap > 0.8

    def test_matches_noisy_route(self, network):
        import random

        rng = random.Random(9)
        path = network.shortest_path(5, 138)
        coords = network.route_points(path, step=600.0)
        trajectory = Trajectory(
            "probe",
            [
                Point(x + rng.gauss(0, 30), y + rng.gauss(0, 30), 60.0 * i)
                for i, (x, y) in enumerate(coords)
            ],
        )
        result = HmmMapMatcher(network).match(trajectory)
        assert result.matched_fraction > 0.9

    def test_empty_trajectory(self, network):
        result = HmmMapMatcher(network).match(Trajectory("x"))
        assert result.edge_keys == []
        assert result.matched_fraction == 0.0

    def test_gap_handling(self, network):
        """Samples far off-network break the chain but matching resumes."""
        path = network.shortest_path(0, 11)
        coords = network.route_points(path, step=600.0)
        points = [Point(x, y, 60.0 * i) for i, (x, y) in enumerate(coords)]
        points.insert(len(points) // 2, Point(1e7, 1e7, points[-1].t / 2))
        result = HmmMapMatcher(network).match(Trajectory("x", points))
        assert result.candidates[len(points) // 2] is None
        assert result.matched_fraction > 0.8


class TestRecoveryAttackEndToEnd:
    def test_recovers_original_data_well(self, fleet):
        """The attack premise: raw published data is highly recoverable."""
        attack = RecoveryAttack(fleet.network, max_points_per_trajectory=60)
        output = attack.run(fleet.dataset)
        metrics = score_recovery(
            fleet.network, fleet.dataset, fleet.routes, output
        )
        assert metrics.recall > 0.25  # truncated probe: partial recall
        assert metrics.precision > 0.5
        assert metrics.accuracy > 0.5

    def test_scores_align_with_dataset(self, fleet):
        attack = RecoveryAttack(fleet.network, max_points_per_trajectory=30)
        output = attack.run(fleet.dataset)
        with pytest.raises(ValueError):
            score_recovery(
                fleet.network,
                TrajectoryDataset([fleet.dataset[0].copy()]),
                fleet.routes,
                output,
            )

    def test_anonymization_degrades_recovery(self, fleet):
        """GL must make recovery harder than publishing raw data."""
        from repro.core.pipeline import GL

        attack = RecoveryAttack(fleet.network, max_points_per_trajectory=60)
        raw = score_recovery(
            fleet.network,
            fleet.dataset,
            fleet.routes,
            attack.run(fleet.dataset),
        )
        anonymized = GL(epsilon=1.0, signature_size=5, seed=2).anonymize(
            fleet.dataset
        )
        private = score_recovery(
            fleet.network,
            fleet.dataset,
            fleet.routes,
            attack.run(anonymized),
        )
        assert private.f_score <= raw.f_score + 0.05
