"""Benchmarks regenerating Figure 4 (the ε sweep).

One bench per panel family: the anonymize+evaluate cycle at a low and a
high privacy budget, plus a reduced end-to-end sweep identical in
structure to ``python -m repro.experiments.fig4``.
"""

import pytest

from repro.experiments.evaluate import evaluate_method
from repro.experiments.fig4 import PANELS, run as run_fig4
from repro.experiments.methods import build_our_models


@pytest.mark.parametrize("epsilon", (0.5, 5.0))
@pytest.mark.parametrize("model", ("PureG", "PureL", "GL"))
def test_bench_model_at_epsilon(benchmark, config, fleet, model, epsilon):
    swept = config.with_epsilon(epsilon)
    anonymize = build_our_models(swept)[model]
    result = benchmark.pedantic(
        lambda: anonymize(fleet.dataset), rounds=3, iterations=1
    )
    assert len(result) == len(fleet.dataset)


def test_bench_fig4_point(benchmark, config, fleet):
    """One full sweep point: anonymize + all eight panel metrics."""
    swept = config.with_epsilon(1.0)
    anonymize = build_our_models(swept)["GL"]
    anonymized = anonymize(fleet.dataset)
    evaluation = benchmark.pedantic(
        lambda: evaluate_method(fleet.dataset, anonymized, fleet, swept),
        rounds=2,
        iterations=1,
    )
    for panel in PANELS:
        assert panel in evaluation.values


def test_bench_fig4_end_to_end(benchmark, bench_timer, config):
    series = benchmark.pedantic(
        lambda: bench_timer(
            "fig4",
            "end_to_end_s",
            lambda: run_fig4(config, epsilons=(0.5, 5.0)),
        ),
        rounds=1,
        iterations=1,
    )
    assert set(series) == set(PANELS)
    for models in series.values():
        for values in models.values():
            assert len(values) == 2
