"""Benchmarks regenerating Table II (one bench per method family).

Each bench runs a method's full anonymize step on the smoke fleet; the
`test_bench_table2_end_to_end` bench regenerates the whole table
(anonymization + every metric) exactly as
``python -m repro.experiments.table2`` does.
"""

import pytest

from repro.experiments.evaluate import evaluate_method
from repro.experiments.methods import SYNTHETIC_METHODS, build_methods
from repro.experiments.table2 import run as run_table2

METHOD_LABELS = (
    "SC",
    "RSC-1",
    "W4M",
    "GLOVE",
    "KLT",
    "DPT",
    "AdaTrace",
    "PureG",
    "PureL",
    "GL",
)


@pytest.mark.parametrize("label", METHOD_LABELS)
def test_bench_method_anonymize(benchmark, config, fleet, label):
    method = build_methods(config)[label]
    result = benchmark.pedantic(
        lambda: method(fleet.dataset), rounds=3, iterations=1
    )
    assert len(result) == len(fleet.dataset)


@pytest.mark.parametrize("label", ("SC", "GL"))
def test_bench_method_evaluation(benchmark, config, fleet, label):
    """Benchmark the metric computation for one anonymized dataset."""
    method = build_methods(config)[label]
    anonymized = method(fleet.dataset)
    evaluation = benchmark.pedantic(
        lambda: evaluate_method(
            fleet.dataset,
            anonymized,
            fleet,
            config,
            synthetic=label in SYNTHETIC_METHODS,
        ),
        rounds=2,
        iterations=1,
    )
    assert evaluation.values["LAs"] is not None


def test_bench_table2_end_to_end(benchmark, bench_timer, config):
    """The full Table II pipeline on a reduced method subset."""
    results = benchmark.pedantic(
        lambda: bench_timer(
            "table2",
            "end_to_end_s",
            lambda: run_table2(config, methods=["SC", "PureG", "PureL", "GL"]),
        ),
        rounds=1,
        iterations=1,
    )
    assert set(results) == {"SC", "PureG", "PureL", "GL"}
    for values in results.values():
        assert values["INF"] is not None
