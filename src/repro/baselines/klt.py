"""KLT: k-anonymity + l-diversity + t-closeness on POI semantics [9].

KLT extends GLOVE by requiring each published group to also be
semantically private: the POI categories its members express must be
diverse (at least ``l`` distinct categories) and representative (the
group's category distribution must stay within total-variation distance
``t`` of the global distribution). Groups that fail either test are
merged further.

Real POI databases are unavailable offline, so categories are assigned
to locations by a deterministic hash into ``n_categories`` classes — a
synthetic semantic map that preserves what the algorithm needs: a
stable location→category function with a non-degenerate global
distribution.
"""

from __future__ import annotations

import hashlib
from collections import Counter

from repro.baselines.glove import Glove
from repro.trajectory.distance import synchronized_distance
from repro.trajectory.model import LocationKey, TrajectoryDataset


def poi_category(loc: LocationKey, n_categories: int = 8) -> int:
    """Deterministic synthetic POI category of a location."""
    digest = hashlib.blake2s(
        f"{loc[0]:.0f},{loc[1]:.0f}".encode(), digest_size=4
    ).digest()
    return int.from_bytes(digest, "big") % n_categories


class KLT(Glove):
    """GLOVE grouping with l-diversity and t-closeness post-conditions."""

    def __init__(
        self,
        k: int = 5,
        l_diversity: int = 3,
        t_closeness: float = 0.1,
        n_categories: int = 8,
        cell_size: float = 500.0,
        time_window: float = 1800.0,
    ) -> None:
        super().__init__(k=k, cell_size=cell_size, time_window=time_window)
        if l_diversity < 1:
            raise ValueError("l must be at least 1")
        if not 0.0 <= t_closeness <= 1.0:
            raise ValueError("t must lie in [0, 1]")
        self.l_diversity = l_diversity
        self.t_closeness = t_closeness
        self.n_categories = n_categories

    # -- semantic tests -----------------------------------------------------------

    def _category_histogram(
        self, dataset: TrajectoryDataset, members: list[int]
    ) -> Counter:
        histogram: Counter = Counter()
        for index in members:
            for loc in dataset[index].distinct_locations():
                histogram[poi_category(loc, self.n_categories)] += 1
        return histogram

    def _satisfies_l_diversity(self, histogram: Counter) -> bool:
        return len(histogram) >= self.l_diversity

    def _satisfies_t_closeness(
        self, histogram: Counter, global_histogram: Counter
    ) -> bool:
        """Total-variation distance between group and global distributions."""
        total = sum(histogram.values())
        global_total = sum(global_histogram.values())
        if total == 0 or global_total == 0:
            return False
        distance = 0.5 * sum(
            abs(
                histogram.get(c, 0) / total
                - global_histogram.get(c, 0) / global_total
            )
            for c in range(self.n_categories)
        )
        return distance <= self.t_closeness

    # -- grouping with semantic repair ----------------------------------------------

    def _groups(self, dataset: TrajectoryDataset) -> list[list[int]]:
        groups = super()._groups(dataset)
        global_histogram = self._category_histogram(
            dataset, list(range(len(dataset)))
        )
        # Merge semantically failing groups with their cheapest partner
        # until every group passes or only one group remains.
        progress = True
        while progress and len(groups) > 1:
            progress = False
            for group in list(groups):
                histogram = self._category_histogram(dataset, group)
                if self._satisfies_l_diversity(histogram) and (
                    self._satisfies_t_closeness(histogram, global_histogram)
                ):
                    continue
                others = [g for g in groups if g is not group]
                if not others:
                    break
                rep = self._representative(dataset, group)
                partner = min(
                    others,
                    key=lambda g: synchronized_distance(
                        rep, self._representative(dataset, g)
                    ),
                )
                groups.remove(group)
                partner.extend(group)
                progress = True
                break
        return groups
