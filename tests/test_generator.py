"""Tests for the synthetic fleet generator."""

import pytest

from repro.datagen.generator import FleetConfig, generate_fleet


@pytest.fixture(scope="module")
def fleet():
    config = FleetConfig(
        n_objects=12,
        points_per_trajectory=150,
        rows=15,
        cols=15,
        n_hotspots=8,
        seed=11,
    )
    return generate_fleet(config)


class TestGenerateFleet:
    def test_object_count_and_lengths(self, fleet):
        assert len(fleet.dataset) == 12
        for trajectory in fleet.dataset:
            assert len(trajectory) == 150

    def test_deterministic(self):
        config = FleetConfig(n_objects=3, points_per_trajectory=50, rows=8, cols=8, seed=5)
        a = generate_fleet(config)
        b = generate_fleet(config)
        for ta, tb in zip(a.dataset, b.dataset, strict=True):
            assert [p.coord for p in ta] == [p.coord for p in tb]
            assert [p.t for p in ta] == [p.t for p in tb]

    def test_timestamps_strictly_increasing(self, fleet):
        for trajectory in fleet.dataset:
            times = [p.t for p in trajectory]
            assert all(t1 < t2 for t1, t2 in zip(times, times[1:], strict=False))

    def test_point_spacing_near_target(self, fleet):
        stats = fleet.dataset.stats()
        # Dwell samples (distance 0) pull the mean below the 600 m lattice.
        assert 200.0 < stats["avg_point_spacing_m"] < 700.0

    def test_home_anchor_has_high_point_frequency(self, fleet):
        for trajectory in fleet.dataset:
            home = fleet.anchors[trajectory.object_id][0]
            home_loc = (
                round(fleet.network.node_coord(home)[0]),
                round(fleet.network.node_coord(home)[1]),
            )
            pf = trajectory.point_frequencies()
            # Home is visited repeatedly: among top frequencies.
            counts = sorted(pf.values(), reverse=True)
            home_count = pf[(float(home_loc[0]), float(home_loc[1]))]
            assert home_count >= counts[min(10, len(counts) - 1)]

    def test_anchors_are_distinctive(self, fleet):
        """Personal anchors should be visited by few trajectories (low TF)."""
        tf = fleet.dataset.trajectory_frequencies()
        n = len(fleet.dataset)
        low_tf = 0
        total = 0
        for anchors in fleet.anchors.values():
            for anchor in anchors:
                coord = fleet.network.node_coord(anchor)
                key = (float(round(coord[0])), float(round(coord[1])))
                if key in tf:
                    total += 1
                    if tf[key] <= max(2, n // 4):
                        low_tf += 1
        assert total > 0
        assert low_tf / total > 0.5

    def test_hotspots_are_popular(self, fleet):
        """Shared hotspots should be crossed by many trajectories (high TF)."""
        tf = fleet.dataset.trajectory_frequencies()
        n = len(fleet.dataset)
        popular = 0
        for hotspot in fleet.hotspots:
            coord = fleet.network.node_coord(hotspot)
            key = (float(round(coord[0])), float(round(coord[1])))
            if tf.get(key, 0) >= n // 3:
                popular += 1
        assert popular >= len(fleet.hotspots) // 3

    def test_routes_recorded(self, fleet):
        edge_keys = {e.key for e in fleet.network.edges}
        for object_id, route in fleet.routes.items():
            assert route, f"{object_id} has an empty route"
            for key in route:
                assert key in edge_keys

    def test_gps_noise_perturbs_points(self):
        base = FleetConfig(n_objects=2, points_per_trajectory=40, rows=8, cols=8, seed=5)
        noisy = FleetConfig(
            n_objects=2, points_per_trajectory=40, rows=8, cols=8, seed=5, gps_noise=30.0
        )
        clean_fleet = generate_fleet(base)
        noisy_fleet = generate_fleet(noisy)
        moved = sum(
            1
            for ta, tb in zip(clean_fleet.dataset, noisy_fleet.dataset, strict=True)
            for p, q in zip(ta, tb, strict=True)
            if p.coord != q.coord
        )
        assert moved > 0

    def test_network_too_small_raises(self):
        config = FleetConfig(
            n_objects=1, rows=2, cols=2, n_hotspots=10, anchors_on_spurs=False
        )
        with pytest.raises(ValueError):
            generate_fleet(config)

    def test_anchors_prefer_spur_tips(self, fleet):
        tips = set(fleet.network.spur_tips)
        assert tips, "expected the network to have spur streets"
        on_tips = sum(
            1
            for anchors in fleet.anchors.values()
            for anchor in anchors
            if anchor in tips
        )
        total = sum(len(a) for a in fleet.anchors.values())
        assert on_tips / total > 0.9

    def test_homes_globally_unique(self, fleet):
        homes = [anchors[0] for anchors in fleet.anchors.values()]
        assert len(homes) == len(set(homes))

    def test_some_anchors_shared(self):
        fleet = generate_fleet(
            FleetConfig(
                n_objects=30,
                points_per_trajectory=60,
                rows=12,
                cols=12,
                seed=3,
                shared_anchor_probability=0.8,
            )
        )
        from collections import Counter

        usage = Counter()
        for anchors in fleet.anchors.values():
            usage.update(set(anchors[1:]))
        assert any(count >= 2 for count in usage.values())

    def test_points_lie_on_network_nodes_or_edges(self, fleet):
        """Noise-free samples must sit on the road polyline (within epsilon)."""
        network = fleet.network
        trajectory = fleet.dataset[0]
        for point in trajectory.points[:50]:
            hits = network.edges_near(point.coord, radius=1.0)
            near_node = any(
                abs(network.node_coord(n)[0] - point.x) < 1.0
                and abs(network.node_coord(n)[1] - point.y) < 1.0
                for n in range(len(network))
            )
            assert hits or near_node
