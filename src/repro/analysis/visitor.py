"""Shared per-module AST facts every rule builds on.

:class:`ModuleInfo` parses one source file once and precomputes the
things all five rules need: the import/alias map (so ``np.random`` and
``numpy.random`` resolve identically), the ``# repro: noqa[CODE]``
suppression table, and a :meth:`qualified` resolver that turns a
``Name``/``Attribute`` chain into a dotted path through that map.
:class:`Project` is just the collection of modules under analysis —
rules that need cross-module facts (the RACE001 call graph) walk it.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

#: ``# repro: noqa`` or ``# repro: noqa[DP001, DET001]``. Matched only
#: against COMMENT tokens, anchored at the ``#`` — mentions of the
#: syntax inside docstrings or prose comments never register.
_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)

#: Sentinel for a bare ``# repro: noqa`` (suppresses every code).
ALL_CODES = "*"


@dataclass
class ModuleInfo:
    """One parsed source file plus the derived tables rules share."""

    path: str
    name: str
    source: str
    tree: ast.Module
    #: Source split into lines (1-indexed access via ``line(n)``).
    lines: list[str] = field(default_factory=list)
    #: local name -> dotted import target, e.g. ``np -> numpy``,
    #: ``laplace_noise -> repro.core.laplace.laplace_noise``.
    aliases: dict[str, str] = field(default_factory=dict)
    #: line number -> set of suppressed codes (or {ALL_CODES}).
    noqa: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str, path: str, name: str) -> "ModuleInfo":
        tree = ast.parse(source, filename=path)
        info = cls(
            path=path,
            name=name,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )
        info._collect_aliases()
        info._collect_noqa()
        return info

    # -- derived tables ------------------------------------------------

    def _collect_aliases(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Resolve ``from .laplace import x`` relative to the
                    # module's own package.
                    parts = self.name.split(".")
                    anchor = parts[: len(parts) - node.level]
                    base = ".".join(anchor + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{base}.{alias.name}" if base else alias.name

    def _collect_noqa(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (token.start[0], token.string)
                for token in tokens
                if token.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            # The file already parsed with ``ast``, so this is near
            # impossible — but a broken tokenizer must not kill analysis.
            comments = list(enumerate(self.lines, start=1))
        for number, text in comments:
            match = _NOQA.match(text)
            if not match:
                continue
            codes = match.group(1)
            if codes is None:
                self.noqa[number] = {ALL_CODES}
            else:
                self.noqa[number] = {
                    code.strip().upper()
                    for code in codes.split(",")
                    if code.strip()
                }

    # -- helpers rules call --------------------------------------------

    def line(self, number: int) -> str:
        """The (stripped) source text of 1-indexed line ``number``."""
        if 1 <= number <= len(self.lines):
            return self.lines[number - 1].strip()
        return ""

    def suppressed(self, code: str, line: int) -> bool:
        codes = self.noqa.get(line)
        if not codes:
            return False
        return ALL_CODES in codes or code.upper() in codes

    def dotted(self, node: ast.AST) -> str | None:
        """``a.b.c`` for a Name/Attribute chain, else None (calls,
        subscripts and other dynamic receivers don't resolve)."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def qualified(self, node: ast.AST) -> str | None:
        """The fully-resolved dotted path of a Name/Attribute chain,
        with the leading segment mapped through the import table.

        ``np.random.rand`` -> ``numpy.random.rand`` when ``import
        numpy as np``;  ``laplace_noise`` ->
        ``repro.core.laplace.laplace_noise`` when imported from there.
        """
        raw = self.dotted(node)
        if raw is None:
            return None
        head, _, rest = raw.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return raw
        return f"{target}.{rest}" if rest else target


@dataclass
class Project:
    """The set of modules one analysis run covers."""

    modules: list[ModuleInfo] = field(default_factory=list)

    def by_name(self) -> dict[str, ModuleInfo]:
        return {module.name: module for module in self.modules}


def module_name_for(path: Path, root: Path) -> str:
    """Best-effort dotted module name of ``path``: the relative path
    under ``root``'s nearest ``src`` (or ``root`` itself), with
    ``__init__`` folded into the package name."""
    try:
        relative = path.resolve().relative_to(root.resolve())
    except ValueError:
        relative = Path(path.name)
    parts = list(relative.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem
