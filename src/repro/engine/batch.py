"""Batch anonymization: shard the embarrassingly-parallel local stage.

The paper's pipeline has two very different halves. The global stage
edits every trajectory against one shared dataset-wide index — it is
inherently sequential (and is what the incremental ``iter_nearest``
frontier accelerates). The local stage perturbs and modifies each
trajectory independently — it is embarrassingly parallel, and at the
paper's |D| = 1000 scale dominated by per-trajectory index builds and
kNN searches that share nothing.

:class:`BatchAnonymizer` wraps any :class:`FrequencyAnonymizer` and
fans that local stage over a worker pool. Determinism is preserved by
construction: the pipeline derives each trajectory's noise stream from
``(run seed, call index, object id)`` — not from a shared sequential
RNG — so any sharding replays exactly the serial draws and the output
is byte-identical to the serial path for the same seed.
"""

from __future__ import annotations

import random
import threading
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.core.local_mechanism import LocalPFMechanism
from repro.core.modification import IntraTrajectoryModifier, make_index_factory
from repro.core.pipeline import (
    AnonymizationReport,
    FrequencyAnonymizer,
    LocalResult,
    local_stream_seed,
)
from repro.core.signature import SignatureIndex
from repro.engine.pool import (
    EXECUTOR_KINDS,
    _make_executor,
    parallel_map,
    parallel_map_stream,
    resolve_workers,
)
from repro.trajectory.model import Trajectory, TrajectoryDataset

if TYPE_CHECKING:  # engine sits below repro.api; runtime imports are lazy
    from repro.api.spec import MethodSpec


@dataclass(frozen=True, slots=True)
class _LocalShard:
    """Everything one worker needs to run the local stage on a slice.

    Plain data only — this crosses a process boundary. The signature
    index is trimmed to the shard's own trajectories (the candidate set
    and TF restriction stay global, as the mechanism requires).
    """

    trajectories: list[Trajectory]
    signature_index: SignatureIndex
    seeds: list[int]
    epsilon_local: float
    signature_size: int
    index_backend: str
    levels: int
    granularity: int
    search_strategy: str


def _run_local_shard(shard: _LocalShard) -> list[LocalResult]:
    """Worker: the exact serial per-trajectory loop, on one shard."""
    mechanism = LocalPFMechanism(shard.epsilon_local, m=shard.signature_size)
    intra = IntraTrajectoryModifier(
        make_index_factory(
            backend=shard.index_backend,
            levels=shard.levels,
            granularity=shard.granularity,
        ),
        strategy=shard.search_strategy,
    )
    results: list[LocalResult] = []
    for trajectory, seed in zip(shard.trajectories, shard.seeds, strict=True):
        rng = random.Random(seed)
        perturbation = mechanism.perturb_trajectory(
            trajectory, shard.signature_index, rng
        )
        modified, report = intra.apply(trajectory, perturbation)
        results.append((trajectory.object_id, perturbation, modified, report))
    return results


def _anonymize_one(payload: tuple[MethodSpec, int, TrajectoryDataset]):
    """Worker: full anonymization of one dataset of a sweep.

    Rebuilds the anonymizer from its :class:`MethodSpec` (the
    declarative cross-process payload) and pins the reserved call
    index so dataset ``i`` of the sweep draws exactly the noise the
    ``i``-th sequential call on a single instance would draw.
    """
    spec, call_index, dataset = payload
    from repro.api.registry import build  # lazy: engine sits below api

    anonymizer = build(spec)
    return anonymizer.anonymize_with_report(dataset, call_index=call_index)


class BatchAnonymizer:
    """Parallel front-end for a :class:`FrequencyAnonymizer`.

    Parameters
    ----------
    anonymizer:
        The configured pipeline to accelerate. Its global stage runs
        unchanged in-process; its local stage is sharded.
    workers:
        Pool size; ``0``/``None`` means one worker per CPU core,
        ``1`` keeps everything serial (but still byte-identical).
    executor:
        ``"process"`` (default), ``"thread"``, or ``"serial"`` — see
        :mod:`repro.engine.pool`.
    shards_per_worker:
        Shards are contiguous dataset slices; a few shards per worker
        smooths out uneven trajectory lengths without drowning the pool
        in pickling overhead.
    global_workers:
        Pool size for the global stage's wave planning (``0``/``None``
        = one per core, ``1`` = plan in-process). The planner's
        per-location simulations are read-only against a shared index,
        so they fan over a *thread* pool regardless of ``executor``
        (processes cannot share the live index); output stays
        byte-identical for any value. Only effective when the wrapped
        pipeline uses ``candidate_source="wave"`` (the default). The
        pool is created lazily on first use and **reused** across
        calls and stream chunks; release it deterministically with
        :meth:`close` or by using the engine as a context manager.
        Closing is terminal: a closed engine raises ``RuntimeError``
        on further use (long-lived holders like the serving daemon
        rely on close meaning *closed*, not *paused*).
    """

    def __init__(
        self,
        anonymizer: FrequencyAnonymizer,
        workers: int | None = None,
        executor: str = "process",
        shards_per_worker: int = 4,
        global_workers: int | None = 1,
    ) -> None:
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTOR_KINDS}"
            )
        if shards_per_worker < 1:
            raise ValueError("shards_per_worker must be at least 1")
        self.anonymizer = anonymizer
        self.workers = resolve_workers(workers)
        self.executor = executor
        self.shards_per_worker = shards_per_worker
        self.global_workers = resolve_workers(global_workers)
        #: The shared wave-planning thread pool (lazy; see
        #: :meth:`_ensure_global_pool`). ``_global_pool_unavailable``
        #: remembers a failed creation so an environment without
        #: threads is not re-probed on every call.
        self._global_pool = None
        self._global_pool_unavailable = False
        self._global_pool_lock = threading.Lock()
        self._closed = False

    # -- pool lifecycle ---------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "BatchAnonymizer is closed; build a new engine instead "
                "of reusing a closed one"
            )

    def _ensure_global_pool(self):
        """The wave-planning thread pool, created once and reused.

        Returns ``None`` when ``global_workers <= 1`` or the
        environment cannot create thread pools (the serial planning
        path is always equivalent). Creation is locked so the
        documented concurrent-call safety holds: racing first calls
        must not each build a pool and leak all but one.
        """
        if self.global_workers <= 1:
            return None
        with self._global_pool_lock:
            self._ensure_open()
            if self._global_pool_unavailable:
                return None
            if self._global_pool is None:
                pool = _make_executor("thread", self.global_workers)
                if pool is None:
                    self._global_pool_unavailable = True
                    return None
                self._global_pool = pool
            return self._global_pool

    def close(self) -> None:
        """Shut the engine down deterministically: idempotent, terminal.

        Releases the shared wave-planning pool; any later
        ``anonymize*`` call (or context-manager re-entry) raises
        ``RuntimeError`` — long-lived holders depend on a closed
        engine staying closed rather than silently reviving its pool.
        Like shutting any executor, ``close`` must not race calls
        still in flight: let concurrent ``anonymize*`` calls finish
        first (the context-manager form sequences this naturally).
        """
        with self._global_pool_lock:
            self._closed = True
            pool = self._global_pool
            self._global_pool = None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "BatchAnonymizer":
        self._ensure_open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def last_report(self) -> AnonymizationReport | None:
        """Deprecated: the wrapped anonymizer's most recent report.

        Mutable shared state — concurrent runs clobber it. Use
        :meth:`anonymize_with_report` (or :func:`repro.api.run`), which
        return the report with the result.
        """
        warnings.warn(
            "BatchAnonymizer.last_report is deprecated; use "
            "anonymize_with_report() or repro.api.run(), which return "
            "the report with the result",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.anonymizer._last_report

    def anonymize(self, dataset: TrajectoryDataset) -> TrajectoryDataset:
        """ε-DP anonymization, local stage fanned across the pool.

        Byte-identical to ``self.anonymizer.anonymize(dataset)`` for
        the same seed and call index. Also refreshes the deprecated
        ``last_report`` alias; prefer :meth:`anonymize_with_report`.
        """
        result, report = self.anonymize_with_report(dataset)
        self.anonymizer._last_report = report
        return result

    def anonymize_with_report(
        self, dataset: TrajectoryDataset, **hooks
    ) -> tuple[TrajectoryDataset, AnonymizationReport]:
        """Anonymize and return ``(dataset, report)`` together.

        Nothing is stored on the wrapped anonymizer — the sharding and
        wave-planning hooks travel as per-call arguments — so
        concurrent calls on one engine are safe: each gets its own
        report and its own atomically reserved noise stream. Extra
        keyword arguments (``tf_target``, ``base_seed``, ``scope``,
        ``call_index``) are forwarded to
        :meth:`FrequencyAnonymizer.anonymize_with_report` — the
        streaming publisher's injection surface.

        The wave-planning thread pool (``global_workers > 1``) is
        created lazily on the first call and reused by every later
        call and stream chunk; see :meth:`close`.
        """
        self._ensure_open()
        pool = self._ensure_global_pool()
        if pool is not None:
            hooks.setdefault(
                "wave_map", lambda fn, jobs: list(pool.map(fn, jobs))
            )
        return self.anonymizer.anonymize_with_report(
            dataset, local_runner=self._run_local_sharded, **hooks
        )

    def anonymize_stream(
        self, datasets: Iterable[TrajectoryDataset]
    ) -> Iterator[tuple[TrajectoryDataset, AnonymizationReport]]:
        """Lazily anonymize a stream of datasets, one worker each.

        Datasets are pulled from the (possibly lazy — e.g.
        :func:`repro.data.stream.chunked` over a streaming reader)
        iterable only as pool slots free up, with at most a small
        bounded window in flight, so a sweep far larger than memory
        works. Yields ``(anonymized, report)`` pairs in input order;
        each dataset draws the same per-call noise stream the ``i``-th
        sequential ``anonymize`` call on the wrapped instance would.

        The in-process path (``workers <= 1`` or ``executor="serial"``)
        runs chunks through :meth:`anonymize_with_report` directly, so
        the lazily-created wave-planning pool is shared across all
        chunks instead of being rebuilt per chunk.

        A closed engine refuses eagerly, at the call — not on first
        iteration of the returned generator.
        """
        self._ensure_open()
        return self._anonymize_stream_inner(datasets)

    def _anonymize_stream_inner(
        self, datasets: Iterable[TrajectoryDataset]
    ) -> Iterator[tuple[TrajectoryDataset, AnonymizationReport]]:
        if self.workers <= 1 or self.executor == "serial":
            for dataset in datasets:
                result, report = self.anonymize_with_report(
                    dataset, call_index=self.anonymizer.reserve_call_index()
                )
                self.anonymizer._last_report = report
                yield result, report
            return

        spec = self.anonymizer.spec()

        def payloads() -> Iterator[tuple[MethodSpec, int, TrajectoryDataset]]:
            for dataset in datasets:
                yield (spec, self.anonymizer.reserve_call_index(), dataset)

        for result, report in parallel_map_stream(
            _anonymize_one,
            payloads(),
            workers=self.workers,
            executor=self.executor,
        ):
            # Keep the deprecated last_report alias fresh: the sweep
            # ran on throwaway worker-side instances, so reflect each
            # report onto the wrapped anonymizer. The authoritative
            # channel is the yielded (result, report) pair.
            self.anonymizer._last_report = report
            yield result, report

    def publish(
        self,
        chunks,
        sink=None,
        *,
        byte_sink=None,
        publish_workers: int | None = 1,
        publish_executor: str = "process",
        spill_dir=None,
        window: int | None = None,
        apportionment: str = "balanced",
    ):
        """Publish a chunked stream as **one** ε-DP release.

        Convenience front for
        :class:`~repro.engine.publish.StreamPublisher` wrapping this
        engine: the in-process realisation path reuses this engine's
        sharding and wave-planning pools, while ``publish_workers > 1``
        fans spilled chunks over a separate pass-2 pool (chunks are
        then realised by worker-side rebuilt pipelines; output stays
        byte-identical either way). See ``StreamPublisher`` for the
        knobs; returns the merged
        :class:`~repro.engine.publish.PublishReport`.
        """
        self._ensure_open()
        from repro.engine.publish import StreamPublisher  # lazy: cycle

        with StreamPublisher(
            self,
            workers=publish_workers,
            executor=publish_executor,
            spill_dir=spill_dir,
            window=window,
            apportionment=apportionment,
        ) as publisher:
            return publisher.publish(chunks, sink=sink, byte_sink=byte_sink)

    def anonymize_many(
        self, datasets: Iterable[TrajectoryDataset]
    ) -> list[tuple[TrajectoryDataset, AnonymizationReport]]:
        """Anonymize a sweep of datasets, one worker each.

        Equivalent to calling ``anonymize`` on the wrapped instance
        once per dataset in order (each dataset gets its own per-call
        noise stream); the wrapped instance's call counter advances
        accordingly. Returns ``(anonymized, report)`` pairs in input
        order. The input may be any iterable — it is consumed
        incrementally (see :meth:`anonymize_stream`); only the results
        are accumulated.
        """
        return list(self.anonymize_stream(datasets))

    # -- local-stage sharding ---------------------------------------------------

    def _run_local_sharded(
        self,
        dataset: TrajectoryDataset,
        signature_index: SignatureIndex,
        base_seed: int,
    ) -> list[LocalResult]:
        trajectories = list(dataset)
        shard_count = max(
            1, min(len(trajectories), self.workers * self.shards_per_worker)
        )
        if shard_count == 1 or self.workers <= 1:
            return self.anonymizer._run_local_serial(
                dataset, signature_index, base_seed
            )
        shards = [
            self._make_shard(chunk, signature_index, base_seed)
            for chunk in _chunks(trajectories, shard_count)
        ]
        results = parallel_map(
            _run_local_shard, shards, workers=self.workers, executor=self.executor
        )
        # Contiguous shards concatenated in order == serial iteration
        # order, so reports merge identically too.
        return [item for shard in results for item in shard]

    def _make_shard(
        self,
        chunk: list[Trajectory],
        signature_index: SignatureIndex,
        base_seed: int,
    ) -> _LocalShard:
        anonymizer = self.anonymizer
        trimmed = SignatureIndex(
            m=signature_index.m,
            signatures={
                t.object_id: signature_index.signatures[t.object_id]
                for t in chunk
            },
            candidate_set=signature_index.candidate_set,
            tf=signature_index.tf,
        )
        return _LocalShard(
            trajectories=chunk,
            signature_index=trimmed,
            seeds=[
                local_stream_seed(base_seed, t.object_id) for t in chunk
            ],
            epsilon_local=anonymizer.epsilon_local,
            signature_size=anonymizer.signature_size,
            index_backend=anonymizer.index_backend,
            levels=anonymizer.levels,
            granularity=anonymizer.granularity,
            search_strategy=anonymizer.search_strategy,
        )


def _chunks(items: list, n: int) -> list[list]:
    """Split ``items`` into ``n`` contiguous near-equal slices."""
    size, extra = divmod(len(items), n)
    chunks = []
    start = 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        if end > start:
            chunks.append(items[start:end])
        start = end
    return chunks
