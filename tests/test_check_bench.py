"""End-to-end tests for the benchmark regression gate
(tools/check_bench.py), mirroring tests/test_check_static.py: the
committed repo state must pass, an injected regression must fail with
exit 1, and checker crashes must exit 2.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.bench import BenchRecord, BenchScale

REPO_ROOT = Path(__file__).resolve().parent.parent

PAPER = BenchScale(
    n_objects=500, points_per_trajectory=300, signature_size=10,
    paper_scale=True,
)


@pytest.fixture(scope="module")
def check_bench():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    spec = importlib.util.spec_from_file_location(
        "check_bench", REPO_ROOT / "tools" / "check_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_bench"] = module
    spec.loader.exec_module(module)
    return module


def _line(wave_s, shared_tf_s=13.0):
    record = BenchRecord(
        bench="engine",
        scale=PAPER,
        python="3.11.7",
        metrics={
            "inter_modification": {"wave_s": wave_s},
            "stream_publisher": {"shared_tf_s": shared_tf_s},
        },
        provenance={"source": "fixture"},
    )
    return record.to_jsonl()


@pytest.fixture
def fixture_history(tmp_path):
    """Three stable baseline runs, wave_s hovering around 10s."""
    path = tmp_path / "BENCH_history.jsonl"
    path.write_text(
        "\n".join(_line(v) for v in (10.0, 10.2, 9.9)) + "\n"
    )
    return path


class TestCommittedRepoState:
    def test_committed_history_passes(self, check_bench, capsys):
        """The acceptance gate: the repo as committed must exit 0."""
        assert check_bench.main([]) == 0
        assert "bench gate clean" in capsys.readouterr().out

    def test_committed_history_json(self, check_bench, capsys):
        assert check_bench.main(["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["clean"] is True
        assert payload["comparisons"]


class TestInjectedRegression:
    """A 25% slowdown on inter_modification.wave_s must fail CI."""

    def test_regression_exits_one(
        self, check_bench, fixture_history, capsys
    ):
        with open(fixture_history, "a") as handle:
            handle.write(_line(12.5) + "\n")  # +25% over median 10.0
        code = check_bench.main(["--history", str(fixture_history)])
        assert code == 1
        out = capsys.readouterr().out
        assert "inter_modification.wave_s" in out
        assert "significant_degradation" in out
        assert "FAIL" in out

    def test_warn_only_downgrades_to_zero(
        self, check_bench, fixture_history, capsys
    ):
        with open(fixture_history, "a") as handle:
            handle.write(_line(12.5) + "\n")
        code = check_bench.main(
            ["--history", str(fixture_history), "--warn-only"]
        )
        assert code == 0
        assert "warn-only" in capsys.readouterr().out

    def test_stable_run_exits_zero(
        self, check_bench, fixture_history, capsys
    ):
        with open(fixture_history, "a") as handle:
            handle.write(_line(10.1) + "\n")
        code = check_bench.main(["--history", str(fixture_history)])
        assert code == 0
        assert "bench gate clean" in capsys.readouterr().out

    def test_json_report_carries_the_shift(
        self, check_bench, fixture_history, capsys
    ):
        with open(fixture_history, "a") as handle:
            handle.write(_line(12.5) + "\n")
        code = check_bench.main(
            ["--history", str(fixture_history), "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        (comparison,) = payload["comparisons"]
        shifts = {s["key"]: s["shift"] for s in comparison["shifts"]}
        assert (
            shifts["inter_modification.wave_s"]
            == "significant_degradation"
        )


class TestCrashPaths:
    def test_missing_history_exits_two(
        self, check_bench, tmp_path, capsys
    ):
        code = check_bench.main(
            ["--history", str(tmp_path / "nope.jsonl")]
        )
        assert code == 2
        assert "check_bench:" in capsys.readouterr().err

    def test_corrupt_history_exits_two(
        self, check_bench, tmp_path, capsys
    ):
        path = tmp_path / "corrupt.jsonl"
        path.write_text(_line(10.0) + "\n{broken\n")
        assert check_bench.main(["--history", str(path)]) == 2
        assert "HistoryError" in capsys.readouterr().err

    def test_bad_thresholds_exit_two(self, check_bench, fixture_history):
        code = check_bench.main(
            [
                "--history", str(fixture_history),
                "--minor", "0.5", "--significant", "0.1",
            ]
        )
        assert code == 2

    def test_warn_only_does_not_mask_crashes(
        self, check_bench, tmp_path
    ):
        code = check_bench.main(
            ["--history", str(tmp_path / "nope.jsonl"), "--warn-only"]
        )
        assert code == 2
