"""Numpy-vectorised geometry kernels.

Batch versions of the scalar primitives in :mod:`repro.geo.geometry`,
used where the library is distance-bound: the linear-scan index on
large segment sets and the INF utility metric. Results match the
scalar implementations to floating-point accuracy (property-tested).
"""

from __future__ import annotations

import numpy as np

from repro.geo.geometry import Coord


class SegmentArray:
    """A fixed batch of segments supporting vectorised distance queries."""

    def __init__(self, starts: np.ndarray, ends: np.ndarray) -> None:
        """``starts``/``ends``: float arrays of shape (n, 2)."""
        starts = np.asarray(starts, dtype=np.float64)
        ends = np.asarray(ends, dtype=np.float64)
        if starts.shape != ends.shape or starts.ndim != 2 or starts.shape[1] != 2:
            raise ValueError("expected matching (n, 2) coordinate arrays")
        self.starts = starts
        self.ends = ends
        self._delta = ends - starts
        self._norm_sq = np.einsum("ij,ij->i", self._delta, self._delta)
        # Degenerate segments project onto their start point.
        self._safe_norm_sq = np.where(self._norm_sq == 0.0, 1.0, self._norm_sq)

    @classmethod
    def from_pairs(cls, pairs: list[tuple[Coord, Coord]]) -> "SegmentArray":
        if not pairs:
            return cls(np.empty((0, 2)), np.empty((0, 2)))
        starts = np.array([a for a, _ in pairs], dtype=np.float64)
        ends = np.array([b for _, b in pairs], dtype=np.float64)
        return cls(starts, ends)

    @classmethod
    def from_polyline(cls, coords: list[Coord]) -> "SegmentArray":
        """Consecutive-point segments of a polyline."""
        if len(coords) < 2:
            return cls(np.empty((0, 2)), np.empty((0, 2)))
        array = np.asarray(coords, dtype=np.float64)
        return cls(array[:-1], array[1:])

    def __len__(self) -> int:
        return len(self.starts)

    def distances_to(self, q: Coord) -> np.ndarray:
        """Point-segment distance from ``q`` to every segment (Eq. 3)."""
        if len(self) == 0:
            return np.empty(0)
        qv = np.asarray(q, dtype=np.float64)
        to_q = qv - self.starts
        t = np.einsum("ij,ij->i", to_q, self._delta) / self._safe_norm_sq
        t = np.clip(t, 0.0, 1.0)
        closest = self.starts + t[:, None] * self._delta
        gap = qv - closest
        return np.sqrt(np.einsum("ij,ij->i", gap, gap))

    def min_distance_to(self, q: Coord) -> float:
        """Minimum distance from ``q`` to the segment set (inf if empty)."""
        if len(self) == 0:
            return float("inf")
        return float(self.distances_to(q).min())

    def nearest_order(self, q: Coord) -> list[tuple[int, float]]:
        """Every row index paired with its distance, ascending.

        One vectorised distance pass plus a stable sort, so equidistant
        rows keep their insertion order — the tie-break the segment
        indexes use (ascending sid). Backs the linear index's
        incremental ``iter_nearest`` fast path.
        """
        distances = self.distances_to(q)
        order = np.argsort(distances, kind="stable")
        return [(int(i), float(distances[i])) for i in order]

    def knn(self, q: Coord, k: int) -> list[tuple[int, float]]:
        """The ``k`` nearest segment *positions* (row indices)."""
        if k < 1:
            raise ValueError("k must be positive")
        distances = self.distances_to(q)
        if len(distances) == 0:
            return []
        k = min(k, len(distances))
        order = np.argpartition(distances, k - 1)[:k]
        order = order[np.argsort(distances[order], kind="stable")]
        return [(int(i), float(distances[i])) for i in order]
