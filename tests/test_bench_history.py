"""Tests for the append-only history store (repro.bench.history)."""

import pytest

from repro.bench import (
    BenchHistory,
    BenchRecord,
    BenchScale,
    HistoryError,
    ShiftClass,
)

PAPER = BenchScale(500, 300, 10, paper_scale=True)
SMOKE = BenchScale(60, 120, 5, paper_scale=False)


def _record(wave_s=10.0, *, bench="engine", scale=PAPER):
    return BenchRecord(
        bench=bench,
        scale=scale,
        python="3.11.7",
        metrics={"inter_modification": {"wave_s": wave_s}},
    )


@pytest.fixture
def history(tmp_path):
    return BenchHistory(tmp_path / "BENCH_history.jsonl")


class TestAppendLoad:
    def test_append_preserves_order(self, history):
        for value in (10.0, 11.0, 12.0):
            history.append(_record(value))
        values = [
            r.value("inter_modification.wave_s") for r in history.load()
        ]
        assert values == [10.0, 11.0, 12.0]

    def test_append_only_one_line_per_record(self, history):
        history.append(_record())
        history.append(_record())
        lines = history.path.read_text().splitlines()
        assert len(lines) == 2

    def test_missing_file_is_a_clear_error(self, history):
        with pytest.raises(HistoryError, match="no benchmark history"):
            history.load()
        assert not history.exists()

    def test_corrupt_line_reports_line_number(self, history):
        history.append(_record())
        with open(history.path, "a") as handle:
            handle.write("{broken\n")
        with pytest.raises(HistoryError, match=r":2:"):
            history.load()

    def test_blank_lines_tolerated(self, history):
        history.append(_record())
        with open(history.path, "a") as handle:
            handle.write("\n")
        history.append(_record(11.0))
        assert len(history.load()) == 2


class TestGrouping:
    def test_partitions_by_bench_and_scale(self, history):
        history.append(_record(10.0, scale=PAPER))
        history.append(_record(0.2, scale=SMOKE))
        history.append(_record(9.0, scale=PAPER))
        groups = history.groups()
        assert set(groups) == {
            ("engine", PAPER.key),
            ("engine", SMOKE.key),
        }
        assert len(groups[("engine", PAPER.key)]) == 2

    def test_resolve_full_key_and_family(self, history):
        history.append(_record(scale=PAPER))
        history.append(_record(scale=SMOKE))
        assert history.resolve_scale("engine", PAPER.key) == PAPER.key
        assert history.resolve_scale("engine", "paper") == PAPER.key
        assert history.resolve_scale("engine", "smoke") == SMOKE.key

    def test_resolve_none_needs_single_scale(self, history):
        history.append(_record(scale=PAPER))
        assert history.resolve_scale("engine", None) == PAPER.key
        history.append(_record(scale=SMOKE))
        with pytest.raises(HistoryError, match="pick one with --scale"):
            history.resolve_scale("engine", None)

    def test_resolve_ambiguous_family_refused(self, history):
        history.append(_record(scale=SMOKE))
        history.append(_record(scale=BenchScale(80, 100, 5)))
        with pytest.raises(HistoryError, match="ambiguous"):
            history.resolve_scale("engine", "smoke")

    def test_resolve_unknown_scale_lists_choices(self, history):
        history.append(_record(scale=PAPER))
        with pytest.raises(HistoryError, match=PAPER.key):
            history.resolve_scale("engine", "smoke-9x9-m1")

    def test_resolve_unknown_bench(self, history):
        history.append(_record())
        with pytest.raises(HistoryError, match="no records for bench"):
            history.resolve_scale("nope", None)


class TestCompareLatest:
    def test_scale_confusion_bug_is_fixed(self, history):
        """A smoke record appended after paper records must never be
        weighed against the paper baseline (the latent bug this layer
        exists to close): each partition compares only to itself."""
        history.append(_record(10.0, scale=PAPER))
        history.append(_record(10.1, scale=PAPER))
        # Smoke-scale run is 50x faster — a scale-blind baseline would
        # call this a massive improvement (and the next paper run a
        # catastrophic regression).
        history.append(_record(0.2, scale=SMOKE))
        paper = history.compare_latest("engine", scale="paper")
        (shift,) = paper.shifts
        assert shift.candidate == 10.1
        assert shift.baseline["median"] == 10.0
        assert shift.shift is ShiftClass.STABLE
        smoke = history.compare_latest("engine", scale="smoke")
        assert smoke.window == 0  # only itself: no baseline yet
        assert smoke.new_keys == ("inter_modification.wave_s",)

    def test_single_record_partition_is_clean(self, history):
        history.append(_record())
        comparison = history.compare_latest("engine")
        assert comparison.clean
        assert comparison.window == 0

    def test_compare_all_covers_every_partition(self, history):
        history.append(_record(scale=PAPER))
        history.append(_record(scale=SMOKE))
        history.append(_record(bench="other", scale=SMOKE))
        comparisons = history.compare_all()
        assert len(comparisons) == 3
        assert all(c.clean for c in comparisons)
