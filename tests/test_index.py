"""Tests for the segment indexes: uniform grid, hierarchical grid, searches.

The key property (tested exhaustively with hypothesis) is that every
index/strategy returns exactly the same k-nearest distances as the
brute-force linear scan.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.geometry import BBox
from repro.index.base import IndexedSegment, SegmentRegistry
from repro.index.hierarchical import ROOT, HierarchicalGridIndex
from repro.index.search import KnnCandidates, linear_knn
from repro.index.uniform import UniformGridIndex

BOX = BBox(0.0, 0.0, 1000.0, 1000.0)


def random_segments(n, seed=0, box=BOX):
    rng = random.Random(seed)
    segments = []
    for _ in range(n):
        x = rng.uniform(box.min_x, box.max_x)
        y = rng.uniform(box.min_y, box.max_y)
        dx = rng.uniform(-80, 80)
        dy = rng.uniform(-80, 80)
        segments.append(((x, y), (x + dx, y + dy)))
    return segments


class TestKnnCandidates:
    def test_threshold_infinite_until_full(self):
        c = KnnCandidates(2)
        c.offer(1, 5.0)
        assert c.threshold == float("inf")
        c.offer(2, 3.0)
        assert c.threshold == 5.0

    def test_keeps_best_k(self):
        c = KnnCandidates(2)
        for sid, d in [(1, 5.0), (2, 3.0), (3, 4.0), (4, 10.0)]:
            c.offer(sid, d)
        assert c.results() == [(2, 3.0), (3, 4.0)]

    def test_rejects_worse(self):
        c = KnnCandidates(1)
        assert c.offer(1, 2.0)
        assert not c.offer(2, 3.0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KnnCandidates(0)

    def test_results_sorted(self):
        c = KnnCandidates(5)
        for sid, d in enumerate([9.0, 1.0, 4.0, 7.0, 2.0]):
            c.offer(sid, d)
        dists = [d for _, d in c.results()]
        assert dists == sorted(dists)


class TestSegmentRegistry:
    def test_allocate_and_get(self):
        reg = SegmentRegistry()
        seg = reg.allocate((0, 0), (1, 1), "t")
        assert reg.get(seg.sid) is seg
        assert len(reg) == 1

    def test_ids_unique(self):
        reg = SegmentRegistry()
        a = reg.allocate((0, 0), (1, 1), None)
        b = reg.allocate((0, 0), (1, 1), None)
        assert a.sid != b.sid

    def test_release(self):
        reg = SegmentRegistry()
        seg = reg.allocate((0, 0), (1, 1), None)
        reg.release(seg.sid)
        assert len(reg) == 0
        with pytest.raises(KeyError):
            reg.get(seg.sid)

    def test_release_missing(self):
        with pytest.raises(KeyError):
            SegmentRegistry().release(99)


class TestLinearKnn:
    def test_empty(self):
        assert linear_knn([], (0, 0), 3) == []

    def test_finds_nearest(self):
        segments = [
            IndexedSegment(0, (100, 0), (200, 0)),
            IndexedSegment(1, (0, 10), (0, 20)),
            IndexedSegment(2, (500, 500), (600, 600)),
        ]
        result = linear_knn(segments, (0, 0), 2)
        assert [sid for sid, _ in result] == [1, 0]

    def test_k_larger_than_population(self):
        segments = [IndexedSegment(0, (1, 1), (2, 2))]
        assert len(linear_knn(segments, (0, 0), 5)) == 1


class TestUniformGridIndex:
    def test_insert_remove_len(self):
        index = UniformGridIndex(BOX, granularity=8)
        sid = index.insert((10, 10), (20, 20), "t")
        assert len(index) == 1
        assert index.segment(sid).owner == "t"
        index.remove(sid)
        assert len(index) == 0

    def test_remove_missing(self):
        with pytest.raises(KeyError):
            UniformGridIndex(BOX, granularity=8).remove(5)

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            UniformGridIndex(BOX, granularity=0)

    def test_knn_matches_linear(self):
        index = UniformGridIndex(BOX, granularity=16)
        registry = []
        for a, b in random_segments(120, seed=3):
            sid = index.insert(a, b)
            registry.append(index.segment(sid))
        for q in [(0, 0), (500, 500), (999, 1), (1500, 1500)]:
            got = index.knn(q, 5)
            want = linear_knn(registry, q, 5)
            assert [round(d, 6) for _, d in got] == [round(d, 6) for _, d in want]

    def test_knn_empty(self):
        assert UniformGridIndex(BOX, granularity=4).knn((0, 0), 3) == []

    def test_segment_outside_bbox_clamped(self):
        index = UniformGridIndex(BOX, granularity=8)
        sid = index.insert((-100, -100), (-50, -50))
        got = index.knn((-75, -75), 1)
        assert got[0][0] == sid


class TestHierarchicalStructure:
    def test_best_fit_root_for_spanning_segment(self):
        index = HierarchicalGridIndex(BOX, levels=4)
        key = index.best_fit_cell((10, 10), (990, 990))
        assert key == ROOT

    def test_best_fit_finest_for_tiny_segment(self):
        index = HierarchicalGridIndex(BOX, levels=4)  # finest = 8x8 cells of 125m
        key = index.best_fit_cell((10, 10), (20, 20))
        assert key[0] == 3  # finest level

    def test_best_fit_midlevel(self):
        index = HierarchicalGridIndex(BOX, levels=4)
        # Crosses a 125 m boundary but stays in one 250 m cell.
        key = index.best_fit_cell((110, 10), (140, 10))
        assert key[0] == 2

    def test_parent_of(self):
        assert HierarchicalGridIndex.parent_of((2, 3, 1)) == (1, 1, 0)
        assert HierarchicalGridIndex.parent_of(ROOT) is None

    def test_ancestor_chain_created_and_pruned(self):
        index = HierarchicalGridIndex(BOX, levels=5)
        sid = index.insert((10, 10), (15, 15))
        assert index.cell_count() >= 2  # leaf chain up to root
        index.remove(sid)
        assert index.cell_count() == 0

    def test_cell_bbox_nesting(self):
        index = HierarchicalGridIndex(BOX, levels=4)
        child = index.cell_bbox((2, 1, 1))
        parent = index.cell_bbox((1, 0, 0))
        assert parent.contains_bbox(child)

    def test_min_distance_zero_inside(self):
        index = HierarchicalGridIndex(BOX, levels=4)
        assert index.min_distance((10.0, 10.0), ROOT) == 0.0

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            HierarchicalGridIndex(BOX, levels=0)

    def test_unknown_strategy(self):
        index = HierarchicalGridIndex(BOX, levels=3)
        index.insert((1, 1), (2, 2))
        with pytest.raises(ValueError):
            index.knn((0, 0), 1, strategy="sideways")


@pytest.mark.parametrize("strategy", ["top_down", "bottom_up", "bottom_up_down"])
class TestHierarchicalKnn:
    def build(self, n=150, seed=7, levels=6):
        index = HierarchicalGridIndex(BOX, levels=levels)
        registry = []
        for a, b in random_segments(n, seed=seed):
            sid = index.insert(a, b)
            registry.append(index.segment(sid))
        return index, registry

    def test_matches_linear(self, strategy):
        index, registry = self.build()
        for q in [(0, 0), (500, 500), (123, 456), (999, 999), (-50, 500)]:
            got = index.knn(q, 7, strategy=strategy)
            want = linear_knn(registry, q, 7)
            assert [round(d, 6) for _, d in got] == [round(d, 6) for _, d in want]

    def test_k_one(self, strategy):
        index, registry = self.build(n=40, seed=2)
        got = index.knn((321, 321), 1, strategy=strategy)
        want = linear_knn(registry, (321, 321), 1)
        assert got[0][1] == pytest.approx(want[0][1])

    def test_k_exceeds_population(self, strategy):
        index, registry = self.build(n=5, seed=5)
        got = index.knn((100, 100), 50, strategy=strategy)
        assert len(got) == 5

    def test_empty_index(self, strategy):
        index = HierarchicalGridIndex(BOX, levels=4)
        assert index.knn((0, 0), 3, strategy=strategy) == []

    def test_after_removals(self, strategy):
        index, registry = self.build(n=60, seed=9)
        # Remove the 20 nearest to the query, then re-query.
        q = (400.0, 400.0)
        for sid, _ in index.knn(q, 20, strategy=strategy):
            index.remove(sid)
        remaining = [s for s in registry if s.sid in {seg.sid for seg in iter_registry(index)}]
        got = index.knn(q, 5, strategy=strategy)
        want = linear_knn(remaining, q, 5)
        assert [round(d, 6) for _, d in got] == [round(d, 6) for _, d in want]

    def test_stats_recorded(self, strategy):
        index, _ = self.build(n=100, seed=1)
        index.knn((500, 500), 3, strategy=strategy)
        assert index.last_stats.segments_checked >= 3
        assert index.last_stats.cells_visited >= 1


def iter_registry(index):
    return list(index._registry)


class TestOutOfBoundsSegments:
    """Segments protruding outside the index bbox must not be missed.

    Clamping them into boundary cells breaks the MINdist lower bound
    (the protruding geometry can be closer to an outside query than
    its cell), so both grid indexes route them through an exact-check
    overflow set. Regression for a hypothesis-found counterexample:
    seed=3, n=21, k=3, q=(671, 1125).
    """

    def _build(self):
        segments = random_segments(21, seed=3)
        hier = HierarchicalGridIndex(BOX, levels=5)
        unif = UniformGridIndex(BOX, granularity=16)
        registry = []
        for a, b in segments:
            sid = hier.insert(a, b)
            unif.insert(a, b)
            registry.append(hier.segment(sid))
        return hier, unif, registry

    def test_knn_finds_protruding_neighbour(self):
        hier, unif, registry = self._build()
        q = (671.0, 1125.0)
        want = [round(d, 6) for _, d in linear_knn(registry, q, 3)]
        for strategy in ("top_down", "bottom_up", "bottom_up_down"):
            got = [round(d, 6) for _, d in hier.knn(q, 3, strategy=strategy)]
            assert got == want, strategy
        assert [round(d, 6) for _, d in unif.knn(q, 3)] == want

    def test_iter_nearest_covers_overflow(self):
        hier, unif, registry = self._build()
        q = (671.0, 1125.0)
        want = [sid for sid, _ in linear_knn(registry, q, len(registry))]
        assert [sid for sid, _ in hier.iter_nearest(q)] == want
        assert [sid for sid, _ in unif.iter_nearest(q)] == want

    def test_remove_clears_overflow(self):
        hier = HierarchicalGridIndex(BOX, levels=5)
        unif = UniformGridIndex(BOX, granularity=16)
        outside = ((900.0, 990.0), (905.0, 1100.0))
        for index in (hier, unif):
            sid = index.insert(*outside)
            assert index.knn((900.0, 1150.0), 1)[0][0] == sid
            index.remove(sid)
            assert index.knn((900.0, 1150.0), 1) == []
            assert len(index) == 0


class TestStrategyEquivalenceProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 60),
        k=st.integers(1, 8),
        qx=st.floats(min_value=-200, max_value=1200, allow_nan=False),
        qy=st.floats(min_value=-200, max_value=1200, allow_nan=False),
    )
    def test_all_indexes_agree_with_linear(self, seed, n, k, qx, qy):
        segments = random_segments(n, seed=seed)
        hier = HierarchicalGridIndex(BOX, levels=5)
        unif = UniformGridIndex(BOX, granularity=16)
        registry = []
        for a, b in segments:
            sid = hier.insert(a, b)
            unif.insert(a, b)
            registry.append(hier.segment(sid))
        q = (qx, qy)
        want = [round(d, 6) for _, d in linear_knn(registry, q, k)]
        for strategy in ("top_down", "bottom_up", "bottom_up_down"):
            got = [round(d, 6) for _, d in hier.knn(q, k, strategy=strategy)]
            assert got == want, strategy
        got_unif = [round(d, 6) for _, d in unif.knn(q, k)]
        assert got_unif == want


class TestPruningPower:
    def test_bottom_up_down_checks_fewer_segments_than_top_down(self):
        """The paper's headline claim for HG+: earlier threshold tightening.

        Averaged over queries on clustered data, HG+ should check no
        more segments than the top-down strategy.
        """
        rng = random.Random(4)
        index_td = HierarchicalGridIndex(BOX, levels=8)
        index_bud = HierarchicalGridIndex(BOX, levels=8)
        # Clustered tiny segments in hotspots plus long spanning segments
        # that live near the root (the Example 1 structure).
        cluster_centres = []
        for _ in range(40):
            cx = rng.uniform(100, 900)
            cy = rng.uniform(100, 900)
            cluster_centres.append((cx, cy))
            for _ in range(15):
                x = cx + rng.uniform(-30, 30)
                y = cy + rng.uniform(-30, 30)
                a, b = (x, y), (x + rng.uniform(-10, 10), y + rng.uniform(-10, 10))
                index_td.insert(a, b)
                index_bud.insert(a, b)
        for _ in range(60):
            a = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            b = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            index_td.insert(a, b)
            index_bud.insert(a, b)
        checked_td = 0
        checked_bud = 0
        # Queries land inside clusters: the modification workload queries
        # trajectory points, which live where the data is dense.
        for _ in range(60):
            cx, cy = rng.choice(cluster_centres)
            q = (cx + rng.uniform(-40, 40), cy + rng.uniform(-40, 40))
            index_td.knn(q, 3, strategy="top_down")
            checked_td += index_td.last_stats.segments_checked
            index_bud.knn(q, 3, strategy="bottom_up_down")
            checked_bud += index_bud.last_stats.segments_checked
        assert checked_bud <= checked_td * 1.1
