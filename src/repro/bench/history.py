"""Append-only JSONL store of benchmark records, keyed by scale.

``BENCH_history.jsonl`` (committed, paper-scale records) and its
untracked smoke sibling hold one :class:`~repro.bench.record.BenchRecord`
per line, in chronological append order. The store is partitioned by
``(bench, scale.key)`` — a paper-scale record is never weighed against
a smoke-scale one, which is what makes the regression gate trustworthy:
the smoke fleet legitimately reports ``wave_over_incremental = 0.76``
while paper scale reports ``1.44``, and a scale-blind baseline would
read either as a massive shift of the other.

Appending is the *blessing* operation: once a record is in the
history it joins the sliding baseline window for subsequent runs, so
an intentional regression is accepted by appending the run that
exhibits it (see ``docs/benchmarks.md``).
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.record import BenchRecord, RecordError
from repro.bench.shift import (
    DEFAULT_THRESHOLDS,
    BenchComparison,
    Thresholds,
    compare_records,
)

__all__ = [
    "BenchHistory",
    "HistoryError",
    "DEFAULT_HISTORY_FILENAME",
    "DEFAULT_SMOKE_HISTORY_FILENAME",
    "DEFAULT_WINDOW",
]

#: The committed paper-scale history at the repository root.
DEFAULT_HISTORY_FILENAME = "BENCH_history.jsonl"
#: Untracked sibling every non-paper run appends to (CI artifact).
DEFAULT_SMOKE_HISTORY_FILENAME = "BENCH_history.smoke.jsonl"
#: Sliding baseline window: the last N same-scale records.
DEFAULT_WINDOW = 5

#: Scale families accepted as shorthand for a full scale key.
_FAMILIES = ("paper", "smoke")


class HistoryError(ValueError):
    """The history store is missing, corrupt, or was queried wrongly."""


class BenchHistory:
    """One JSONL history file; loads lazily, appends atomically-ish.

    Records append as single ``write()`` calls of one line, so
    concurrent appenders (parallel CI jobs sharing a workspace) can
    interleave lines but never split one.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.is_file()

    def append(self, record: BenchRecord) -> None:
        line = record.to_jsonl()
        with open(self.path, "a") as handle:
            handle.write(line + "\n")

    def load(self) -> list[BenchRecord]:
        """Every record, in append order; corrupt lines fail loudly."""
        if not self.path.is_file():
            raise HistoryError(
                f"{self.path}: no benchmark history — create one with "
                f"`repro bench record --snapshot BENCH_engine.json "
                f"--history {self.path.name}` or by running the bench "
                f"suite"
            )
        records: list[BenchRecord] = []
        with open(self.path) as handle:
            for number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    records.append(BenchRecord.from_jsonl(line))
                except RecordError as exc:
                    raise HistoryError(
                        f"{self.path}:{number}: {exc}"
                    ) from exc
        return records

    def groups(self) -> dict[tuple[str, str], list[BenchRecord]]:
        """``{(bench, scale_key): [records in append order]}``."""
        grouped: dict[tuple[str, str], list[BenchRecord]] = {}
        for record in self.load():
            grouped.setdefault((record.bench, record.scale.key), []).append(
                record
            )
        return grouped

    def resolve_scale(self, bench: str, scale: str | None) -> str:
        """Resolve a ``--scale`` argument to one full scale key.

        Accepts a full key (``paper-500x300-m10``), a family shorthand
        (``paper`` / ``smoke``) when exactly one key of that family
        exists for the bench, or ``None`` when the bench has exactly
        one scale overall. Ambiguity is an error listing the choices —
        never a silent merge of incomparable scales.
        """
        keys = sorted(
            {
                record.scale.key
                for record in self.load()
                if record.bench == bench
            }
        )
        if not keys:
            raise HistoryError(
                f"{self.path}: no records for bench {bench!r}"
            )
        if scale is None:
            if len(keys) == 1:
                return keys[0]
            raise HistoryError(
                f"{self.path}: bench {bench!r} has records at "
                f"{len(keys)} scales ({', '.join(keys)}); pick one "
                f"with --scale"
            )
        if scale in keys:
            return scale
        if scale in _FAMILIES:
            family_keys = [
                key for key in keys if key.startswith(f"{scale}-")
            ]
            if len(family_keys) == 1:
                return family_keys[0]
            if not family_keys:
                raise HistoryError(
                    f"{self.path}: bench {bench!r} has no {scale}-scale "
                    f"records (have: {', '.join(keys)})"
                )
            raise HistoryError(
                f"{self.path}: --scale {scale} is ambiguous for bench "
                f"{bench!r}: {', '.join(family_keys)}; give the full key"
            )
        raise HistoryError(
            f"{self.path}: unknown scale {scale!r} for bench {bench!r} "
            f"(have: {', '.join(keys)})"
        )

    def compare_latest(
        self,
        bench: str,
        scale: str | None = None,
        window: int = DEFAULT_WINDOW,
        thresholds: Thresholds = DEFAULT_THRESHOLDS,
    ) -> BenchComparison:
        """The newest record of a partition vs the window before it."""
        scale_key = self.resolve_scale(bench, scale)
        records = [
            record
            for record in self.load()
            if record.bench == bench and record.scale.key == scale_key
        ]
        candidate = records[-1]
        return compare_records(
            candidate, records[:-1], thresholds=thresholds, window=window
        )

    def compare_all(
        self,
        window: int = DEFAULT_WINDOW,
        thresholds: Thresholds = DEFAULT_THRESHOLDS,
    ) -> list[BenchComparison]:
        """One comparison per ``(bench, scale)`` partition, sorted."""
        return [
            compare_records(
                records[-1], records[:-1], thresholds=thresholds,
                window=window,
            )
            for _, records in sorted(self.groups().items())
        ]
