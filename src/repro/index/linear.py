"""Trivial no-structure index: the paper's *Linear* baseline.

Implements the same protocol as the grid indexes but answers kNN by a
full scan, so the modification machinery can run against it unchanged
for the efficiency comparison (Figure 5).
"""

from __future__ import annotations

from repro.geo.geometry import Coord
from repro.index.base import IndexedSegment, SegmentRegistry
from repro.index.search import linear_knn


class LinearSegmentIndex:
    """Stores segments in a registry; every query scans all of them."""

    def __init__(self) -> None:
        self._registry = SegmentRegistry()

    def insert(self, a: Coord, b: Coord, owner: str | None = None) -> int:
        return self._registry.allocate(a, b, owner).sid

    def remove(self, sid: int) -> None:
        self._registry.release(sid)

    def segment(self, sid: int) -> IndexedSegment:
        return self._registry.get(sid)

    def knn(self, q: Coord, k: int) -> list[tuple[int, float]]:
        return linear_knn(self._registry, q, k)

    def __len__(self) -> int:
        return len(self._registry)
