"""Shared experiment configuration.

The paper evaluates on |D| = 1000 trajectories of ~1813 points each
with a C++ implementation on a 20-core Xeon. This pure-Python
reproduction scales the workload down (the mechanisms and metrics are
scale-free; relative method ordering is what we reproduce) and exposes
three presets:

* ``smoke``  — seconds; used by the test-suite and CI;
* ``default``— a few minutes; the standard reproduction scale;
* ``large`` — tens of minutes; closest to the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.datagen.generator import FleetConfig, generate_fleet

#: Per-process memo for :func:`cached_fleet`, keyed by the config's
#: repr (FleetConfig is a plain dataclass, not hashable). Bounded:
#: evicted wholesale once it grows past a handful of shapes.
_FLEET_CACHE: dict = {}
_FLEET_CACHE_LIMIT = 8


def cached_fleet(fleet_config: FleetConfig):
    """Generate (or reuse) the deterministic fleet for ``fleet_config``.

    Sweep jobs are self-contained so they can run in worker processes,
    which means each regenerates its (seeded, hence identical) fleet;
    this memo collapses that to one generation per process per config.
    """
    key = repr(fleet_config)
    fleet = _FLEET_CACHE.get(key)
    if fleet is None:
        if len(_FLEET_CACHE) >= _FLEET_CACHE_LIMIT:
            _FLEET_CACHE.clear()
        fleet = _FLEET_CACHE[key] = generate_fleet(fleet_config)
    return fleet


@dataclass(slots=True)
class ExperimentInput:
    """What an experiment job evaluates on.

    ``fleet`` is ``None`` in real-data mode: there is no road-network
    ground truth, so the recovery-attack metric family is skipped
    (``evaluate_method(..., with_recovery=False)``) exactly as the
    paper does for datasets without route ground truth.
    """

    dataset: object  # TrajectoryDataset
    fleet: object | None  # FleetResult | None


def load_experiment_input(config: "ExperimentConfig") -> ExperimentInput:
    """The dataset (and ground-truth fleet, when synthetic) to evaluate.

    When ``config.dataset`` names an ingested artifact (registry name
    or path — see :func:`repro.data.registry.load_dataset`), that real
    dataset is loaded (memoised per process, like the fleet); otherwise
    the synthetic fleet is generated from ``config.fleet``.
    """
    if config.dataset:
        key = f"dataset:{config.dataset}"
        dataset = _FLEET_CACHE.get(key)
        if dataset is None:
            from repro.data.registry import load_dataset

            if len(_FLEET_CACHE) >= _FLEET_CACHE_LIMIT:
                _FLEET_CACHE.clear()
            dataset = _FLEET_CACHE[key] = load_dataset(config.dataset)
        return ExperimentInput(dataset=dataset, fleet=None)
    fleet = cached_fleet(config.fleet)
    return ExperimentInput(dataset=fleet.dataset, fleet=fleet)


@dataclass(slots=True)
class ExperimentConfig:
    """All knobs of the evaluation pipeline."""

    #: Synthetic fleet shape.
    fleet: FleetConfig = field(default_factory=lambda: FleetConfig())
    #: Real-data mode: a dataset reference — ingested-artifact registry
    #: name (``repro ingest --name ...``), artifact directory, or planar
    #: CSV path. ``None`` evaluates on the synthetic fleet above.
    dataset: str | None = None
    #: Signature size m (the paper uses 10 at T-Drive scale).
    signature_size: int = 5
    #: Total privacy budget ε (split evenly for GL).
    epsilon: float = 1.0
    #: k-anonymity parameters (paper: k=5, l=3, t=0.1).
    k_anonymity: int = 5
    l_diversity: int = 3
    t_closeness: float = 0.1
    #: RSC radii in metres (paper's α in km: 0.1, 0.5, 1, 3, 5).
    rsc_radii: tuple[float, ...] = (100.0, 500.0, 1000.0, 3000.0, 5000.0)
    #: Recovery-attack evaluation budget.
    recovery_sample: int = 30
    recovery_max_points: int = 100
    #: HMM map-matcher parameters for the recovery attack. The fairly
    #: tight defaults model an attacker calibrated for clean GPS data:
    #: they recover unperturbed routes very well while frequency
    #: perturbation throws them off (the paper's Section V-B3 contrast).
    recovery_sigma: float = 40.0
    recovery_beta: float = 60.0
    recovery_radius: float = 200.0
    #: Which recovery technique the attacker uses: "hmm" (Newson-Krumm
    #: map matching, the paper's choice) or "path" (greedy shortest-path
    #: inference, the other technique the paper names).
    recovery_attack: str = "hmm"
    #: Linkage attack granularity.
    linkage_cell: float = 250.0
    linkage_top_k: int = 10
    #: Master seed for mechanisms.
    seed: int = 7

    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """Seconds-scale config for tests."""
        return cls(
            fleet=FleetConfig(
                n_objects=20, points_per_trajectory=80, rows=10, cols=10,
                n_hotspots=8, seed=7,
            ),
            signature_size=3,
            recovery_sample=6,
            recovery_max_points=50,
        )

    @classmethod
    def default(cls) -> "ExperimentConfig":
        """Minutes-scale reproduction config."""
        return cls(
            fleet=FleetConfig(
                n_objects=100, points_per_trajectory=250, rows=24, cols=24,
                n_hotspots=15, seed=7,
            ),
            signature_size=5,
            recovery_sample=30,
            recovery_max_points=100,
        )

    @classmethod
    def large(cls) -> "ExperimentConfig":
        """Closest to the paper's |D| = 1000 setting (slow)."""
        return cls(
            fleet=FleetConfig(
                n_objects=1000, points_per_trajectory=500, rows=40, cols=40,
                n_hotspots=20, seed=7,
            ),
            signature_size=10,
            recovery_sample=100,
            recovery_max_points=200,
        )

    def model_params(self, epsilon: float | None = None) -> dict:
        """Spec params for a frequency model (GL/PureG/PureL) run.

        The shared ``(epsilon, signature_size, seed)`` triple every
        frequency-model :class:`~repro.api.spec.MethodSpec` of the
        experiment harness derives from; ``epsilon`` defaults to the
        config's total budget (Table II halves it for the pure models).
        """
        return {
            "epsilon": self.epsilon if epsilon is None else epsilon,
            "signature_size": self.signature_size,
            "seed": self.seed,
        }

    def with_epsilon(self, epsilon: float) -> "ExperimentConfig":
        return replace(self, epsilon=epsilon)

    def with_objects(self, n_objects: int) -> "ExperimentConfig":
        return replace(self, fleet=replace(self.fleet, n_objects=n_objects))

    def with_dataset(self, dataset: str | None) -> "ExperimentConfig":
        return replace(self, dataset=dataset)


PRESETS = ("smoke", "default", "large")


def parse_driver_args(
    argv: list[str], prog: str
) -> tuple[str, "ExperimentConfig", int]:
    """Shared CLI of the fig4/fig5/table2 drivers.

    ``[preset] [workers] [--dataset REF]`` — positionals stay optional
    and ordered for backwards compatibility with the original
    ``main(["smoke", "2"])`` convention. Returns
    ``(preset, config, workers)``.
    """
    import argparse

    parser = argparse.ArgumentParser(prog=prog)
    parser.add_argument("preset", nargs="?", choices=PRESETS, default="default")
    parser.add_argument(
        "workers",
        nargs="?",
        type=int,
        default=1,
        help="fan the sweep across N worker processes (1 = serial)",
    )
    parser.add_argument(
        "--dataset",
        default=None,
        metavar="REF",
        help="evaluate on an ingested real dataset (registry name, "
        "artifact directory, or CSV path) instead of the synthetic fleet",
    )
    args = parser.parse_args(argv)
    config = {
        "smoke": ExperimentConfig.smoke,
        "default": ExperimentConfig.default,
        "large": ExperimentConfig.large,
    }[args.preset]()
    if args.dataset:
        config = config.with_dataset(args.dataset)
    return args.preset, config, args.workers
