"""Benchmarks for the batch engine and the incremental kNN frontier.

The headline comparison: the inter-trajectory (global) modification
stage with the seed restart-scan candidate search versus the engine's
incremental ``iter_nearest`` consumption — same selections, same
utility loss, but the incremental path stops scanning the moment the
Δl-th owner is found instead of re-running kNN with a 4x-growing k.

Runs on a dedicated fleet larger than the smoke preset so the restart
overhead is visible, yet small enough for CI.
"""

import random

import pytest

from repro.core.global_mechanism import GlobalTFMechanism
from repro.core.modification import InterTrajectoryModifier, make_index_factory
from repro.core.pipeline import PureL
from repro.core.signature import SignatureExtractor
from repro.datagen.generator import FleetConfig, generate_fleet
from repro.engine import BatchAnonymizer


@pytest.fixture(scope="module")
def engine_fleet():
    return generate_fleet(
        FleetConfig(
            n_objects=60, points_per_trajectory=120, rows=16, cols=16,
            n_hotspots=12, seed=7,
        )
    )


@pytest.fixture(scope="module")
def tf_perturbation(engine_fleet):
    signature_index = SignatureExtractor(m=5).extract(engine_fleet.dataset)
    return GlobalTFMechanism(0.5).perturb(
        signature_index.tf, len(engine_fleet.dataset), random.Random(1)
    )


def _apply_inter(dataset, perturbation, candidate_source):
    modifier = InterTrajectoryModifier(
        make_index_factory("hierarchical"), candidate_source=candidate_source
    )
    return modifier.apply(dataset, perturbation)


def test_bench_inter_restart_scan(benchmark, engine_fleet, tf_perturbation):
    """Baseline: the seed restart-scan candidate search."""
    _, report = benchmark(
        lambda: _apply_inter(engine_fleet.dataset, tf_perturbation, "restart")
    )
    assert report.insertions > 0


def test_bench_inter_incremental(benchmark, engine_fleet, tf_perturbation):
    """The engine path: lazy iter_nearest consumption."""
    _, report = benchmark(
        lambda: _apply_inter(engine_fleet.dataset, tf_perturbation, "incremental")
    )
    assert report.insertions > 0


def test_inter_modes_cost_equivalent(engine_fleet, tf_perturbation):
    """Not a bench: the two modes must realise the same TF at (near)
    the same total cost — the speedup is free.

    Per-location selections are cost-identical; over a whole run,
    exact-distance ties at the restart path's k boundary may resolve to
    a different equally-cheap owner and compound into a sub-percent
    utility difference, hence the loose tolerance.
    """
    restart_out, restart = _apply_inter(
        engine_fleet.dataset, tf_perturbation, "restart"
    )
    incremental_out, incremental = _apply_inter(
        engine_fleet.dataset, tf_perturbation, "incremental"
    )
    assert incremental.insertions == restart.insertions
    assert incremental.deletions == restart.deletions
    assert incremental.unrealised == restart.unrealised
    assert (
        incremental_out.trajectory_frequencies()
        == restart_out.trajectory_frequencies()
    )
    assert incremental.utility_loss == pytest.approx(
        restart.utility_loss, rel=1e-2
    )


def test_bench_local_stage_serial(benchmark, engine_fleet):
    benchmark.pedantic(
        lambda: PureL(epsilon=0.5, signature_size=5, seed=7).anonymize(
            engine_fleet.dataset
        ),
        rounds=1,
        iterations=1,
    )


def test_bench_local_stage_batch(benchmark, engine_fleet):
    """Sharded local stage via the process pool (falls back to serial
    where pools are unavailable; output is identical either way)."""
    benchmark.pedantic(
        lambda: BatchAnonymizer(
            PureL(epsilon=0.5, signature_size=5, seed=7), workers=0
        ).anonymize(engine_fleet.dataset),
        rounds=1,
        iterations=1,
    )


def test_batch_output_identical_to_serial(engine_fleet):
    serial = PureL(epsilon=0.5, signature_size=5, seed=7).anonymize(
        engine_fleet.dataset
    )
    batched = BatchAnonymizer(
        PureL(epsilon=0.5, signature_size=5, seed=7), workers=4
    ).anonymize(engine_fleet.dataset)
    for a, b in zip(serial, batched):
        assert [p.coord for p in a] == [p.coord for p in b]
