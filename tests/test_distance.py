"""Tests for trajectory-to-trajectory distances."""

import pytest

from repro.trajectory.distance import (
    hausdorff_distance,
    spatiotemporal_edit_distance,
    synchronized_distance,
)
from repro.trajectory.model import Point, Trajectory


def traj(coords, t0=0.0, dt=60.0, object_id="t"):
    return Trajectory(
        object_id,
        [Point(float(x), float(y), t0 + dt * i) for i, (x, y) in enumerate(coords)],
    )


class TestHausdorff:
    def test_identical_is_zero(self):
        a = traj([(0, 0), (10, 0)])
        assert hausdorff_distance(a, a) == 0.0

    def test_known_value(self):
        a = traj([(0, 0), (10, 0)])
        b = traj([(0, 5), (10, 5)])
        assert hausdorff_distance(a, b) == pytest.approx(5.0)

    def test_symmetric(self):
        a = traj([(0, 0), (10, 0), (20, 3)])
        b = traj([(0, 5), (12, 5)])
        assert hausdorff_distance(a, b) == pytest.approx(hausdorff_distance(b, a))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            hausdorff_distance(traj([]), traj([(0, 0)]))


class TestSpatioTemporalEditDistance:
    def test_identical_is_zero(self):
        a = traj([(0, 0), (100, 0), (200, 0)])
        assert spatiotemporal_edit_distance(a, a) == 0.0

    def test_completely_different_is_one(self):
        a = traj([(0, 0), (100, 0)])
        b = traj([(100000, 100000), (200000, 100000)])
        assert spatiotemporal_edit_distance(a, b) == pytest.approx(1.0)

    def test_time_mismatch_counts(self):
        a = traj([(0, 0), (100, 0)], t0=0.0)
        b = traj([(0, 0), (100, 0)], t0=100000.0)
        assert spatiotemporal_edit_distance(a, b, time_tolerance=600.0) == pytest.approx(1.0)

    def test_partial_overlap_between_zero_and_one(self):
        a = traj([(0, 0), (100, 0), (200, 0), (300, 0)])
        b = traj([(0, 0), (100, 0), (90000, 90000), (91000, 90000)])
        d = spatiotemporal_edit_distance(a, b)
        assert 0.0 < d < 1.0

    def test_normalised_range(self):
        a = traj([(0, 0)] * 5)
        b = traj([(10000, 10000)] * 3)
        d = spatiotemporal_edit_distance(a, b)
        assert 0.0 <= d <= 1.0

    def test_empty_cases(self):
        assert spatiotemporal_edit_distance(traj([]), traj([])) == 0.0
        assert spatiotemporal_edit_distance(traj([]), traj([(0, 0)])) == 1.0

    def test_banded_matches_exact_for_small_inputs(self):
        a = traj([(i * 100, 0) for i in range(10)])
        b = traj([(i * 100, 50) for i in range(8)])
        banded = spatiotemporal_edit_distance(a, b, band=64)
        exact = spatiotemporal_edit_distance(a, b, band=None)
        assert banded == pytest.approx(exact)


class TestSynchronizedDistance:
    def test_identical_is_zero(self):
        a = traj([(0, 0), (100, 0), (200, 0)])
        assert synchronized_distance(a, a) == 0.0

    def test_parallel_offset(self):
        a = traj([(0, 0), (100, 0)])
        b = traj([(0, 30), (100, 30)])
        assert synchronized_distance(a, b) == pytest.approx(30.0)

    def test_different_lengths_supported(self):
        a = traj([(0, 0), (50, 0), (100, 0)])
        b = traj([(0, 10), (100, 10)])
        assert synchronized_distance(a, b) == pytest.approx(10.0, rel=0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            synchronized_distance(traj([]), traj([(0, 0)]))
