"""Geometry primitives shared across the library.

Everything in :mod:`repro` works in a local planar coordinate system
measured in metres, which matches how the paper treats distances (its
utility-loss definitions are plain Euclidean point-segment distances).
Helpers for converting latitude/longitude data into this plane live in
:mod:`repro.trajectory.io`.
"""

from repro.geo.geometry import (
    BBox,
    point_distance,
    point_segment_distance,
    project_onto_segment,
    segment_length,
)

__all__ = [
    "BBox",
    "point_distance",
    "point_segment_distance",
    "project_onto_segment",
    "segment_length",
]
