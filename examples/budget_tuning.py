#!/usr/bin/env python
"""Tuning the privacy budget: the privacy/utility dial of Figure 4.

Sweeps epsilon for the GL model and prints the trade-off curve a data
owner would use to pick an operating point, plus the effect of the
global/local budget split (the paper uses 50/50; Theorem 1 allows any
split).

Run with::

    python examples/budget_tuning.py
"""

from repro import FleetConfig, FrequencyAnonymizer, GL, generate_fleet
from repro.attacks.linkage import LinkageAttack
from repro.metrics.utility import frequent_pattern_f1, information_loss


def main() -> None:
    fleet = generate_fleet(
        FleetConfig(n_objects=40, points_per_trajectory=120, rows=14, cols=14, seed=2)
    )
    attack = LinkageAttack(cell_size=250.0)

    print("== epsilon sweep (GL, 50/50 split) ==")
    print(f"{'eps':>6s} {'LA_s':>8s} {'INF':>8s} {'FFP':>8s}")
    for epsilon in (0.1, 0.5, 1.0, 2.0, 5.0, 10.0):
        private = GL(epsilon=epsilon, signature_size=5, seed=4).anonymize(
            fleet.dataset
        )
        la = attack.linking_accuracy(fleet.dataset, private, "spatial")
        inf = information_loss(fleet.dataset, private, sample_stride=2)
        ffp = frequent_pattern_f1(fleet.dataset, private)
        print(f"{epsilon:6.1f} {la:8.3f} {inf:8.3f} {ffp:8.3f}")
    print("smaller eps -> more noise -> better privacy, less utility;")
    print("the curve is the operating dial of Figure 4.\n")

    print("== budget split at eps = 1.0 ==")
    print(f"{'eps_G':>6s} {'eps_L':>6s} {'LA_s':>8s} {'FFP':>8s}")
    for share in (0.25, 0.5, 0.75):
        eps_g = 1.0 * share
        eps_l = 1.0 - eps_g
        anonymizer = FrequencyAnonymizer(
            epsilon_global=eps_g, epsilon_local=eps_l, signature_size=5, seed=4
        )
        private = anonymizer.anonymize(fleet.dataset)
        la = attack.linking_accuracy(fleet.dataset, private, "spatial")
        ffp = frequent_pattern_f1(fleet.dataset, private)
        print(f"{eps_g:6.2f} {eps_l:6.2f} {la:8.3f} {ffp:8.3f}")
    print("spending more of the budget locally protects individual")
    print("signatures harder; spending globally blurs hotspot structure.")


if __name__ == "__main__":
    main()
