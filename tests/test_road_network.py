"""Tests for the synthetic road network substrate."""

import pytest

from repro.datagen.road_network import build_road_network
from repro.geo.geometry import point_distance


@pytest.fixture(scope="module")
def network():
    return build_road_network(rows=10, cols=10, spacing=600.0, seed=1)


class TestBuildRoadNetwork:
    def test_node_count(self, network):
        assert len(network) == 100

    def test_deterministic_for_seed(self):
        a = build_road_network(rows=5, cols=5, seed=3)
        b = build_road_network(rows=5, cols=5, seed=3)
        assert a.coords == b.coords
        assert [e.key for e in a.edges] == [e.key for e in b.edges]

    def test_different_seeds_differ(self):
        a = build_road_network(rows=5, cols=5, seed=3)
        b = build_road_network(rows=5, cols=5, seed=4)
        assert a.coords != b.coords

    def test_connected(self, network):
        # BFS from node 0 must reach everything.
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for edge in network.adjacency[node]:
                neighbour = edge.other(node)
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        assert len(seen) == len(network)

    def test_some_edges_removed(self, network):
        full_lattice = 2 * 10 * 9  # horizontal + vertical edges of a 10x10 grid
        assert len(network.edges) < full_lattice

    def test_edge_lengths_close_to_spacing(self, network):
        lengths = [e.length for e in network.edges]
        mean = sum(lengths) / len(lengths)
        assert 400.0 < mean < 800.0


class TestQueries:
    def test_nearest_node_exact(self, network):
        coord = network.node_coord(42)
        assert network.nearest_node(coord) == 42

    def test_nearest_node_offset(self, network):
        coord = network.node_coord(42)
        found = network.nearest_node((coord[0] + 50.0, coord[1] + 50.0))
        # Must be at least as close as node 42 itself.
        d_found = point_distance(network.node_coord(found), (coord[0] + 50.0, coord[1] + 50.0))
        assert d_found <= point_distance(coord, (coord[0] + 50.0, coord[1] + 50.0)) + 1e-9

    def test_nearest_node_brute_force_agreement(self, network):
        query = (1234.0, 2345.0)
        found = network.nearest_node(query)
        best = min(range(len(network)), key=lambda n: point_distance(query, network.node_coord(n)))
        assert point_distance(query, network.node_coord(found)) == pytest.approx(
            point_distance(query, network.node_coord(best))
        )

    def test_edges_near_radius(self, network):
        coord = network.node_coord(0)
        hits = network.edges_near(coord, radius=100.0)
        assert hits, "expected at least the incident edges"
        for _edge, dist in hits:
            assert dist <= 100.0
        dists = [d for _, d in hits]
        assert dists == sorted(dists)

    def test_edges_near_empty_far_away(self, network):
        assert network.edges_near((1e9, 1e9), radius=10.0) == []

    def test_project_onto_edge(self, network):
        edge = network.edges[0]
        mid = (
            (network.node_coord(edge.u)[0] + network.node_coord(edge.v)[0]) / 2,
            (network.node_coord(edge.u)[1] + network.node_coord(edge.v)[1]) / 2,
        )
        closest, offset = network.project(mid, edge)
        assert point_distance(closest, mid) < 1e-6
        assert offset == pytest.approx(edge.length / 2, rel=1e-6)


class TestRouting:
    def test_shortest_path_endpoints(self, network):
        path = network.shortest_path(0, 99)
        assert path[0] == 0
        assert path[-1] == 99

    def test_path_edges_exist(self, network):
        path = network.shortest_path(0, 99)
        edge_keys = {e.key for e in network.edges}
        for i in range(len(path) - 1):
            u, v = path[i], path[i + 1]
            assert ((u, v) if u < v else (v, u)) in edge_keys

    def test_self_path(self, network):
        assert network.shortest_path(7, 7) == [7]

    def test_network_distance_at_least_euclidean(self, network):
        d_net = network.network_distance(0, 99)
        d_euc = point_distance(network.node_coord(0), network.node_coord(99))
        assert d_net >= d_euc - 1e-6

    def test_route_points_spacing(self, network):
        path = network.shortest_path(0, 99)
        pts = network.route_points(path, step=600.0)
        assert pts[0] == network.node_coord(0)
        assert pts[-1] == network.node_coord(99)
        for i in range(len(pts) - 1):
            assert point_distance(pts[i], pts[i + 1]) <= 600.0 + 1e-6

    def test_route_points_short_path(self, network):
        assert network.route_points([5], step=600.0) == [network.node_coord(5)]
