"""Drive the rules over a file tree and render the results.

:func:`analyze_paths` is the programmatic entry the CLI and
``tools/check_static.py`` share; :func:`analyze_source` analyzes one
in-memory snippet (the test fixture path). Suppression
(``# repro: noqa[CODE]``) and baseline matching happen here, after the
rules run, so individual rules stay oblivious to both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .baseline import Baseline, BaselineEntry
from .findings import Finding
from .rules import Rule, iter_codes, rules_for
from .visitor import ALL_CODES, ModuleInfo, Project, module_name_for

#: JSON-schema-store URI for SARIF 2.1.0 (what GitHub code scanning
#: validates uploads against).
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


class AnalysisError(Exception):
    """The analyzer itself failed (unreadable file, syntax error) —
    distinct from "findings exist"; maps to exit code 2."""


@dataclass(frozen=True)
class UnusedNoqa:
    """A ``# repro: noqa`` comment that suppressed nothing this run."""

    path: str
    line: int
    #: The dead codes (``("*",)`` for a bare ``# repro: noqa``).
    codes: tuple[str, ...]

    def render(self) -> str:
        spec = "" if self.codes == (ALL_CODES,) else f"[{', '.join(self.codes)}]"
        return (
            f"warning: unused suppression `# repro: noqa{spec}` at "
            f"{self.path}:{self.line} — nothing it names fires there; "
            f"remove it so it cannot mask a future regression"
        )

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "codes": list(self.codes)}


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    #: Findings that count against the exit code.
    findings: list[Finding] = field(default_factory=list)
    #: Findings silenced by an inline ``# repro: noqa`` comment.
    suppressed: list[Finding] = field(default_factory=list)
    #: Findings absorbed by the baseline file.
    baselined: list[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (should be deleted).
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    #: ``# repro: noqa`` comments that suppressed nothing (warnings —
    #: they do not affect the exit code).
    unused_noqa: list[UnusedNoqa] = field(default_factory=list)
    #: Files analyzed.
    files: int = 0
    #: Rule codes that ran.
    codes: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "files": self.files,
            "codes": self.codes,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": [e.to_dict() for e in self.stale_baseline],
            "unused_noqa": [u.to_dict() for u in self.unused_noqa],
            "clean": self.clean,
        }

    def to_sarif(self) -> dict:
        """The report as a SARIF 2.1.0 log (one run), ready for GitHub
        code-scanning upload. Only counted findings become results;
        suppressed/baselined ones are omitted."""
        from .rules import all_rules

        ran = set(self.codes)
        driver_rules = [
            {
                "id": rule.code,
                "name": type(rule).__name__,
                "shortDescription": {"text": rule.summary},
                "fullDescription": {"text": rule.rationale},
                "help": {"text": rule.example},
            }
            for rule in all_rules()
            if rule.code in ran
        ]
        results = []
        for finding in self.findings:
            region: dict = {
                "startLine": finding.line,
                "startColumn": finding.col + 1,
            }
            if finding.snippet:
                region["snippet"] = {"text": finding.snippet}
            results.append(
                {
                    "ruleId": finding.code,
                    "level": "error",
                    "message": {"text": finding.message},
                    "locations": [
                        {
                            "physicalLocation": {
                                "artifactLocation": {"uri": finding.path},
                                "region": region,
                            }
                        }
                    ],
                }
            )
        return {
            "$schema": SARIF_SCHEMA,
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-check",
                            "rules": driver_rules,
                        }
                    },
                    "results": results,
                }
            ],
        }

    def render_human(self) -> str:
        lines: list[str] = []
        for finding in self.findings:
            lines.append(finding.render())
            if finding.snippet:
                lines.append(f"    {finding.snippet}")
        for entry in self.stale_baseline:
            lines.append(
                f"warning: stale baseline entry {entry.code} for "
                f"{entry.path!r} ({entry.snippet!r}) matches nothing — "
                f"delete it"
            )
        for unused in self.unused_noqa:
            lines.append(unused.render())
        summary = (
            f"checked {self.files} file(s) against "
            f"{len(self.codes)} rule(s): "
        )
        if self.clean:
            summary += "clean"
        else:
            summary += f"{len(self.findings)} finding(s)"
        extras = []
        if self.suppressed:
            extras.append(f"{len(self.suppressed)} suppressed")
        if self.baselined:
            extras.append(f"{len(self.baselined)} baselined")
        if extras:
            summary += f" ({', '.join(extras)})"
        lines.append(summary)
        return "\n".join(lines)


def _iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise AnalysisError(f"{path}: not a Python file or directory")


def load_project(paths: Sequence[Path], root: Path | None = None) -> Project:
    """Parse every ``.py`` under ``paths`` into a :class:`Project`.

    Paths in findings are reported relative to ``root`` (default: the
    current directory) when possible, POSIX-style.
    """
    root = Path.cwd() if root is None else Path(root)
    project = Project()
    seen: set[Path] = set()
    for file_path in _iter_python_files([Path(p) for p in paths]):
        resolved = file_path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        try:
            source = file_path.read_text()
        except OSError as exc:
            raise AnalysisError(f"{file_path}: unreadable: {exc}") from exc
        try:
            relative = str(resolved.relative_to(root.resolve()).as_posix())
        except ValueError:
            relative = file_path.as_posix()
        name = module_name_for(file_path, root)
        try:
            project.modules.append(ModuleInfo.parse(source, relative, name))
        except SyntaxError as exc:
            raise AnalysisError(f"{file_path}: syntax error: {exc}") from exc
    return project


def run_rules(project: Project, rules: Sequence[Rule]) -> list[Finding]:
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(project))
    return sorted(findings, key=Finding.sort_key)


def analyze_project(
    project: Project,
    rules: Sequence[Rule] | None = None,
    baseline: Baseline | None = None,
    codes: Iterable[str] | None = None,
) -> AnalysisReport:
    """Run ``rules`` (or the registered set restricted to ``codes``)
    over an already-parsed project."""
    if rules is None:
        rules = rules_for(list(codes) if codes is not None else None)
    raw = run_rules(project, rules)
    by_path = {module.path: module for module in project.modules}
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and module.suppressed(finding.code, finding.line):
            suppressed.append(finding)
        else:
            kept.append(finding)
    if baseline is None:
        active, baselined, stale = kept, [], []
    else:
        active, baselined, stale = baseline.apply(kept)
    return AnalysisReport(
        findings=active,
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
        unused_noqa=_unused_suppressions(project, suppressed, rules),
        files=len(project.modules),
        codes=[rule.code for rule in rules],
    )


def _unused_suppressions(
    project: Project, suppressed: Sequence[Finding], rules: Sequence[Rule]
) -> list[UnusedNoqa]:
    """``# repro: noqa`` comments nothing in this run needed.

    A named code is only called unused when that code actually ran; a
    bare ``# repro: noqa`` is only called unused when the full rule set
    ran (a restricted ``--rules`` run cannot tell what it would have
    suppressed)."""
    used: dict[tuple[str, int], set[str]] = {}
    for finding in suppressed:
        used.setdefault((finding.path, finding.line), set()).add(finding.code)
    ran = {rule.code for rule in rules}
    full_run = ran >= set(iter_codes())
    unused: list[UnusedNoqa] = []
    for module in project.modules:
        for line, named in sorted(module.noqa.items()):
            used_here = used.get((module.path, line), set())
            if ALL_CODES in named:
                if full_run and not used_here:
                    unused.append(UnusedNoqa(module.path, line, (ALL_CODES,)))
                continue
            dead = tuple(
                sorted(code for code in named if code in ran and code not in used_here)
            )
            if dead:
                unused.append(UnusedNoqa(module.path, line, dead))
    return unused


def analyze_paths(
    paths: Sequence[Path | str],
    root: Path | str | None = None,
    baseline: Baseline | Path | str | None = None,
    codes: Iterable[str] | None = None,
) -> AnalysisReport:
    """Analyze a file tree: the CLI/CI entry point.

    ``baseline`` may be a loaded :class:`Baseline` or a path to one;
    ``codes`` restricts the rule set (default: every registered rule).
    """
    root_path = Path.cwd() if root is None else Path(root)
    if baseline is not None and not isinstance(baseline, Baseline):
        baseline = Baseline.load(Path(baseline))
    project = load_project([Path(p) for p in paths], root=root_path)
    return analyze_project(project, baseline=baseline, codes=codes)


def analyze_source(
    source: str,
    path: str = "<snippet>.py",
    module: str = "snippet",
    codes: Iterable[str] | None = None,
    baseline: Baseline | None = None,
) -> AnalysisReport:
    """Analyze one in-memory snippet (test-fixture convenience)."""
    try:
        info = ModuleInfo.parse(source, path, module)
    except SyntaxError as exc:
        raise AnalysisError(f"{path}: syntax error: {exc}") from exc
    project = Project(modules=[info])
    return analyze_project(project, baseline=baseline, codes=codes)
