"""Spill staging for the two-pass streaming publisher.

Pass 1 of :class:`~repro.engine.publish.StreamPublisher` used to be
"parse everything, keep nothing": the chunk source was re-opened and
re-parsed for pass 2. The spill store removes that second parse — each
chunk is staged to disk **once, already parsed**, and pass 2 replays
the parsed state (possibly from another process).

Format — one file per chunk, ``chunk-NNNNNN.spill``:

* **Line 1 (ASCII header):** ``repro-spill 1 chunk=<i>
  trajectories=<n> payload=<bytes> sha256=<hex>`` — everything a
  reader needs to validate the body before trusting it.
* **Body:** one binary frame per trajectory — ``<id-bytes:u32>
  <n-points:u32> <object id, UTF-8> <n-points × (x, y, t) as
  little-endian float64>``.

The codec is exact: ``float64`` round-trips every coordinate
bit-for-bit, which the publisher's byte-identity contract requires
(the CSV row format is ``%.3f``-quantised and would silently corrupt a
second-pass input). It is also fast — at paper scale (500×300 points)
encoding is ~9x and decoding ~2x faster than pickling the dataset,
which matters because the spill write sits on pass 1's critical path.

Every read is validated: header shape, spill version, chunk index,
payload length, SHA-256 checksum, frame bounds, and trajectory count
must all agree, and any mismatch raises :class:`SpillError` carrying
the file, line/byte position, and what diverged. A truncated or
mutated spill therefore aborts pass 2 loudly instead of publishing a
short or stale release — the single-consumption analogue of the old
two-pass drift check.

:class:`SpillStore` owns a spill directory's lifecycle: staged files
are removed on :meth:`~SpillStore.close` (context-manager exit covers
success *and* failure paths), and a store created without an explicit
directory deletes its own tempdir too.
"""

from __future__ import annotations

import hashlib
import shutil
import struct
import tempfile
from array import array
from pathlib import Path

from repro.trajectory.model import Point, Trajectory, TrajectoryDataset

#: First token of a spill header line; anything else is not a spill.
SPILL_MAGIC = "repro-spill"
#: Format version written by :func:`write_spill`.
SPILL_VERSION = 1

#: Per-trajectory frame prefix: object-id byte length, point count.
_FRAME = struct.Struct("<II")
#: One point is three little-endian float64 values: x, y, t.
_POINT_BYTES = 24


class SpillError(ValueError):
    """A spill file failed validation (truncated, mutated, or foreign)."""


# -- codec ----------------------------------------------------------------------


def encode_chunk(dataset: TrajectoryDataset) -> bytes:
    """Serialise a parsed chunk to the exact binary frame format."""
    parts: list[bytes] = []
    for trajectory in dataset:
        ident = trajectory.object_id.encode("utf-8")
        coords = array("d")
        for point in trajectory:
            coords.append(point.x)
            coords.append(point.y)
            coords.append(point.t)
        parts.append(_FRAME.pack(len(ident), len(trajectory)))
        parts.append(ident)
        parts.append(coords.tobytes())
    return b"".join(parts)


def decode_chunk(payload: bytes, source: str = "<spill>") -> TrajectoryDataset:
    """Decode a spill payload; positional :class:`SpillError` on damage."""
    trajectories: list[Trajectory] = []
    view = memoryview(payload)
    offset = 0
    total = len(payload)
    while offset < total:
        if total - offset < _FRAME.size:
            raise SpillError(
                f"{source}: byte {offset}: truncated trajectory frame "
                f"header ({total - offset} byte(s) left, need {_FRAME.size})"
            )
        id_len, n_points = _FRAME.unpack_from(payload, offset)
        offset += _FRAME.size
        end = offset + id_len + n_points * _POINT_BYTES
        if end > total:
            raise SpillError(
                f"{source}: byte {offset}: trajectory frame runs past the "
                f"end of the payload (needs {end - offset} byte(s), "
                f"{total - offset} left)"
            )
        try:
            object_id = bytes(view[offset : offset + id_len]).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SpillError(
                f"{source}: byte {offset}: object id is not UTF-8 ({exc})"
            ) from exc
        offset += id_len
        coords = array("d")
        coords.frombytes(view[offset:end])
        offset = end
        points = [
            Point(coords[i], coords[i + 1], coords[i + 2])
            for i in range(0, len(coords), 3)
        ]
        trajectories.append(Trajectory(object_id, points))
    return TrajectoryDataset(trajectories)


# -- framed files ---------------------------------------------------------------


def _header_line(index: int, trajectories: int, payload: bytes) -> bytes:
    digest = hashlib.sha256(payload).hexdigest()
    return (
        f"{SPILL_MAGIC} {SPILL_VERSION} chunk={index} "
        f"trajectories={trajectories} payload={len(payload)} "
        f"sha256={digest}\n"
    ).encode("ascii")


def write_spill(path: str | Path, index: int, dataset: TrajectoryDataset) -> int:
    """Stage one parsed chunk at ``path``; returns the payload size."""
    payload = encode_chunk(dataset)
    with open(path, "wb") as handle:
        handle.write(_header_line(index, len(dataset), payload))
        handle.write(payload)
    return len(payload)


def _parse_header(path: Path, line: bytes) -> dict[str, int | str]:
    fields = line.decode("ascii", errors="replace").split()
    if len(fields) != 6 or fields[0] != SPILL_MAGIC:
        raise SpillError(
            f"{path}:1: not a spill file (expected a '{SPILL_MAGIC}' "
            f"header line)"
        )
    if fields[1] != str(SPILL_VERSION):
        raise SpillError(
            f"{path}:1: unsupported spill version {fields[1]!r} "
            f"(this reader speaks version {SPILL_VERSION})"
        )
    header: dict[str, int | str] = {}
    for position, (field, key) in enumerate(
        zip(fields[2:], ("chunk", "trajectories", "payload", "sha256")),
        start=3,
    ):
        name, sep, value = field.partition("=")
        if name != key or not sep:
            raise SpillError(
                f"{path}:1: malformed header field {position} "
                f"({field!r}; expected '{key}=...')"
            )
        if key == "sha256":
            header[key] = value
        else:
            try:
                header[key] = int(value)
            except ValueError as exc:
                raise SpillError(
                    f"{path}:1: malformed header field {position} "
                    f"({field!r}; {key} must be an integer)"
                ) from exc
    return header


def _read_validated(
    path: Path, index: int | None
) -> tuple[dict[str, int | str], bytes]:
    """Header + length + checksum validation; returns (header, payload)."""
    try:
        with open(path, "rb") as handle:
            line = handle.readline()
            payload = handle.read()
    except OSError as exc:
        raise SpillError(f"{path}: cannot read spill: {exc}") from exc
    if not line.endswith(b"\n"):
        raise SpillError(f"{path}:1: truncated header line")
    header = _parse_header(path, line[:-1])
    if index is not None and header["chunk"] != index:
        raise SpillError(
            f"{path}:1: spill holds chunk {header['chunk']}, "
            f"expected chunk {index}"
        )
    if len(payload) != header["payload"]:
        raise SpillError(
            f"{path}:2: payload truncated: header promises "
            f"{header['payload']} byte(s), file holds {len(payload)}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header["sha256"]:
        raise SpillError(
            f"{path}:2: payload checksum mismatch (spill mutated after "
            f"staging?)"
        )
    return header, payload


def read_spill(
    path: str | Path,
    index: int | None = None,
    expected_trajectories: int | None = None,
) -> TrajectoryDataset:
    """Load and fully validate one staged chunk.

    ``index`` / ``expected_trajectories`` pin what pass 1 recorded for
    this chunk; a spill that disagrees (renamed, swapped, truncated,
    edited) raises :class:`SpillError` naming the line or byte offset
    that diverged rather than feeding pass 2 silently wrong data.
    """
    path = Path(path)
    header, payload = _read_validated(path, index)
    dataset = decode_chunk(payload, source=str(path))
    if len(dataset) != header["trajectories"]:
        raise SpillError(
            f"{path}:1: header promises {header['trajectories']} "
            f"trajectorie(s), payload decodes to {len(dataset)}"
        )
    if (
        expected_trajectories is not None
        and len(dataset) != expected_trajectories
    ):
        raise SpillError(
            f"{path}:1: pass 1 staged {expected_trajectories} "
            f"trajectorie(s) for chunk {header['chunk']}, spill holds "
            f"{len(dataset)}"
        )
    return dataset


# -- the store ------------------------------------------------------------------


class SpillStore:
    """A directory of staged chunks with deterministic cleanup.

    Parameters
    ----------
    directory:
        Where to stage. ``None`` (default) creates a private tempdir
        that is deleted wholesale on :meth:`close`; an explicit
        directory is created if missing, its staged files are removed
        on close, and the directory itself is kept only if it
        pre-existed or still holds foreign files.
    cache:
        Keep up to this many staged chunks decoded in memory (the
        publisher passes its in-flight window). A cached load still
        reads and checksums the file — tampering is detected either
        way — but skips the decode. ``0`` disables caching.
    """

    def __init__(
        self, directory: str | Path | None = None, cache: int = 0
    ) -> None:
        if cache < 0:
            raise ValueError(f"cache must be non-negative, got {cache}")
        if directory is None:
            self.path = Path(tempfile.mkdtemp(prefix="repro-spill-"))
            self._owns_dir = True
            self._made_dir = True
        else:
            self.path = Path(directory)
            self._owns_dir = False
            self._made_dir = not self.path.exists()
            self.path.mkdir(parents=True, exist_ok=True)
        self._cache_budget = cache
        self._cache: dict[int, TrajectoryDataset] = {}
        self._staged: dict[int, Path] = {}
        self._closed = False

    def __enter__(self) -> "SpillStore":
        if self._closed:
            raise RuntimeError("SpillStore is closed")
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def path_of(self, index: int) -> Path:
        """Where chunk ``index`` is (or would be) staged."""
        return self.path / f"chunk-{index:06d}.spill"

    def stage(self, index: int, dataset: TrajectoryDataset) -> Path:
        """Spill one parsed chunk; returns its file path."""
        if self._closed:
            raise RuntimeError("SpillStore is closed")
        if index in self._staged:
            raise ValueError(f"chunk {index} is already staged")
        path = self.path_of(index)
        write_spill(path, index, dataset)
        self._staged[index] = path
        if len(self._cache) < self._cache_budget:
            self._cache[index] = dataset
        return path

    def load(self, index: int) -> TrajectoryDataset:
        """Replay one staged chunk, always re-validating the file.

        The integrity check (header + length + checksum) runs even on
        a cache hit — a mutated spill must abort whether or not the
        decoded chunk happens to still be in memory — but a hit skips
        the payload decode, which is the expensive half.
        """
        if index not in self._staged:
            raise SpillError(f"chunk {index} was never staged")
        cached = self._cache.pop(index, None)
        if cached is not None:
            _read_validated(self._staged[index], index)
            return cached
        return read_spill(self._staged[index], index=index)

    def remove(self, index: int) -> None:
        """Drop one staged chunk (pass 2 is done with it)."""
        self._cache.pop(index, None)
        path = self._staged.pop(index, None)
        if path is not None:
            path.unlink(missing_ok=True)

    def close(self) -> None:
        """Remove every staged file (and an owned tempdir); idempotent."""
        if self._closed:
            return
        self._closed = True
        self._cache.clear()
        for path in self._staged.values():
            path.unlink(missing_ok=True)
        self._staged.clear()
        if self._owns_dir:
            shutil.rmtree(self.path, ignore_errors=True)
        elif self._made_dir:
            try:
                self.path.rmdir()
            except OSError:
                pass  # the user parked other files there; keep it
