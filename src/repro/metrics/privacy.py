"""Privacy metrics beyond linking accuracy: mutual information.

MI [19, 30] measures the statistical dependency between the original
and the anonymized data: higher MI means the published dataset still
reveals more about the original. We estimate it over the joint
distribution of (original cell, anonymized cell) pairs at aligned
sample positions of positionally paired trajectories, and normalise by
the smaller marginal entropy so the result lies in [0, 1].
"""

from __future__ import annotations

import math
from collections import Counter

from repro.trajectory.model import Trajectory, TrajectoryDataset


def _cell(x: float, y: float, cell_size: float) -> tuple[int, int]:
    return (int(math.floor(x / cell_size)), int(math.floor(y / cell_size)))


def _aligned_cells(
    original: Trajectory, anonymized: Trajectory, cell_size: float
) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """Cell pairs at aligned index fractions of the two trajectories."""
    n = min(len(original), len(anonymized))
    if n == 0 or len(original) == 0 or len(anonymized) == 0:
        return []
    pairs = []
    for k in range(n):
        fraction = k / max(n - 1, 1)
        po = original[round(fraction * (len(original) - 1))]
        pa = anonymized[round(fraction * (len(anonymized) - 1))]
        pairs.append(
            (_cell(po.x, po.y, cell_size), _cell(pa.x, pa.y, cell_size))
        )
    return pairs


def mutual_information(
    original: TrajectoryDataset,
    anonymized: TrajectoryDataset,
    cell_size: float = 500.0,
) -> float:
    """Normalised MI between original and anonymized location streams.

    Returns 0 when the datasets are statistically independent, 1 when
    one determines the other. Positional pairing is used so synthetic
    datasets (fresh object ids) can be scored too.
    """
    if len(original) != len(anonymized):
        raise ValueError("datasets must contain the same number of objects")
    joint: Counter = Counter()
    for to, ta in zip(original, anonymized, strict=True):
        joint.update(_aligned_cells(to, ta, cell_size))
    total = sum(joint.values())
    if total == 0:
        return 0.0
    marginal_o: Counter = Counter()
    marginal_a: Counter = Counter()
    for (co, ca), count in joint.items():
        marginal_o[co] += count
        marginal_a[ca] += count

    mi = 0.0
    for (co, ca), count in joint.items():
        p_joint = count / total
        p_o = marginal_o[co] / total
        p_a = marginal_a[ca] / total
        mi += p_joint * math.log(p_joint / (p_o * p_a))

    def entropy(marginal: Counter) -> float:
        return -sum(
            (c / total) * math.log(c / total) for c in marginal.values()
        )

    h_min = min(entropy(marginal_o), entropy(marginal_a))
    if h_min == 0.0:
        return 0.0
    return max(0.0, min(1.0, mi / h_min))
